//! The batch execution engine through the full training pipeline: fanning
//! the per-class/per-shift fidelity evaluations over worker threads must
//! never change what is learned, and the batched gradients themselves must
//! be bit-identical for any thread count.

use quclassi::gradient::{gradient_from_shifted_values, shifted_parameter_sets};
use quclassi::prelude::*;
use quclassi::swap_test::FidelityEstimator;
use quclassi_integration_tests::iris_split;
use quclassi_sim::batch::BatchExecutor;
use quclassi_sim::executor::Executor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the seed-17 Iris pipeline — the same golden run pinned by
/// `training_is_bit_identical_for_equal_seeds` in `end_to_end_iris.rs` —
/// through a batch executor with the given thread count.
fn golden_iris_fit(threads: usize) -> (Vec<Vec<u64>>, u64) {
    let split = iris_split(17);
    let mut rng = StdRng::seed_from_u64(17);
    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs: 5,
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    )
    .with_batch_executor(BatchExecutor::new(threads, 0));
    trainer
        .fit(&mut model, &split.train_x, &split.train_y, &mut rng)
        .unwrap();
    let acc = model
        .evaluate_accuracy(
            &split.test_x,
            &split.test_y,
            &FidelityEstimator::analytic(),
            &mut rng,
        )
        .unwrap();
    let params: Vec<Vec<u64>> = (0..3)
        .map(|c| {
            model
                .class_params(c)
                .unwrap()
                .iter()
                .map(|p| p.to_bits())
                .collect()
        })
        .collect();
    (params, acc.to_bits())
}

#[test]
fn batched_fit_matches_single_threaded_golden_run() {
    // The default Trainer *is* the single-threaded batch path, so the
    // 1-thread run is the golden reference; 2 and 8 workers must reproduce
    // it to the last bit in every learned parameter and in the accuracy.
    let (params_1, acc_1) = golden_iris_fit(1);
    let (params_2, acc_2) = golden_iris_fit(2);
    let (params_8, acc_8) = golden_iris_fit(8);
    assert_eq!(
        params_1, params_2,
        "2-thread parameters diverged from golden run"
    );
    assert_eq!(
        params_1, params_8,
        "8-thread parameters diverged from golden run"
    );
    assert_eq!(acc_1, acc_2);
    assert_eq!(acc_1, acc_8);
}

#[test]
fn batched_gradients_are_bit_identical_across_thread_counts() {
    let split = iris_split(19);
    let x = &split.train_x[0];
    let encoder =
        quclassi::encoding::DataEncoder::new(quclassi::encoding::EncodingStrategy::DualAngle, 4)
            .unwrap();
    let stack = quclassi::layers::LayerStack::qc_sd(2).unwrap();
    let params: Vec<f64> = (0..stack.parameter_count())
        .map(|i| 0.25 + 0.13 * i as f64)
        .collect();
    let shift = std::f64::consts::FRAC_PI_2;
    let sets = shifted_parameter_sets(&params, shift);

    for estimator in [
        FidelityEstimator::analytic(),
        FidelityEstimator::swap_test(Executor::ideal().with_shots(Some(1024))),
    ] {
        let gradient = |threads: usize| -> Vec<u64> {
            let batch = BatchExecutor::new(threads, 0);
            let values = estimator
                .estimate_many(&stack, &sets, &encoder, x, &batch, 42)
                .unwrap();
            gradient_from_shifted_values(&values)
                .into_iter()
                .map(f64::to_bits)
                .collect()
        };
        let g1 = gradient(1);
        assert_eq!(g1, gradient(2), "2-thread gradient diverged");
        assert_eq!(g1, gradient(8), "8-thread gradient diverged");
    }
}

#[test]
fn batched_noisy_training_converges_like_sequential() {
    // Stochastic estimators draw per-step base seeds from the fit RNG, so
    // the learned parameters are deterministic per seed and thread-count
    // invariant; convergence must survive the batched path.
    let split = iris_split(37);
    let estimator = FidelityEstimator::swap_test(Executor::ideal().with_shots(Some(2048)));
    let run = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(37);
        let mut model =
            QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng).unwrap();
        let trainer = Trainer::new(
            TrainingConfig {
                epochs: 3,
                learning_rate: 0.05,
                max_samples_per_class: Some(8),
                ..Default::default()
            },
            estimator.clone(),
        )
        .with_batch_executor(BatchExecutor::new(threads, 0));
        let history = trainer
            .fit(&mut model, &split.train_x, &split.train_y, &mut rng)
            .unwrap();
        let params: Vec<u64> = model
            .class_params(0)
            .unwrap()
            .iter()
            .map(|p| p.to_bits())
            .collect();
        (history, params)
    };
    let (history, params_1) = run(1);
    let (_, params_4) = run(4);
    assert_eq!(
        params_1, params_4,
        "shot-based training diverged across thread counts"
    );
    let first = history.epochs.first().unwrap().mean_loss;
    let last = history.final_loss().unwrap();
    assert!(
        last < first,
        "batched noisy training did not converge: {first} -> {last}"
    );
}
