//! Training and evaluating under device noise models (the paper's Section
//! 5.4 scenario): convergence must survive realistic gate/readout noise and
//! finite shots, and noise must not *improve* accuracy.

use quclassi::prelude::*;
use quclassi_integration_tests::iris_split;
use quclassi_sim::device::DeviceModel;
use quclassi_sim::executor::Executor;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn noisy_swap_test_training_still_converges() {
    let split = iris_split(21);
    let mut rng = StdRng::seed_from_u64(21);
    let device = DeviceModel::ibmq_london();
    let estimator = FidelityEstimator::swap_test(
        Executor::noisy_density(device.noise.clone()).with_shots(Some(2048)),
    );
    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs: 4,
            learning_rate: 0.05,
            max_samples_per_class: Some(6),
            ..Default::default()
        },
        estimator,
    );
    let history = trainer
        .fit(&mut model, &split.train_x, &split.train_y, &mut rng)
        .expect("noisy training succeeds");
    let first = history.epochs.first().unwrap().mean_loss;
    let last = history.final_loss().unwrap();
    assert!(
        last < first,
        "noisy training loss did not decrease: {first} -> {last}"
    );
}

#[test]
fn noise_does_not_improve_over_ideal_evaluation() {
    let split = iris_split(22);
    let mut rng = StdRng::seed_from_u64(22);
    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs: 12,
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &split.train_x, &split.train_y, &mut rng)
        .unwrap();

    let ideal = model
        .evaluate_accuracy(
            &split.test_x,
            &split.test_y,
            &FidelityEstimator::analytic(),
            &mut rng,
        )
        .unwrap();
    // A deliberately very noisy device.
    let noisy_est = FidelityEstimator::swap_test(
        Executor::noisy_density(
            quclassi_sim::noise::NoiseModel::depolarizing(0.01, 0.08, 0.05).unwrap(),
        )
        .with_shots(Some(256)),
    );
    let noisy = model
        .evaluate_accuracy(&split.test_x, &split.test_y, &noisy_est, &mut rng)
        .unwrap();
    assert!(ideal >= 0.85, "ideal accuracy {ideal}");
    assert!(
        noisy <= ideal + 0.05,
        "noisy accuracy {noisy} should not exceed ideal {ideal}"
    );
}

#[test]
fn melbourne_is_noisier_than_london() {
    // Fidelity of the same circuit should degrade more on the older,
    // noisier Melbourne model than on London.
    let split = iris_split(23);
    let mut rng = StdRng::seed_from_u64(23);
    let model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng).unwrap();
    let x = &split.train_x[0];

    let fidelity_under = |device: DeviceModel, rng: &mut StdRng| -> f64 {
        let est = FidelityEstimator::swap_test(Executor::noisy_density(device.noise.clone()));
        model.class_fidelity(0, x, &est, rng).unwrap()
    };
    let ideal = model
        .class_fidelity(
            0,
            x,
            &FidelityEstimator::swap_test(Executor::ideal()),
            &mut rng,
        )
        .unwrap();
    let london = fidelity_under(DeviceModel::ibmq_london(), &mut rng);
    let melbourne = fidelity_under(DeviceModel::ibmq_melbourne(), &mut rng);
    // Noise pulls the estimated fidelity away from the ideal value, and the
    // noisier device pulls it further.
    assert!((ideal - melbourne).abs() >= (ideal - london).abs() - 1e-9);
}
