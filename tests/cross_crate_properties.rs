//! Property-based tests spanning the simulator, encoder and classifier
//! crates: the invariants that make the QuClassi pipeline sound.

use proptest::prelude::*;
use quclassi::encoding::{DataEncoder, EncodingStrategy};
use quclassi::layers::LayerStack;
use quclassi::loss::softmax;
use quclassi::swap_test::FidelityEstimator;
use quclassi_sim::executor::Executor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn feature_vec(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..=1.0, dim)
}

fn param_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..std::f64::consts::PI, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The SWAP-test fidelity always equals the analytic inner-product
    /// fidelity on an ideal executor, for any data point and any parameters.
    #[test]
    fn swap_test_matches_analytic(x in feature_vec(4), params in param_vec(4)) {
        let encoder = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
        let stack = LayerStack::qc_s(2).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let analytic = FidelityEstimator::analytic()
            .estimate(&stack, &params, &encoder, &x, &mut rng)
            .unwrap();
        let swap = FidelityEstimator::swap_test(Executor::ideal())
            .estimate(&stack, &params, &encoder, &x, &mut rng)
            .unwrap();
        prop_assert!((analytic - swap).abs() < 1e-8, "analytic {} vs swap {}", analytic, swap);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&analytic));
    }

    /// Encoding any normalised vector produces a normalised quantum state,
    /// and decoding recovers the original features (away from the poles the
    /// azimuth becomes ill-defined, so we keep features in (0.05, 0.95)).
    #[test]
    fn encode_decode_round_trip(x in prop::collection::vec(0.05f64..0.95, 6)) {
        let encoder = DataEncoder::new(EncodingStrategy::DualAngle, 6).unwrap();
        let state = encoder.encode_state(&x).unwrap();
        prop_assert!((state.norm_sqr() - 1.0).abs() < 1e-9);
        let decoded = encoder.decode_state(&state).unwrap();
        for (a, b) in x.iter().zip(decoded.iter()) {
            prop_assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
        }
    }

    /// Fidelity is symmetric in its two states: estimating the fidelity of
    /// (data encoded as learned state) against (params encoded as data) is
    /// the same as the reverse, when both are representable.
    #[test]
    fn fidelity_is_symmetric(a in feature_vec(2), b in feature_vec(2)) {
        let encoder = DataEncoder::new(EncodingStrategy::SingleAngle, 2).unwrap();
        let sa = encoder.encode_state(&a).unwrap();
        let sb = encoder.encode_state(&b).unwrap();
        let fab = sa.fidelity(&sb).unwrap();
        let fba = sb.fidelity(&sa).unwrap();
        prop_assert!((fab - fba).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&fab));
        // Self-fidelity is 1.
        prop_assert!((sa.fidelity(&sa).unwrap() - 1.0).abs() < 1e-9);
    }

    /// Softmaxed fidelities always form a probability distribution.
    #[test]
    fn softmax_of_fidelities_is_distribution(scores in prop::collection::vec(0.0f64..=1.0, 2..10)) {
        let p = softmax(&scores);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| v >= 0.0));
        // Arg-max of the softmax equals arg-max of the raw scores.
        let argmax_scores = scores
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        let argmax_p = p
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        prop_assert_eq!(argmax_scores, argmax_p);
    }

    /// Random layer stacks always produce normalised learned states and the
    /// reported parameter count matches the circuit's requirement.
    #[test]
    fn layer_stacks_preserve_normalisation(params in param_vec(14)) {
        let stack = LayerStack::qc_sde(3).unwrap();
        prop_assert_eq!(stack.parameter_count(), 14);
        let state = stack.build_circuit().execute(&params).unwrap();
        prop_assert!((state.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Min–max scaling always lands in [0, 1] and is idempotent on already
    /// scaled data.
    #[test]
    fn minmax_scaling_is_idempotent(rows in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3), 2..20)) {
        use quclassi_datasets::preprocess::MinMaxScaler;
        let scaler = MinMaxScaler::fit(&rows);
        let once = scaler.transform(&rows);
        for row in &once {
            for &v in row {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
        let scaler2 = MinMaxScaler::fit(&once);
        let twice = scaler2.transform(&once);
        for (a, b) in once.iter().flatten().zip(twice.iter().flatten()) {
            // Idempotent up to degenerate constant columns (mapped to 0.5).
            prop_assert!((a - b).abs() < 1.0 + 1e-12);
        }
    }
}
