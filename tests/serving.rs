//! Serving-runtime stress tests: many producer threads against one
//! runtime, asserting the serving layer's core contract — **no lost or
//! duplicated responses, and every response bit-identical to a direct
//! `CompiledModel` evaluation** for the analytic estimator, regardless of
//! batching window, batch size target, executor thread count, or arrival
//! order.

use proptest::prelude::*;
use quclassi::model::{QuClassiConfig, QuClassiModel};
use quclassi::swap_test::FidelityEstimator;
use quclassi_infer::{CompiledModel, Prediction};
use quclassi_serve::{ServeConfig, ServeError, ServeRuntime};
use quclassi_sim::batch::BatchExecutor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn trained_compiled(seed: u64) -> CompiledModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_sde(4, 3), &mut rng).unwrap();
    CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap()
}

/// A pool of distinct samples, indexable from any producer thread.
fn sample_pool(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..4)
                .map(|d| ((0.07 * (1 + i * 4 + d) as f64).sin().abs() * 0.9).min(0.95))
                .collect()
        })
        .collect()
}

/// Direct (un-served) references: what every response must equal, bit for
/// bit. Computed on a *separate* artifact so the runtime's cache state
/// cannot influence the reference.
fn references(seed: u64, pool: &[Vec<f64>]) -> Vec<Prediction> {
    let artifact = trained_compiled(seed);
    let mut rng = StdRng::seed_from_u64(0);
    pool.iter()
        .map(|x| artifact.predict_one(x, &mut rng).unwrap())
        .collect()
}

#[test]
fn concurrent_producers_lose_nothing_and_match_direct_evaluation() {
    const PRODUCERS: usize = 8;
    const REQUESTS_PER_PRODUCER: usize = 25;
    let pool = Arc::new(sample_pool(16));
    let reference = Arc::new(references(42, &pool));

    // Sweep the knobs that must NOT change any answer: batching window,
    // batch size target (1 = per-request serving), executor threads.
    let configs = [
        (Duration::ZERO, 32usize, 1usize),
        (Duration::from_micros(200), 16, 1),
        (Duration::from_millis(5), 64, 2),
        (Duration::from_micros(100), 1, 4),
    ];
    for (window, max_batch, threads) in configs {
        let runtime = ServeRuntime::start(
            ServeConfig {
                batch_window: window,
                max_batch,
                queue_capacity: 4096,
                base_seed: 0,
                ..ServeConfig::default()
            },
            BatchExecutor::new(threads, 0),
        )
        .unwrap();
        runtime.deploy("stress", trained_compiled(42)).unwrap();

        let answered = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|producer| {
                let client = runtime.client();
                let pool = Arc::clone(&pool);
                let reference = Arc::clone(&reference);
                let answered = Arc::clone(&answered);
                std::thread::spawn(move || {
                    for i in 0..REQUESTS_PER_PRODUCER {
                        // Every producer walks the pool at its own stride,
                        // so arrival order interleaves differently each run.
                        let idx = (producer * 7 + i * 3) % pool.len();
                        let response = client.predict("stress", &pool[idx]).unwrap();
                        assert_eq!(
                            response.prediction, reference[idx],
                            "producer {producer}, request {i}, sample {idx}, \
                             window {window:?}, max_batch {max_batch}, {threads} threads"
                        );
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }

        let metrics = runtime.shutdown();
        let total = (PRODUCERS * REQUESTS_PER_PRODUCER) as u64;
        // No lost responses: every blocking call returned (join proves it)…
        assert_eq!(answered.load(Ordering::Relaxed) as u64, total);
        // …and no duplicated/phantom work in the accounting.
        assert_eq!(metrics.admitted, total);
        assert_eq!(metrics.completed, total);
        assert_eq!(metrics.rejected, 0);
        assert_eq!(metrics.failed, 0);
        assert_eq!(metrics.batched_requests, total);
        assert_eq!(metrics.latency.count(), total);
    }
}

#[test]
fn hot_swap_under_load_serves_every_request_on_a_consistent_version() {
    const PRODUCERS: usize = 4;
    const REQUESTS_PER_PRODUCER: usize = 30;
    let pool = Arc::new(sample_pool(8));
    let reference_v1 = Arc::new(references(1, &pool));
    let reference_v2 = Arc::new(references(2, &pool));

    let runtime = ServeRuntime::start(
        ServeConfig {
            batch_window: Duration::from_micros(100),
            max_batch: 8,
            queue_capacity: 4096,
            base_seed: 0,
            ..ServeConfig::default()
        },
        BatchExecutor::single_threaded(0),
    )
    .unwrap();
    runtime.deploy("swap", trained_compiled(1)).unwrap();

    let handles: Vec<_> = (0..PRODUCERS)
        .map(|producer| {
            let client = runtime.client();
            let pool = Arc::clone(&pool);
            let v1 = Arc::clone(&reference_v1);
            let v2 = Arc::clone(&reference_v2);
            std::thread::spawn(move || {
                let mut seen_versions = Vec::new();
                for i in 0..REQUESTS_PER_PRODUCER {
                    let idx = (producer + i * 5) % pool.len();
                    let response = client.predict("swap", &pool[idx]).unwrap();
                    // Whatever version served the request, the answer must
                    // be that version's exact direct evaluation.
                    let expected: &Prediction = match response.version {
                        1 => &v1[idx],
                        2 => &v2[idx],
                        v => panic!("unexpected version {v}"),
                    };
                    assert_eq!(&response.prediction, expected);
                    seen_versions.push(response.version);
                }
                seen_versions
            })
        })
        .collect();

    // Swap mid-flight.
    std::thread::sleep(Duration::from_millis(2));
    runtime.deploy("swap", trained_compiled(2)).unwrap();

    let mut all_versions = Vec::new();
    for handle in handles {
        let versions = handle.join().unwrap();
        // Per producer, versions are monotone: once v2 answered, v1 never
        // answers again (admission resolves to the newest entry).
        let mut max_seen = 0;
        for &v in &versions {
            assert!(v >= max_seen, "version went backwards: {versions:?}");
            max_seen = v;
        }
        all_versions.extend(versions);
    }
    assert!(
        all_versions.contains(&2),
        "the swap should have become visible to producers"
    );
    let metrics = runtime.shutdown();
    assert_eq!(
        metrics.completed,
        (PRODUCERS * REQUESTS_PER_PRODUCER) as u64
    );
    assert_eq!(metrics.failed, 0);
    // Nothing still drains once all requests finished.
    assert_eq!(metrics.draining_models, 0);
}

#[test]
fn saturated_runtime_rejects_excess_but_answers_every_admitted_request() {
    // A tiny queue with a slow (large-window) scheduler: concurrent
    // producers must see a mix of served and saturation-rejected requests,
    // with admitted + rejected == offered and no hangs.
    let pool = sample_pool(4);
    let runtime = ServeRuntime::start(
        ServeConfig {
            batch_window: Duration::from_millis(30),
            max_batch: 64,
            queue_capacity: 4,
            base_seed: 0,
            ..ServeConfig::default()
        },
        BatchExecutor::single_threaded(0),
    )
    .unwrap();
    runtime.deploy("tiny", trained_compiled(3)).unwrap();

    let offered = Arc::new(AtomicUsize::new(0));
    let served = Arc::new(AtomicUsize::new(0));
    let rejected = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..8)
        .map(|producer| {
            let client = runtime.client();
            let pool = pool.clone();
            let offered = Arc::clone(&offered);
            let served = Arc::clone(&served);
            let rejected = Arc::clone(&rejected);
            std::thread::spawn(move || {
                for i in 0..10 {
                    offered.fetch_add(1, Ordering::Relaxed);
                    match client.predict("tiny", &pool[(producer + i) % pool.len()]) {
                        Ok(_) => {
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e @ ServeError::Saturated { .. }) => {
                            assert!(e.is_retryable());
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let metrics = runtime.shutdown();
    assert_eq!(
        served.load(Ordering::Relaxed) + rejected.load(Ordering::Relaxed),
        offered.load(Ordering::Relaxed)
    );
    assert_eq!(metrics.admitted, served.load(Ordering::Relaxed) as u64);
    assert_eq!(metrics.completed, metrics.admitted, "admitted ⇒ answered");
    assert_eq!(metrics.rejected, rejected.load(Ordering::Relaxed) as u64);
    assert!(
        metrics.rejected > 0,
        "a 4-deep queue under 80 eager requests must saturate at least once"
    );
    assert!(metrics.peak_queue_depth <= 4);
}

proptest! {
    // Each case spins up a full runtime with producer threads, so keep the
    // case count small; the knob space is still swept meaningfully.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shadow evaluation is invisible to users: with a candidate mirroring
    /// live traffic at any rate, every user response stays bit-identical
    /// to the direct evaluation of the live artifact — which is exactly
    /// what a shadow-disabled runtime returns — for any batch window,
    /// batch size target, and executor thread count.
    #[test]
    fn shadow_mirroring_never_changes_user_responses(
        window_us in 0u64..400,
        max_batch in 1usize..24,
        threads in 1usize..4,
        rate_pct in 1u32..=100,
    ) {
        const PRODUCERS: usize = 4;
        const REQUESTS_PER_PRODUCER: usize = 20;
        let pool = Arc::new(sample_pool(12));
        let reference = Arc::new(references(21, &pool));

        let runtime = ServeRuntime::start(
            ServeConfig {
                batch_window: Duration::from_micros(window_us),
                max_batch,
                queue_capacity: 4096,
                base_seed: 0,
                ..ServeConfig::default()
            },
            BatchExecutor::new(threads, 0),
        )
        .unwrap();
        runtime.deploy("live", trained_compiled(21)).unwrap();
        runtime
            .start_shadow("live", trained_compiled(22), rate_pct as f64 / 100.0, 0)
            .unwrap();

        let handles: Vec<_> = (0..PRODUCERS)
            .map(|producer| {
                let client = runtime.client();
                let pool = Arc::clone(&pool);
                let reference = Arc::clone(&reference);
                std::thread::spawn(move || {
                    for i in 0..REQUESTS_PER_PRODUCER {
                        let idx = (producer * 7 + i * 3) % pool.len();
                        let response = client.predict("live", &pool[idx]).unwrap();
                        assert_eq!(
                            response.prediction, reference[idx],
                            "shadow at {rate_pct}% changed a user response \
                             (producer {producer}, request {i}, sample {idx})"
                        );
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }

        let report = runtime.clear_shadow().expect("shadow was installed");
        prop_assert_eq!(report.failures, 0);
        let metrics = runtime.shutdown();
        let total = (PRODUCERS * REQUESTS_PER_PRODUCER) as u64;
        prop_assert_eq!(metrics.completed, total);
        prop_assert_eq!(metrics.failed, 0);
        // The mirror only ever duplicates traffic, never consumes it. The
        // global counter may run ahead of the report: a final mirrored
        // batch can still be evaluating (after its user slots were
        // fulfilled) when the shadow is uninstalled.
        prop_assert!(report.requests <= total);
        prop_assert!(metrics.shadow_requests >= report.requests);
        prop_assert!(metrics.shadow_requests <= total);
    }
}
