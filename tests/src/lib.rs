//! Shared helpers for the cross-crate integration tests.
//!
//! The integration tests live next to this package's manifest (one file per
//! scenario, declared as explicit `[[test]]` targets) and exercise the full
//! pipeline: dataset generation → preprocessing → QuClassi / baseline
//! training → evaluation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use quclassi_classical::pca::Pca;
use quclassi_datasets::dataset::Dataset;
use quclassi_datasets::preprocess::MinMaxScaler;
use quclassi_datasets::{iris, mnist};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A normalised train/test split ready for quantum encoding.
#[derive(Clone, Debug)]
pub struct Split {
    /// Training features in [0, 1].
    pub train_x: Vec<Vec<f64>>,
    /// Training labels.
    pub train_y: Vec<usize>,
    /// Test features in [0, 1].
    pub test_x: Vec<Vec<f64>>,
    /// Test labels.
    pub test_y: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

fn split_dataset(dataset: &Dataset, train_fraction: f64, seed: u64) -> Split {
    let mut rng = StdRng::seed_from_u64(seed);
    let (train_raw, test_raw) = dataset.stratified_split(train_fraction, &mut rng);
    let scaler = MinMaxScaler::fit(&train_raw.features);
    Split {
        train_x: scaler.transform(&train_raw.features),
        train_y: train_raw.labels.clone(),
        test_x: scaler.transform(&test_raw.features),
        test_y: test_raw.labels.clone(),
        num_classes: dataset.num_classes,
    }
}

/// The normalised Iris split used by several integration tests.
pub fn iris_split(seed: u64) -> Split {
    split_dataset(&iris::load(), 0.7, seed)
}

/// A small PCA-reduced synthetic-MNIST digit-pair split (kept small so the
/// tests stay fast in debug builds).
pub fn mnist_pair_split(a: usize, b: usize, dims: usize, per_class: usize, seed: u64) -> Split {
    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = mnist::generate(per_class, seed).filter_classes(&[a, b]);
    let (train_raw, test_raw) = dataset.stratified_split(0.7, &mut rng);
    let pca = Pca::fit(&train_raw.features, dims, &mut rng);
    let train_z = pca.transform(&train_raw.features);
    let test_z = pca.transform(&test_raw.features);
    let scaler = MinMaxScaler::fit(&train_z);
    Split {
        train_x: scaler.transform(&train_z),
        train_y: train_raw.labels.clone(),
        test_x: scaler.transform(&test_z),
        test_y: test_raw.labels.clone(),
        num_classes: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iris_split_is_normalised() {
        let s = iris_split(1);
        assert_eq!(s.num_classes, 3);
        assert!(!s.train_x.is_empty() && !s.test_x.is_empty());
        for row in s.train_x.iter().chain(s.test_x.iter()) {
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn mnist_pair_split_shape() {
        let s = mnist_pair_split(1, 5, 6, 20, 2);
        assert_eq!(s.num_classes, 2);
        assert_eq!(s.train_x[0].len(), 6);
        assert!(!s.test_x.is_empty());
    }
}
