//! End-to-end Iris pipeline: data → normalisation → QuClassi training →
//! evaluation, for each of the three architectures.

use quclassi::prelude::*;
use quclassi_integration_tests::iris_split;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn train_and_evaluate(config: QuClassiConfig, epochs: usize, seed: u64) -> f64 {
    let split = iris_split(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = QuClassiModel::with_random_parameters(config, &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs,
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &split.train_x, &split.train_y, &mut rng)
        .expect("training succeeds");
    model
        .evaluate_accuracy(
            &split.test_x,
            &split.test_y,
            &FidelityEstimator::analytic(),
            &mut rng,
        )
        .expect("evaluation succeeds")
}

#[test]
fn qc_s_reaches_high_accuracy_on_iris() {
    let acc = train_and_evaluate(QuClassiConfig::qc_s(4, 3), 20, 7);
    assert!(acc >= 0.85, "QC-S Iris accuracy {acc}");
}

#[test]
fn qc_sd_reaches_high_accuracy_on_iris() {
    let acc = train_and_evaluate(QuClassiConfig::qc_sd(4, 3), 15, 8);
    assert!(acc >= 0.8, "QC-SD Iris accuracy {acc}");
}

#[test]
fn qc_sde_reaches_high_accuracy_on_iris() {
    let acc = train_and_evaluate(QuClassiConfig::qc_sde(4, 3), 15, 9);
    assert!(acc >= 0.8, "QC-SDE Iris accuracy {acc}");
}

#[test]
fn setosa_is_classified_perfectly() {
    // Setosa (class 0) is linearly separable; after training no setosa test
    // sample should be misclassified.
    let split = iris_split(11);
    let mut rng = StdRng::seed_from_u64(11);
    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs: 20,
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &split.train_x, &split.train_y, &mut rng)
        .unwrap();
    let estimator = FidelityEstimator::analytic();
    for (x, &y) in split.test_x.iter().zip(split.test_y.iter()) {
        if y == 0 {
            let pred = model.predict(x, &estimator, &mut rng).unwrap();
            assert_eq!(pred, 0, "a setosa sample was misclassified as {pred}");
        }
    }
}

#[test]
fn training_is_bit_identical_for_equal_seeds() {
    // Two full pipeline runs from the same seed must agree bit-for-bit in
    // every learned parameter and in the final accuracy: the whole stack —
    // splitting, shuffling, initialisation, gradients — is deterministic.
    let run = || {
        let split = iris_split(17);
        let mut rng = StdRng::seed_from_u64(17);
        let mut model =
            QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng).unwrap();
        let trainer = Trainer::new(
            TrainingConfig {
                epochs: 5,
                learning_rate: 0.05,
                ..Default::default()
            },
            FidelityEstimator::analytic(),
        );
        trainer
            .fit(&mut model, &split.train_x, &split.train_y, &mut rng)
            .unwrap();
        let acc = model
            .evaluate_accuracy(
                &split.test_x,
                &split.test_y,
                &FidelityEstimator::analytic(),
                &mut rng,
            )
            .unwrap();
        let params: Vec<Vec<u64>> = (0..3)
            .map(|c| {
                model
                    .class_params(c)
                    .unwrap()
                    .iter()
                    .map(|p| p.to_bits())
                    .collect()
            })
            .collect();
        (params, acc.to_bits())
    };
    let (params_a, acc_a) = run();
    let (params_b, acc_b) = run();
    assert_eq!(
        params_a, params_b,
        "learned parameters diverged between identically seeded runs"
    );
    assert_eq!(
        acc_a, acc_b,
        "accuracy diverged between identically seeded runs"
    );
}

/// The paper-scale Iris run (Fig. 6): all three architectures at full epoch
/// count. Slow, so opt in with `cargo test -- --ignored` (or
/// `--include-ignored` for everything).
#[test]
#[ignore = "full paper reproduction (~minutes); run with: cargo test -- --ignored"]
fn full_paper_iris_reproduction() {
    for (config, name) in [
        (QuClassiConfig::qc_s(4, 3), "QC-S"),
        (QuClassiConfig::qc_sd(4, 3), "QC-SD"),
        (QuClassiConfig::qc_sde(4, 3), "QC-SDE"),
    ] {
        let acc = train_and_evaluate(config, 100, 7);
        assert!(acc >= 0.9, "{name} full-epoch Iris accuracy {acc}");
    }
}

#[test]
fn training_loss_decreases_monotonically_enough() {
    // The loss series should trend downward: the last epoch's loss must be
    // below 60 % of the first epoch's.
    let split = iris_split(13);
    let mut rng = StdRng::seed_from_u64(13);
    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs: 20,
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    let history = trainer
        .fit(&mut model, &split.train_x, &split.train_y, &mut rng)
        .unwrap();
    let first = history.epochs.first().unwrap().mean_loss;
    let last = history.final_loss().unwrap();
    assert!(
        last < 0.6 * first,
        "loss {first} -> {last} did not decrease enough"
    );
}
