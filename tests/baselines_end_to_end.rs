//! The comparator classifiers (TFQ-style, QF-pNet-style, classical DNN) run
//! end-to-end on the same prepared data as QuClassi, and the relative
//! behaviour the paper reports holds qualitatively.

use quclassi::prelude::*;
use quclassi_baselines::prelude::*;
use quclassi_classical::network::{Mlp, MlpConfig};
use quclassi_integration_tests::{iris_split, mnist_pair_split};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_methods_learn_an_easy_binary_pair() {
    let split = mnist_pair_split(1, 5, 6, 30, 31);
    let mut rng = StdRng::seed_from_u64(31);

    // QuClassi.
    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(6, 2), &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs: 8,
            learning_rate: 0.1,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &split.train_x, &split.train_y, &mut rng)
        .unwrap();
    let qc = model
        .evaluate_accuracy(
            &split.test_x,
            &split.test_y,
            &FidelityEstimator::analytic(),
            &mut rng,
        )
        .unwrap();

    // QF-pNet-style.
    let mut qf = QfPnet::new(
        QfPnetConfig {
            data_dim: 6,
            num_classes: 2,
            hidden: 8,
            epochs: 40,
            learning_rate: 0.1,
        },
        &mut rng,
    )
    .unwrap();
    qf.fit(&split.train_x, &split.train_y, &mut rng).unwrap();
    let qf_acc = qf
        .evaluate_accuracy(&split.test_x, &split.test_y, &mut rng)
        .unwrap();

    // Classical DNN.
    let (cfg, _) = MlpConfig::with_target_params(6, 2, 306);
    let mut dnn = Mlp::new(cfg, &mut rng);
    dnn.fit(&split.train_x, &split.train_y, 40, 0.1, None, &mut rng);
    let dnn_acc = dnn.evaluate_accuracy(&split.test_x, &split.test_y);

    assert!(qc >= 0.8, "QuClassi accuracy {qc}");
    assert!(qf_acc >= 0.7, "QF-pNet accuracy {qf_acc}");
    assert!(dnn_acc >= 0.8, "DNN accuracy {dnn_acc}");
}

#[test]
fn tfq_baseline_trains_on_iris_pair() {
    // TFQ-style comparator is binary-only: use classes 0 vs 2 of Iris.
    let split = iris_split(32);
    let mut rng = StdRng::seed_from_u64(32);
    let filter = |xs: &[Vec<f64>], ys: &[usize]| -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut fx = Vec::new();
        let mut fy = Vec::new();
        for (x, &y) in xs.iter().zip(ys.iter()) {
            if y == 0 || y == 2 {
                fx.push(x.clone());
                fy.push(usize::from(y == 2));
            }
        }
        (fx, fy)
    };
    let (train_x, train_y) = filter(&split.train_x, &split.train_y);
    let (test_x, test_y) = filter(&split.test_x, &split.test_y);

    let mut clf = TfqClassifier::new(
        TfqConfig {
            data_dim: 4,
            num_layers: 2,
            learning_rate: 0.3,
            epochs: 8,
        },
        &mut rng,
    )
    .unwrap();
    let losses = clf.fit(&train_x, &train_y, &mut rng).unwrap();
    assert!(losses.last().unwrap() <= losses.first().unwrap());
    let acc = clf.evaluate_accuracy(&test_x, &test_y, &mut rng).unwrap();
    assert!(acc >= 0.8, "TFQ accuracy on separable Iris pair {acc}");
}

#[test]
fn quclassi_is_more_noise_robust_than_qf_pnet() {
    // The paper's qualitative claim: QuClassi's single-ancilla fidelity
    // readout degrades less under device noise than QF-pNet's
    // per-neuron circuit deployment. Compare accuracy drops under the same
    // noise level.
    use quclassi_sim::executor::Executor;
    use quclassi_sim::noise::NoiseModel;

    let split = mnist_pair_split(3, 6, 4, 30, 33);
    let mut rng = StdRng::seed_from_u64(33);
    let noise = NoiseModel::depolarizing(0.01, 0.05, 0.08).unwrap();

    // QuClassi trained ideally, evaluated noisily.
    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
    Trainer::new(
        TrainingConfig {
            epochs: 8,
            learning_rate: 0.1,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    )
    .fit(&mut model, &split.train_x, &split.train_y, &mut rng)
    .unwrap();
    let qc_ideal = model
        .evaluate_accuracy(
            &split.test_x,
            &split.test_y,
            &FidelityEstimator::analytic(),
            &mut rng,
        )
        .unwrap();
    let qc_noisy = model
        .evaluate_accuracy(
            &split.test_x,
            &split.test_y,
            &FidelityEstimator::swap_test(
                Executor::noisy_density(noise.clone()).with_shots(Some(1024)),
            ),
            &mut rng,
        )
        .unwrap();

    // QF-pNet trained classically, deployed noisily.
    let mut qf = QfPnet::new(
        QfPnetConfig {
            data_dim: 4,
            num_classes: 2,
            hidden: 8,
            epochs: 40,
            learning_rate: 0.1,
        },
        &mut rng,
    )
    .unwrap();
    qf.fit(&split.train_x, &split.train_y, &mut rng).unwrap();
    let qf_ideal = qf
        .evaluate_accuracy(&split.test_x, &split.test_y, &mut rng)
        .unwrap();
    let qf_noisy = qf
        .clone()
        .with_executor(Executor::noisy_density(noise).with_shots(Some(64)))
        .evaluate_accuracy(&split.test_x, &split.test_y, &mut rng)
        .unwrap();

    let qc_drop = qc_ideal - qc_noisy;
    let qf_drop = qf_ideal - qf_noisy;
    // Allow slack: both should remain sane classifiers, and QuClassi's drop
    // must not be dramatically worse than QF-pNet's.
    assert!(qc_ideal >= 0.7 && qf_ideal >= 0.7);
    assert!(
        qc_drop <= qf_drop + 0.25,
        "QuClassi drop {qc_drop} vs QF-pNet drop {qf_drop}"
    );
}
