//! Train → serialise → reload → identical predictions, across crates.

use quclassi::io::{model_from_string, model_to_string};
use quclassi::prelude::*;
use quclassi_integration_tests::iris_split;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn trained_model_round_trips_through_text_format() {
    let split = iris_split(41);
    let mut rng = StdRng::seed_from_u64(41);
    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_sde(4, 3), &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs: 8,
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &split.train_x, &split.train_y, &mut rng)
        .unwrap();

    let text = model_to_string(&model);
    let restored = model_from_string(&text).expect("model parses back");
    assert_eq!(restored.config(), model.config());

    let estimator = FidelityEstimator::analytic();
    for x in split.test_x.iter() {
        let a = model.predict(x, &estimator, &mut rng).unwrap();
        let b = restored.predict(x, &estimator, &mut rng).unwrap();
        assert_eq!(a, b, "prediction changed after round trip");
        let pa = model.predict_proba(x, &estimator, &mut rng).unwrap();
        let pb = restored.predict_proba(x, &estimator, &mut rng).unwrap();
        for (p, q) in pa.iter().zip(pb.iter()) {
            assert!((p - q).abs() < 1e-12);
        }
    }
}

#[test]
fn file_round_trip_through_disk() {
    let mut rng = StdRng::seed_from_u64(42);
    let model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(6, 4), &mut rng).unwrap();
    let path = std::env::temp_dir().join("quclassi_roundtrip_test_model.txt");
    std::fs::write(&path, model_to_string(&model)).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let restored = model_from_string(&text).unwrap();
    assert_eq!(restored.parameter_count(), model.parameter_count());
    for c in 0..4 {
        assert_eq!(
            restored.class_params(c).unwrap(),
            model.class_params(c).unwrap()
        );
    }
    let _ = std::fs::remove_file(&path);
}
