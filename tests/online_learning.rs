//! End-to-end online-learning tests: a live serving runtime under
//! concurrent producer load while an `OnlineLearner` trains, shadows,
//! promotes, and rolls back next to it — including the deterministic
//! fault-injection schedules from `quclassi_serve::faults`.
//!
//! The serving contracts under test:
//!
//! * **No lost or duplicated responses**, ever — not across promotion,
//!   not across rollback, not across injected learner failures.
//! * **Per-producer version monotonicity** — once a producer sees version
//!   `v`, it never sees `< v` again (rollback re-deploys forward).
//! * **Failed candidates never reach the registry** — a panicking
//!   trainer, a failing compile, or a NaN-poisoned candidate leaves the
//!   live artifact bit-identical.
//! * **Fault schedules are reproducible** — the same seeded plan replays
//!   the same outcome sequence.

use quclassi::model::{QuClassiConfig, QuClassiModel};
use quclassi::swap_test::FidelityEstimator;
use quclassi::trainer::{Trainer, TrainingConfig};
use quclassi_datasets::stream::ReplayStream;
use quclassi_infer::CompiledModel;
use quclassi_serve::{
    CycleOutcome, Fault, FaultPlan, OnlineConfig, OnlineLearner, ServeConfig, ServeError,
    ServeRuntime,
};
use quclassi_sim::batch::BatchExecutor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// An untrained iris-shaped base model (4 features, 3 classes).
fn base_model(seed: u64) -> QuClassiModel {
    let mut rng = StdRng::seed_from_u64(seed);
    QuClassiModel::with_random_parameters(QuClassiConfig::qc_sde(4, 3), &mut rng).unwrap()
}

fn compile(model: &QuClassiModel) -> CompiledModel {
    CompiledModel::compile(model, FidelityEstimator::analytic()).unwrap()
}

fn quick_trainer() -> Trainer {
    Trainer::new(
        TrainingConfig {
            learning_rate: 0.1,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    )
}

fn started_runtime() -> ServeRuntime {
    ServeRuntime::start(
        ServeConfig {
            batch_window: Duration::from_micros(200),
            max_batch: 16,
            queue_capacity: 4096,
            base_seed: 0,
            ..ServeConfig::default()
        },
        BatchExecutor::single_threaded(0),
    )
    .unwrap()
}

/// Spawns `n` producer threads hammering `model` until `stop` is set.
/// Each thread returns `(responses, versions_seen)`; every response must
/// succeed (saturation is retried) and versions must be monotone.
fn spawn_producers(
    runtime: &ServeRuntime,
    model: &'static str,
    n: usize,
    stop: &Arc<AtomicBool>,
    sent: &Arc<AtomicUsize>,
) -> Vec<std::thread::JoinHandle<(usize, Vec<u64>)>> {
    // A pool of distinct iris samples to serve as live traffic.
    let mut feed = ReplayStream::iris(404);
    let (pool, _) = feed.next_window(24);
    let pool = Arc::new(pool);
    (0..n)
        .map(|producer| {
            let client = runtime.client();
            let stop = Arc::clone(stop);
            let sent = Arc::clone(sent);
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let mut answered = 0usize;
                let mut versions = Vec::new();
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let idx = (producer * 5 + i * 3) % pool.len();
                    match client.predict(model, &pool[idx]) {
                        Ok(response) => {
                            sent.fetch_add(1, Ordering::Relaxed);
                            answered += 1;
                            versions.push(response.version);
                        }
                        Err(e @ ServeError::Saturated { .. }) => {
                            assert!(e.is_retryable());
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(other) => panic!("producer {producer}: {other}"),
                    }
                    i += 1;
                }
                (answered, versions)
            })
        })
        .collect()
}

#[test]
fn learner_promotes_and_rolls_back_under_concurrent_load() {
    let base = base_model(11);
    let runtime = started_runtime();
    runtime.deploy("iris", compile(&base)).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let sent = Arc::new(AtomicUsize::new(0));
    let producers = spawn_producers(&runtime, "iris", 4, &stop, &sent);

    // Cycle 3 promotes a corrupted candidate past a bypassed gate — the
    // injected post-promotion regression the learner must detect on
    // cycle 4's fresh holdout and roll back within that one cycle.
    let plan = FaultPlan::new()
        .inject(3, Fault::CorruptCandidate)
        .inject(3, Fault::BypassGate);
    let config = OnlineConfig {
        window: 30,
        epochs_per_cycle: 3,
        holdout_fraction: 0.25,
        shadow_rate: 1.0,
        min_shadow_requests: 4,
        shadow_wait: Duration::from_secs(5),
        promote_min_accuracy: 0.55,
        accuracy_tolerance: 1.0,
        max_p99_ratio: 50.0, // generous: CI latency noise must not gate
        rollback_min_accuracy: 0.5,
        max_cycles: Some(6),
        seed: 21,
    };
    let learner = OnlineLearner::start_with_faults(
        &runtime,
        "iris",
        base,
        quick_trainer(),
        ReplayStream::iris(7),
        config,
        plan,
    )
    .unwrap();
    let report = learner.join();
    stop.store(true, Ordering::Relaxed);

    let mut answered_total = 0usize;
    for handle in producers {
        let (answered, versions) = handle.join().unwrap();
        answered_total += answered;
        // Per-producer monotonicity: promotion AND rollback only ever move
        // the version forward.
        let mut max_seen = 0;
        for &v in &versions {
            assert!(v >= max_seen, "version went backwards: {versions:?}");
            max_seen = v;
        }
    }

    // The corrupted candidate was bypassed straight through the gate…
    assert!(
        matches!(report.outcome_at(3), Some(&CycleOutcome::Promoted { .. })),
        "cycle 3 must promote the corrupted candidate: {:?}",
        report.cycles
    );
    // …and the very next cycle's holdout check rolled it back.
    assert!(
        matches!(report.outcome_at(4), Some(&CycleOutcome::RolledBack { .. })),
        "cycle 4 must roll the regression back: {:?}",
        report.cycles
    );
    assert!(report.promotions() >= 1);
    assert_eq!(report.rollbacks(), 1);
    assert_eq!(report.cycles.len(), 6);

    let metrics = runtime.shutdown();
    // Zero lost or duplicated responses across promotion and rollback:
    // every producer-side success is accounted exactly once.
    assert_eq!(metrics.completed, answered_total as u64);
    assert_eq!(metrics.completed, sent.load(Ordering::Relaxed) as u64);
    assert_eq!(metrics.failed, 0);
    assert_eq!(metrics.train_cycles, 6);
    assert_eq!(metrics.rollbacks, 1);
    assert!(
        metrics.promotions >= 2,
        "initial deploy + at least the bypassed promotion"
    );
    assert!(
        metrics.shadow_requests > 0,
        "mirrored traffic must have flowed through the shadow"
    );
}

#[test]
fn trainer_panics_do_not_kill_the_serving_runtime() {
    let base = base_model(12);
    let runtime = started_runtime();
    runtime.deploy("iris", compile(&base)).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let sent = Arc::new(AtomicUsize::new(0));
    let producers = spawn_producers(&runtime, "iris", 2, &stop, &sent);

    let plan = FaultPlan::new()
        .inject(0, Fault::TrainerPanic)
        .inject(1, Fault::TrainerPanic);
    let config = OnlineConfig {
        window: 20,
        min_shadow_requests: 0,
        rollback_min_accuracy: 0.0,
        max_cycles: Some(2),
        seed: 3,
        ..Default::default()
    };
    let learner = OnlineLearner::start_with_faults(
        &runtime,
        "iris",
        base,
        quick_trainer(),
        ReplayStream::iris(8),
        config,
        plan,
    )
    .unwrap();
    let report = learner.join();
    assert_eq!(report.panics(), 2);

    // Serving is fully alive after both panics.
    let client = runtime.client();
    client.predict("iris", &[0.4, 0.2, 0.6, 0.1]).unwrap();
    stop.store(true, Ordering::Relaxed);
    for handle in producers {
        handle.join().unwrap();
    }
    let metrics = runtime.shutdown();
    assert_eq!(metrics.learner_panics, 2);
    assert_eq!(metrics.failed, 0);
    assert_eq!(metrics.promotions, 1, "nothing but the initial deploy");
}

#[test]
fn failing_candidates_never_reach_the_registry() {
    let base = base_model(13);
    let base_artifact = compile(&base);
    let runtime = started_runtime();
    runtime.deploy("iris", base_artifact.clone()).unwrap();

    // Every cycle fails a different way; none may touch the registry. The
    // corrupted candidate (finite garbage) is NOT gate-bypassed here, so
    // the accuracy gate must reject it.
    let plan = FaultPlan::new()
        .inject(0, Fault::TrainerPanic)
        .inject(1, Fault::CompileFail)
        .inject(2, Fault::PoisonCandidate)
        .inject(3, Fault::CorruptCandidate);
    let config = OnlineConfig {
        window: 24,
        epochs_per_cycle: 1,
        min_shadow_requests: 0,
        promote_min_accuracy: 0.55,
        accuracy_tolerance: 0.0,
        rollback_min_accuracy: 0.0,
        max_cycles: Some(4),
        seed: 9,
        ..Default::default()
    };
    let learner = OnlineLearner::start_with_faults(
        &runtime,
        "iris",
        base.clone(),
        quick_trainer(),
        ReplayStream::iris(9),
        config,
        plan,
    )
    .unwrap();
    let report = learner.join();

    assert_eq!(report.outcome_at(0), Some(&CycleOutcome::TrainerPanicked));
    assert_eq!(report.outcome_at(1), Some(&CycleOutcome::RejectedCompile));
    assert_eq!(
        report.outcome_at(2),
        Some(&CycleOutcome::RejectedValidation)
    );
    assert!(
        matches!(
            report.outcome_at(3),
            Some(&CycleOutcome::RejectedAccuracy { .. })
        ),
        "the all-zero candidate must fail the accuracy gate: {:?}",
        report.cycles
    );
    assert_eq!(report.promotions(), 0);

    // The live artifact is untouched: version 1, and serving answers are
    // bit-identical to direct evaluation on the original artifact.
    assert_eq!(runtime.registry().active_version("iris"), Some(1));
    let client = runtime.client();
    let mut probe_rng = StdRng::seed_from_u64(0);
    for probe in [[0.1, 0.9, 0.4, 0.3], [0.7, 0.2, 0.5, 0.8]] {
        let served = client.predict("iris", &probe).unwrap();
        let direct = base_artifact.predict_one(&probe, &mut probe_rng).unwrap();
        assert_eq!(served.prediction, direct);
    }

    let metrics = runtime.shutdown();
    assert_eq!(metrics.candidates_rejected, 3);
    assert_eq!(metrics.learner_panics, 1);
    assert_eq!(metrics.promotions, 1, "only the initial deploy");
}

#[test]
fn seeded_fault_schedules_replay_the_same_outcome_sequence() {
    // With shadow gating disabled the entire cycle pipeline is
    // deterministic (seeded stream, seeded training, seeded faults), so
    // two identically-seeded runs must produce identical outcome
    // sequences — the property that makes fault regressions replayable.
    let run = || {
        let base = base_model(14);
        let runtime = started_runtime();
        runtime.deploy("iris", compile(&base)).unwrap();
        let learner = OnlineLearner::start_with_faults(
            &runtime,
            "iris",
            base,
            quick_trainer(),
            ReplayStream::iris(10),
            OnlineConfig {
                window: 20,
                epochs_per_cycle: 1,
                min_shadow_requests: 0,
                rollback_min_accuracy: 0.0,
                max_cycles: Some(8),
                seed: 17,
                ..Default::default()
            },
            FaultPlan::seeded(123, 8, 0.6),
        )
        .unwrap();
        let report = learner.join();
        runtime.shutdown();
        report
            .cycles
            .into_iter()
            .map(|c| c.outcome)
            .collect::<Vec<_>>()
    };
    let first = run();
    let second = run();
    assert_eq!(first.len(), 8);
    assert_eq!(first, second, "seeded fault runs must replay exactly");
    assert_eq!(
        FaultPlan::seeded(123, 8, 0.6),
        FaultPlan::seeded(123, 8, 0.6)
    );
}
