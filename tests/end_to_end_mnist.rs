//! End-to-end synthetic-MNIST binary pipeline: image generation → PCA →
//! normalisation → QuClassi training → evaluation.

use quclassi::prelude::*;
use quclassi_integration_tests::mnist_pair_split;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn train_pair_with_budget(
    a: usize,
    b: usize,
    dims: usize,
    per_class: usize,
    epochs: usize,
    seed: u64,
) -> f64 {
    let split = mnist_pair_split(a, b, dims, per_class, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(dims, 2), &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs,
            learning_rate: 0.1,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &split.train_x, &split.train_y, &mut rng)
        .expect("training succeeds");
    model
        .evaluate_accuracy(
            &split.test_x,
            &split.test_y,
            &FidelityEstimator::analytic(),
            &mut rng,
        )
        .expect("evaluation succeeds")
}

fn train_pair(a: usize, b: usize, dims: usize, epochs: usize, seed: u64) -> f64 {
    train_pair_with_budget(a, b, dims, 30, epochs, seed)
}

#[test]
fn easy_pair_one_vs_five_is_learned_well() {
    let acc = train_pair(1, 5, 6, 8, 3);
    assert!(acc >= 0.85, "(1,5) accuracy {acc}");
}

#[test]
fn zero_vs_six_is_learned_above_chance() {
    let acc = train_pair(0, 6, 6, 8, 4);
    assert!(acc >= 0.75, "(0,6) accuracy {acc}");
}

#[test]
fn hard_pair_three_vs_eight_is_above_chance() {
    // 3 vs 8 is deliberately the hardest pair of the synthetic generator;
    // it must still beat random guessing by a clear margin.
    let acc = train_pair(3, 8, 8, 10, 5);
    assert!(acc >= 0.65, "(3,8) accuracy {acc}");
}

/// The paper-scale binary-MNIST sweep (Fig. 9 pairs at full epoch count and
/// larger per-class sample budgets). Slow, so opt in with
/// `cargo test -- --ignored`.
#[test]
#[ignore = "full paper reproduction (~minutes); run with: cargo test -- --ignored"]
fn full_paper_mnist_binary_reproduction() {
    for (a, b, floor) in [(1usize, 5usize, 0.9), (0, 6, 0.85), (3, 8, 0.7)] {
        let acc = train_pair_with_budget(a, b, 8, 100, 30, 3);
        assert!(acc >= floor, "({a},{b}) full-epoch accuracy {acc}");
    }
}

#[test]
fn three_class_mnist_subset_trains() {
    use quclassi_classical::pca::Pca;
    use quclassi_datasets::mnist;
    use quclassi_datasets::preprocess::MinMaxScaler;

    let mut rng = StdRng::seed_from_u64(6);
    let dataset = mnist::generate(24, 6).filter_classes(&[0, 3, 6]);
    let (train_raw, test_raw) = dataset.stratified_split(0.7, &mut rng);
    let pca = Pca::fit(&train_raw.features, 6, &mut rng);
    let scaler = MinMaxScaler::fit(&pca.transform(&train_raw.features));
    let train_x = scaler.transform(&pca.transform(&train_raw.features));
    let test_x = scaler.transform(&pca.transform(&test_raw.features));

    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(6, 3), &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs: 8,
            learning_rate: 0.1,
            contrastive: true,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &train_x, &train_raw.labels, &mut rng)
        .unwrap();
    let acc = model
        .evaluate_accuracy(
            &test_x,
            &test_raw.labels,
            &FidelityEstimator::analytic(),
            &mut rng,
        )
        .unwrap();
    assert!(acc >= 0.6, "(0,3,6) accuracy {acc}");
}
