//! End-to-end regression suite for the compiled inference engine
//! (`quclassi-infer`): the compiled artifact must reproduce the uncompiled
//! serving path — bit-for-bit for deterministic analytic serving, to fusion
//! tolerance for the exact SWAP test — for 1, 2 and 8 threads, and must
//! survive a round trip through `quclassi::io` persistence unchanged.

use quclassi::io::{model_from_string, model_to_string};
use quclassi::prelude::*;
use quclassi_infer::{CompiledModel, Prediction};
use quclassi_sim::batch::BatchExecutor;
use quclassi_sim::executor::Executor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small trained model on the Iris shape (4 features, 3 classes).
fn trained_iris_model() -> QuClassiModel {
    let mut rng = StdRng::seed_from_u64(17);
    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_sde(4, 3), &mut rng).unwrap();
    let features: Vec<Vec<f64>> = (0..12)
        .map(|i| {
            let j = 0.02 * (i % 4) as f64;
            match i % 3 {
                0 => vec![0.1 + j, 0.15, 0.1, 0.2],
                1 => vec![0.5, 0.85 - j, 0.5, 0.6],
                _ => vec![0.9 - j, 0.2, 0.85, 0.3 + j],
            }
        })
        .collect();
    let labels: Vec<usize> = (0..12).map(|i| i % 3).collect();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs: 4,
            learning_rate: 0.08,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &features, &labels, &mut rng)
        .unwrap();
    model
}

/// The 17-qubit MNIST shape (16 features, 2 classes) with random parameters.
fn mnist_shape_model() -> QuClassiModel {
    let mut rng = StdRng::seed_from_u64(23);
    QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(16, 2), &mut rng).unwrap()
}

fn probe_samples(dim: usize, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|s| {
            (0..dim)
                .map(|i| {
                    let v = 0.07 + 0.13 * ((s * dim + i) % 7) as f64;
                    v.min(0.97)
                })
                .collect()
        })
        .collect()
}

#[test]
fn compiled_analytic_is_bit_identical_to_uncompiled_across_thread_counts() {
    // The golden run: the pre-compilation sequential path, sample by sample.
    for model in [trained_iris_model(), mnist_shape_model()] {
        let estimator = FidelityEstimator::analytic();
        let xs = probe_samples(model.config().data_dim, 6);
        let mut rng = StdRng::seed_from_u64(0);
        let golden: Vec<Vec<u64>> = xs
            .iter()
            .map(|x| {
                model
                    .predict_proba(x, &estimator, &mut rng)
                    .unwrap()
                    .into_iter()
                    .map(f64::to_bits)
                    .collect()
            })
            .collect();
        let golden_labels: Vec<usize> = xs
            .iter()
            .map(|x| model.predict(x, &estimator, &mut rng).unwrap())
            .collect();

        for threads in [1usize, 2, 8] {
            let compiled = CompiledModel::compile(&model, estimator.clone()).unwrap();
            let batch = BatchExecutor::new(threads, 0);
            let predictions = compiled.predict_many(&xs, &batch, 0).unwrap();
            for ((p, bits), &label) in predictions.iter().zip(golden.iter()).zip(&golden_labels) {
                let got: Vec<u64> = p.probabilities.iter().map(|v| v.to_bits()).collect();
                assert_eq!(&got, bits, "{threads} threads");
                assert_eq!(p.label, label, "{threads} threads");
            }
        }
    }
}

#[test]
fn compiled_swap_test_is_thread_invariant_and_matches_uncompiled() {
    let model = trained_iris_model();
    let estimator = FidelityEstimator::swap_test(Executor::ideal());
    let xs = probe_samples(4, 5);
    // Uncompiled sequential reference (per-gate, unfused execution).
    let mut rng = StdRng::seed_from_u64(0);
    let reference: Vec<Vec<f64>> = xs
        .iter()
        .map(|x| model.class_fidelities(x, &estimator, &mut rng).unwrap())
        .collect();

    let mut runs: Vec<Vec<Vec<u64>>> = Vec::new();
    for threads in [1usize, 2, 8] {
        let compiled = CompiledModel::compile(&model, estimator.clone()).unwrap();
        let predictions = compiled
            .predict_many(&xs, &BatchExecutor::new(threads, 0), 0)
            .unwrap();
        for (p, r) in predictions.iter().zip(reference.iter()) {
            for (a, b) in p.fidelities.iter().zip(r.iter()) {
                // Fused execution re-associates floating point; equality
                // holds to fusion tolerance (the fusion_equivalence suite
                // pins the same bound).
                assert!((a - b).abs() < 1e-10, "{a} vs {b}");
            }
        }
        runs.push(
            predictions
                .iter()
                .map(|p| p.fidelities.iter().map(|f| f.to_bits()).collect())
                .collect(),
        );
    }
    // Across thread counts the compiled results are bit-identical.
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[0], runs[2]);
}

#[test]
fn persisted_model_compiles_to_a_bit_identical_artifact() {
    // save → load → compile → predict_many must equal the in-memory
    // compiled path bit-for-bit: persistence prints parameters exactly
    // (17 significant digits round-trip f64), so nothing may drift.
    let model = trained_iris_model();
    let restored = model_from_string(&model_to_string(&model)).unwrap();
    assert_eq!(restored.config(), model.config());

    let xs = probe_samples(4, 6);
    let batch = BatchExecutor::new(4, 0);
    for estimator in [
        FidelityEstimator::analytic(),
        FidelityEstimator::swap_test(Executor::ideal()),
    ] {
        let in_memory = CompiledModel::compile(&model, estimator.clone()).unwrap();
        let reloaded = CompiledModel::compile(&restored, estimator.clone()).unwrap();
        let a = in_memory.predict_many(&xs, &batch, 0).unwrap();
        let b = reloaded.predict_many(&xs, &batch, 0).unwrap();
        let bits = |ps: &[Prediction]| -> Vec<Vec<u64>> {
            ps.iter()
                .map(|p| {
                    p.fidelities
                        .iter()
                        .chain(p.probabilities.iter())
                        .map(|v| v.to_bits())
                        .collect()
                })
                .collect()
        };
        assert_eq!(bits(&a), bits(&b));
        assert_eq!(
            a.iter().map(|p| p.label).collect::<Vec<_>>(),
            b.iter().map(|p| p.label).collect::<Vec<_>>()
        );
    }
}

#[test]
fn shot_based_serving_is_reproducible_per_seed_and_thread_invariant() {
    let model = trained_iris_model();
    let estimator = FidelityEstimator::swap_test(Executor::ideal().with_shots(Some(512)));
    let compiled = CompiledModel::compile(&model, estimator).unwrap();
    let xs = probe_samples(4, 4);
    let run = |threads: usize, seed: u64| -> Vec<Vec<u64>> {
        compiled
            .predict_many(&xs, &BatchExecutor::new(threads, 0), seed)
            .unwrap()
            .into_iter()
            .map(|p| p.fidelities.iter().map(|f| f.to_bits()).collect())
            .collect()
    };
    assert_eq!(run(1, 11), run(2, 11));
    assert_eq!(run(1, 11), run(8, 11));
    assert_ne!(run(1, 11), run(1, 12));
}

#[test]
fn cached_serving_never_changes_answers() {
    let model = trained_iris_model();
    let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
    let uncached = CompiledModel::compile(&model, FidelityEstimator::analytic())
        .unwrap()
        .with_cache_capacity(0);
    let xs = probe_samples(4, 3);
    let batch = BatchExecutor::single_threaded(0);
    // Serve the same batch three times: hits replace evaluations, answers
    // stay bit-identical to the cache-free artifact.
    let reference = uncached.predict_many(&xs, &batch, 0).unwrap();
    for round in 0..3 {
        let served = compiled.predict_many(&xs, &batch, 0).unwrap();
        assert_eq!(served, reference, "round {round}");
    }
    let stats = compiled.cache_stats();
    assert_eq!(stats.entries, 3);
    assert!(stats.hits >= 6, "expected rounds 2–3 to be cache hits");
    assert_eq!(uncached.cache_stats().entries, 0);
}

#[test]
fn evaluate_accuracy_matches_model_evaluate_accuracy() {
    let model = trained_iris_model();
    let estimator = FidelityEstimator::analytic();
    let xs = probe_samples(4, 9);
    let mut rng = StdRng::seed_from_u64(5);
    let labels: Vec<usize> = xs
        .iter()
        .map(|x| model.predict(x, &estimator, &mut rng).unwrap())
        .collect();
    let model_acc = model
        .evaluate_accuracy(&xs, &labels, &estimator, &mut rng)
        .unwrap();
    let compiled = CompiledModel::compile(&model, estimator).unwrap();
    let compiled_acc = compiled
        .evaluate_accuracy(&xs, &labels, &BatchExecutor::new(2, 0), 0)
        .unwrap();
    assert_eq!(model_acc.to_bits(), compiled_acc.to_bits());
}
