//! # quclassi-infer
//!
//! The compiled inference engine for the QuClassi reproduction: the
//! deployment side of the train → compile → serve pipeline.
//!
//! QuClassi's serving story (Stein et al., MLSys 2022) is read-heavy and
//! latency-sensitive: a trained model is frozen, and every request scores a
//! sample against one precompiled quantum state per class via SWAP-test
//! fidelity. The convenience path in the `quclassi` crate
//! ([`quclassi::model::QuClassiModel::predict`]) re-lowers and re-fuses its
//! circuits on *every* call; this crate moves all of that work to a single
//! compile step:
//!
//! * [`CompiledModel::compile`] freezes a trained model into an immutable
//!   artifact — per-class class-state preparations evaluated once (analytic
//!   method) or per-class [`quclassi_sim::fusion::FusedCircuit`]s with the
//!   trained angles baked into their precomputed static preludes (SWAP-test
//!   method), plus a precompiled parametric data-register circuit so a
//!   sample's encoding binds without any recompilation;
//! * [`CompiledModel::predict_many`] fans samples × classes over a
//!   [`quclassi_sim::batch::BatchExecutor`], returning softmaxed
//!   probabilities, the arg-max label, and per-sample confidence/top-k
//!   through [`Prediction`];
//! * repeated and near-duplicate inputs are answered from an LRU cache
//!   keyed by the sample's *encoding fingerprint* (the exact bit pattern of
//!   its rotation angles), which is switched off automatically for
//!   stochastic estimators so sampling semantics are never cached away.
//!
//! ## Determinism
//!
//! The artifact inherits PR 2's guarantees: deterministic estimators
//! (analytic, exact SWAP test) produce results **bit-identical to the
//! uncompiled sequential path** (analytic exactly; exact SWAP test up to
//! gate-fusion float re-association, and bit-identical across any thread
//! count), and stochastic estimators derive per-job RNG streams from
//! `(base_seed, job index)` so batched serving is bit-identical for 1, 2 or
//! 8 threads.
//!
//! ## Quickstart
//!
//! ```
//! use quclassi::prelude::*;
//! use quclassi_infer::CompiledModel;
//! use quclassi_sim::batch::BatchExecutor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // Train (or load) a model…
//! let mut model =
//!     QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
//! let features = vec![vec![0.1, 0.2, 0.1, 0.15], vec![0.9, 0.8, 0.9, 0.85]];
//! let labels = vec![0, 1];
//! Trainer::new(
//!     TrainingConfig { epochs: 5, learning_rate: 0.1, ..Default::default() },
//!     FidelityEstimator::analytic(),
//! )
//! .fit(&mut model, &features, &labels, &mut rng)
//! .unwrap();
//!
//! // …compile it once…
//! let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
//!
//! // …and serve batches without ever re-lowering a circuit.
//! let predictions = compiled
//!     .predict_many(&features, &BatchExecutor::from_env(0).unwrap(), 0)
//!     .unwrap();
//! assert_eq!(predictions.len(), 2);
//! for (p, x) in predictions.iter().zip(features.iter()) {
//!     // Identical to the uncompiled convenience path, without the re-lowering.
//!     let reference = model.predict(x, &FidelityEstimator::analytic(), &mut rng).unwrap();
//!     assert_eq!(p.label, reference);
//!     assert!((p.probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//!     assert!(p.confidence() >= 0.5);
//! }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod compiled;

pub use cache::CacheStats;
pub use compiled::{CompiledModel, Prediction};

/// Re-exports of the most commonly used serving types.
pub mod prelude {
    pub use crate::cache::CacheStats;
    pub use crate::compiled::{CompiledModel, Prediction};
    pub use quclassi_sim::batch::BatchExecutor;
}
