//! The immutable serving artifact: a trained model compiled for inference.

use crate::cache::{fingerprint, CacheStats, EncodingCache};
use quclassi::encoding::DataEncoder;
use quclassi::error::QuClassiError;
use quclassi::loss::softmax;
use quclassi::model::{QuClassiConfig, QuClassiModel};
use quclassi::swap_test::{
    build_class_swap_test_circuit, fidelity_from_p0, FidelityEstimator, FidelityMethod,
};
use quclassi_sim::batch::BatchExecutor;
use quclassi_sim::fusion::FusedCircuit;
use quclassi_sim::gemm::StateMatrix;
use quclassi_sim::state::StateVector;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Mutex;

/// Default capacity of the encoding-fingerprint LRU cache.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// The method-specific compiled per-class artifacts.
#[derive(Clone, Debug)]
enum CompiledClasses {
    /// Analytic method: every class state |ω_c⟩ evaluated once at compile
    /// time and packed into one contiguous [`StateMatrix`] — scoring a
    /// sample is one in-place data-register preparation plus one GEMM row
    /// sweep over the packed class plane (one fixed-tree inner product per
    /// class, bit-identical to per-pair [`StateVector::fidelity`]).
    Analytic { class_matrix: StateMatrix },
    /// SWAP-test method: one fused circuit per class with the trained
    /// angles baked into the precomputed static prelude; the sample's
    /// encoding angles are the circuit's only parameters.
    SwapTest {
        circuits: Vec<FusedCircuit>,
        ancilla: usize,
    },
}

/// One serving result: the arg-max label plus the full softmax distribution
/// and the raw per-class fidelities it was derived from.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    /// Predicted class: arg-max of `probabilities`, with exact ties
    /// resolving to the *highest* tied index — the same tie-breaking as
    /// `QuClassiModel::predict`, so compiled and uncompiled labels always
    /// agree.
    pub label: usize,
    /// Softmaxed class probabilities (sums to 1).
    pub probabilities: Vec<f64>,
    /// Raw state fidelities the probabilities were softmaxed from.
    pub fidelities: Vec<f64>,
}

impl Prediction {
    /// The probability assigned to the predicted label.
    pub fn confidence(&self) -> f64 {
        self.probabilities.get(self.label).copied().unwrap_or(0.0)
    }

    /// Gap between the top-1 and top-2 probabilities (1.0 for a single
    /// class): a margin near zero flags an ambiguous sample.
    pub fn margin(&self) -> f64 {
        let mut top = f64::NEG_INFINITY;
        let mut second = f64::NEG_INFINITY;
        for &p in &self.probabilities {
            if p > top {
                second = top;
                top = p;
            } else if p > second {
                second = p;
            }
        }
        if second.is_finite() {
            top - second
        } else {
            1.0
        }
    }

    /// The `k` most probable classes, most probable first. Exact ties
    /// resolve to the higher class index, consistent with
    /// [`Prediction::label`] (so `top_k(1)[0].0 == label` always holds).
    /// `k` is clamped to the class count.
    pub fn top_k(&self, k: usize) -> Vec<(usize, f64)> {
        let mut order: Vec<usize> = (0..self.probabilities.len()).collect();
        order.sort_by(|&a, &b| {
            self.probabilities[b]
                .partial_cmp(&self.probabilities[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a))
        });
        order
            .into_iter()
            .take(k)
            .map(|c| (c, self.probabilities[c]))
            .collect()
    }
}

/// A trained QuClassi model compiled into an immutable inference artifact.
///
/// Compile once with [`CompiledModel::compile`]; every circuit lowering,
/// gate fusion and class-state evaluation happens there. Serving calls
/// ([`CompiledModel::predict`], [`CompiledModel::predict_many`]) only bind
/// a sample's encoding angles into the precompiled programs.
///
/// ```
/// use quclassi::prelude::*;
/// use quclassi_infer::CompiledModel;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let model =
///     QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng).unwrap();
/// let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
///
/// let x = [0.2, 0.7, 0.4, 0.9];
/// // Bit-identical to the uncompiled path, for every deterministic query.
/// let fast = compiled.predict_proba(&x, &mut rng).unwrap();
/// let slow = model.predict_proba(&x, &FidelityEstimator::analytic(), &mut rng).unwrap();
/// assert_eq!(fast, slow);
/// assert_eq!(
///     compiled.predict(&x, &mut rng).unwrap(),
///     model.predict(&x, &FidelityEstimator::analytic(), &mut rng).unwrap(),
/// );
/// ```
#[derive(Debug)]
pub struct CompiledModel {
    config: QuClassiConfig,
    encoder: DataEncoder,
    estimator: FidelityEstimator,
    classes: CompiledClasses,
    /// Capacity > 0 and deterministic estimator, frozen at construction so
    /// the hot path never locks the cache just to learn it is disabled.
    cache_enabled: bool,
    cache: Mutex<EncodingCache>,
}

impl Clone for CompiledModel {
    fn clone(&self) -> Self {
        CompiledModel {
            config: self.config.clone(),
            encoder: self.encoder.clone(),
            estimator: self.estimator.clone(),
            classes: self.classes.clone(),
            cache_enabled: self.cache_enabled,
            cache: Mutex::new(self.lock_cache().clone()),
        }
    }
}

impl CompiledModel {
    /// Compiles a trained model for serving under `estimator`.
    ///
    /// * Analytic method: each class state is prepared once, analytically.
    /// * SWAP-test method: each class gets its own fused circuit with the
    ///   trained angles baked in (hoisted into the precomputed prelude) and
    ///   the data register parametric. Ideal executors run the fused
    ///   program; noisy/density executors transparently fall back to
    ///   per-gate evolution of the source circuit, preserving semantics.
    pub fn compile(
        model: &QuClassiModel,
        estimator: FidelityEstimator,
    ) -> Result<Self, QuClassiError> {
        let config = model.config().clone();
        let encoder = model.encoder().clone();
        let classes = match estimator.method() {
            FidelityMethod::Analytic => {
                let states = (0..model.num_classes())
                    .map(|c| model.learned_state(c))
                    .collect::<Result<Vec<_>, _>>()?;
                let class_matrix = StateMatrix::pack(&states)?;
                CompiledClasses::Analytic { class_matrix }
            }
            FidelityMethod::SwapTest => {
                let mut circuits = Vec::with_capacity(model.num_classes());
                let mut ancilla = 0;
                for c in 0..model.num_classes() {
                    let (circuit, layout) = build_class_swap_test_circuit(
                        model.stack(),
                        model.class_params(c)?,
                        &encoder,
                    )?;
                    ancilla = layout.ancilla;
                    circuits.push(FusedCircuit::compile(&circuit));
                }
                CompiledClasses::SwapTest { circuits, ancilla }
            }
        };
        let cache_enabled = !estimator.is_stochastic();
        Ok(CompiledModel {
            config,
            encoder,
            estimator,
            classes,
            cache_enabled,
            cache: Mutex::new(EncodingCache::new(DEFAULT_CACHE_CAPACITY)),
        })
    }

    /// Replaces the LRU cache capacity (entries; 0 disables caching).
    /// Existing entries and counters are discarded.
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        CompiledModel {
            cache_enabled: capacity > 0 && !self.estimator.is_stochastic(),
            cache: Mutex::new(EncodingCache::new(capacity)),
            ..self
        }
    }

    /// Sets the intra-circuit thread budget the single-sample serving
    /// paths run under: large SWAP-test circuit sweeps and analytic
    /// inner-product reductions split across the budget's workers. Batched
    /// paths ([`CompiledModel::predict_many`]) take their budget from the
    /// [`BatchExecutor`] instead (`QUCLASSI_INTRA_THREADS` via
    /// [`BatchExecutor::from_env`]). Pure throughput knob — predictions
    /// are bit-identical for any value.
    pub fn with_intra(mut self, intra: quclassi_sim::intra::IntraThreads) -> Self {
        self.estimator = self.estimator.with_intra(intra);
        self
    }

    /// The model configuration the artifact was compiled from.
    pub fn config(&self) -> &QuClassiConfig {
        &self.config
    }

    /// The data encoder (defines the expected feature dimension).
    pub fn encoder(&self) -> &DataEncoder {
        &self.encoder
    }

    /// The estimator the artifact serves under.
    pub fn estimator(&self) -> &FidelityEstimator {
        &self.estimator
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    /// Whether results are answered from the fingerprint cache. Caching is
    /// disabled for stochastic estimators (shots / noise draw fresh
    /// randomness per query, which must never be replayed from a cache) and
    /// when the capacity is 0.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Cache effectiveness counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock_cache().stats()
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, EncodingCache> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Fidelities between one encoded sample (given as angles) and every
    /// class, computed sequentially — the single-sample hot path.
    fn fidelities_from_angles<R: Rng + ?Sized>(
        &self,
        angles: &[f64],
        rng: &mut R,
    ) -> Result<Vec<f64>, QuClassiError> {
        match &self.classes {
            CompiledClasses::Analytic { class_matrix } => {
                // Product-state fast preparation: bit-identical fidelities
                // to the uncompiled `encode_state` path (see
                // `DataEncoder::encode_state_from_angles`), swept against
                // the packed class plane in one GEMM row pass.
                let data = self.encoder.encode_state_from_angles(angles)?;
                let intra = self.estimator.executor().intra();
                let mut fidelities = vec![0.0; class_matrix.rows()];
                class_matrix.fidelities_into_with(&data, intra, &mut fidelities)?;
                Ok(fidelities)
            }
            CompiledClasses::SwapTest { circuits, ancilla } => circuits
                .iter()
                .map(|circuit| {
                    let p1 = self
                        .estimator
                        .executor()
                        .probability_of_one_compiled(circuit, angles, *ancilla, rng)?;
                    Ok(fidelity_from_p0(1.0 - p1))
                })
                .collect(),
        }
    }

    /// Fidelities between a data point and every class state, answering
    /// repeated encodings from the LRU cache when the estimator is
    /// deterministic.
    pub fn class_fidelities<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        rng: &mut R,
    ) -> Result<Vec<f64>, QuClassiError> {
        let angles = self.encoder.encoding_angles(x)?;
        if !self.cache_enabled() {
            return self.fidelities_from_angles(&angles, rng);
        }
        let key = fingerprint(&angles);
        if let Some(hit) = self.lock_cache().get(&key) {
            return Ok(hit);
        }
        let fidelities = self.fidelities_from_angles(&angles, rng)?;
        self.lock_cache().insert(key, fidelities.clone());
        Ok(fidelities)
    }

    /// Softmaxed class probabilities for one data point.
    pub fn predict_proba<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        rng: &mut R,
    ) -> Result<Vec<f64>, QuClassiError> {
        Ok(softmax(&self.class_fidelities(x, rng)?))
    }

    /// Predicted class label for one data point.
    pub fn predict<R: Rng + ?Sized>(&self, x: &[f64], rng: &mut R) -> Result<usize, QuClassiError> {
        Ok(argmax(&self.predict_proba(x, rng)?))
    }

    /// The full [`Prediction`] (label, probabilities, fidelities) for one
    /// data point.
    pub fn predict_one<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        rng: &mut R,
    ) -> Result<Prediction, QuClassiError> {
        let fidelities = self.class_fidelities(x, rng)?;
        Ok(prediction_from_fidelities(fidelities))
    }

    /// The `k` most probable classes for one data point.
    pub fn top_k<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        k: usize,
        rng: &mut R,
    ) -> Result<Vec<(usize, f64)>, QuClassiError> {
        Ok(self.predict_one(x, rng)?.top_k(k))
    }

    /// Scores a batch of samples, fanning the evaluations over `batch`.
    ///
    /// * **Deterministic estimators** — results are bit-identical to
    ///   sequential [`CompiledModel::predict_one`] calls, for any thread
    ///   count. When caching is enabled, duplicate encodings inside the
    ///   batch are evaluated once and answered from the cache afterwards;
    ///   with caching disabled every sample is evaluated directly (the
    ///   answers are identical either way).
    /// * **Stochastic estimators** — every sample × class evaluation draws
    ///   from its own RNG stream derived from `(base_seed, job index)`, so
    ///   results are bit-identical for any thread count and vary with
    ///   `base_seed` exactly like `FidelityEstimator::estimate_many`. No
    ///   deduplication or caching is applied.
    pub fn predict_many(
        &self,
        xs: &[Vec<f64>],
        batch: &BatchExecutor,
        base_seed: u64,
    ) -> Result<Vec<Prediction>, QuClassiError> {
        let angles: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| self.encoder.encoding_angles(x))
            .collect::<Result<_, _>>()?;
        self.predict_many_from_angles(angles, batch, base_seed)
    }

    /// Like [`CompiledModel::predict_many`], but for samples whose encoding
    /// angles were already computed (via
    /// [`quclassi::encoding::DataEncoder::encoding_angles`]).
    ///
    /// This is the entry point of a serving runtime that validates and
    /// encodes each request once at admission time and later drains queued
    /// requests — now just angle vectors — into one batched fan-out: the
    /// flush must not repeat (or re-fail) per-request work. Every angle
    /// vector is still validated (count, finiteness) before anything is
    /// evaluated, so a malformed entry rejects the call instead of
    /// poisoning the batch.
    ///
    /// Semantics (dedup, caching, determinism) are exactly those of
    /// [`CompiledModel::predict_many`]: for deterministic estimators the
    /// result for each angle vector is bit-identical to a sequential
    /// single-sample evaluation, for any thread count and any batch
    /// composition.
    pub fn predict_many_from_angles(
        &self,
        angles: Vec<Vec<f64>>,
        batch: &BatchExecutor,
        base_seed: u64,
    ) -> Result<Vec<Prediction>, QuClassiError> {
        for a in &angles {
            self.encoder.validate_angles(a)?;
        }
        if self.estimator.is_stochastic() || !self.cache_enabled() {
            // Straight evaluation, no fingerprinting. Stochastic: each
            // duplicate keeps its own sample draw, matching sequential
            // serving semantics. Deterministic-but-uncached: duplicates
            // would be answered identically either way, and with no cache
            // to fill, fingerprint hashing and dedup bookkeeping would tax
            // every unique sample for nothing.
            let fidelities = self.batched_fidelities(&angles, batch, base_seed)?;
            return Ok(fidelities
                .into_iter()
                .map(prediction_from_fidelities)
                .collect());
        }

        // Cached deterministic path: resolve cache hits, dedup the misses
        // by fingerprint (first appearance wins — a pure function of the
        // input batch, so thread count cannot perturb it), evaluate once
        // each.
        let keys: Vec<Vec<u64>> = angles.iter().map(|a| fingerprint(a)).collect();
        let mut resolved: Vec<Option<Vec<f64>>> = vec![None; angles.len()];
        {
            let mut cache = self.lock_cache();
            for (slot, key) in resolved.iter_mut().zip(keys.iter()) {
                *slot = cache.get(key);
            }
        }
        let mut miss_index: HashMap<&[u64], usize> = HashMap::new();
        let mut miss_angles: Vec<Vec<f64>> = Vec::new();
        let mut miss_keys: Vec<Vec<u64>> = Vec::new();
        let mut sample_to_miss: Vec<Option<usize>> = vec![None; angles.len()];
        for (i, key) in keys.iter().enumerate() {
            if resolved[i].is_some() {
                continue;
            }
            let idx = *miss_index.entry(key.as_slice()).or_insert_with(|| {
                miss_angles.push(angles[i].clone());
                miss_keys.push(key.clone());
                miss_angles.len() - 1
            });
            sample_to_miss[i] = Some(idx);
        }

        let miss_fidelities = self.batched_fidelities(&miss_angles, batch, base_seed)?;
        {
            let mut cache = self.lock_cache();
            for (key, fidelities) in miss_keys.into_iter().zip(miss_fidelities.iter()) {
                cache.insert(key, fidelities.clone());
            }
        }

        Ok(resolved
            .into_iter()
            .zip(sample_to_miss)
            .map(|(hit, miss)| {
                let fidelities = match hit {
                    Some(f) => f,
                    None => miss_fidelities[miss.expect("unresolved sample is a miss")].clone(),
                };
                prediction_from_fidelities(fidelities)
            })
            .collect())
    }

    /// Evaluates per-class fidelities for many encoded samples through the
    /// batch executor (one flat samples × classes job list for the
    /// SWAP-test method, one job per sample for the analytic method).
    fn batched_fidelities(
        &self,
        angles: &[Vec<f64>],
        batch: &BatchExecutor,
        base_seed: u64,
    ) -> Result<Vec<Vec<f64>>, QuClassiError> {
        if angles.is_empty() {
            return Ok(Vec::new());
        }
        match &self.classes {
            CompiledClasses::Analytic { class_matrix } => {
                // The batched analytic score is the samples × classes
                // fidelity GEMM: encoded-sample rows against the packed
                // (implicitly conjugated, via the inner product) class
                // plane. Sample rows are distributed over the batch
                // executor's workers; each worker reuses one scratch
                // register, so a steady-state flush performs no per-sample
                // statevector or gate-list allocations. Every entry goes
                // through the same fixed reduction tree as the
                // single-sample path, so results stay bit-identical for
                // any thread count and any batch composition.
                let jobs: Vec<&[f64]> = angles.iter().map(Vec::as_slice).collect();
                let intra = batch.intra();
                let width = class_matrix.num_qubits();
                batch
                    .run_seeded_with_scratch(
                        base_seed,
                        jobs,
                        || StateVector::zero_state(width),
                        |_, sample_angles, _, scratch| {
                            self.encoder
                                .encode_state_from_angles_into(sample_angles, scratch)?;
                            let mut fidelities = vec![0.0; class_matrix.rows()];
                            class_matrix.fidelities_into_with(scratch, intra, &mut fidelities)?;
                            Ok(fidelities)
                        },
                    )
                    .into_iter()
                    .collect()
            }
            CompiledClasses::SwapTest { circuits, ancilla } => {
                let jobs: Vec<(&FusedCircuit, &[f64])> = angles
                    .iter()
                    .flat_map(|a| circuits.iter().map(move |c| (c, a.as_slice())))
                    .collect();
                let p1s = batch.probabilities_of_one_each(
                    self.estimator.executor(),
                    &jobs,
                    *ancilla,
                    base_seed,
                )?;
                Ok(p1s
                    .chunks(circuits.len())
                    .map(|chunk| chunk.iter().map(|&p1| fidelity_from_p0(1.0 - p1)).collect())
                    .collect())
            }
        }
    }

    /// Classification accuracy of the compiled artifact over a labelled
    /// set, scored through [`CompiledModel::predict_many`].
    pub fn evaluate_accuracy(
        &self,
        features: &[Vec<f64>],
        labels: &[usize],
        batch: &BatchExecutor,
        base_seed: u64,
    ) -> Result<f64, QuClassiError> {
        if features.len() != labels.len() {
            return Err(QuClassiError::InvalidData(format!(
                "{} feature rows but {} labels",
                features.len(),
                labels.len()
            )));
        }
        if features.is_empty() {
            return Err(QuClassiError::InvalidData(
                "cannot evaluate accuracy on an empty set".to_string(),
            ));
        }
        let predictions = self.predict_many(features, batch, base_seed)?;
        let correct = predictions
            .iter()
            .zip(labels.iter())
            .filter(|(p, &y)| p.label == y)
            .count();
        Ok(correct as f64 / features.len() as f64)
    }
}

/// Arg-max with the exact tie-breaking of `QuClassiModel::predict`
/// (`Iterator::max_by` — the *last* maximal index wins; empty input maps
/// to 0).
fn argmax(probs: &[f64]) -> usize {
    probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn prediction_from_fidelities(fidelities: Vec<f64>) -> Prediction {
    let probabilities = softmax(&fidelities);
    Prediction {
        label: argmax(&probabilities),
        probabilities,
        fidelities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quclassi::model::QuClassiConfig;
    use quclassi_sim::executor::Executor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_model(seed: u64) -> QuClassiModel {
        let mut rng = StdRng::seed_from_u64(seed);
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_sde(4, 3), &mut rng).unwrap()
    }

    fn samples() -> Vec<Vec<f64>> {
        vec![
            vec![0.1, 0.2, 0.3, 0.4],
            vec![0.9, 0.8, 0.7, 0.6],
            vec![0.5, 0.5, 0.5, 0.5],
            vec![0.1, 0.2, 0.3, 0.4], // duplicate of sample 0
        ]
    }

    #[test]
    fn analytic_compiled_matches_model_bit_for_bit() {
        let model = trained_model(1);
        let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
        let estimator = FidelityEstimator::analytic();
        let mut rng = StdRng::seed_from_u64(0);
        for x in samples() {
            let fast = compiled.class_fidelities(&x, &mut rng).unwrap();
            let slow = model.class_fidelities(&x, &estimator, &mut rng).unwrap();
            assert_eq!(fast, slow);
            assert_eq!(
                compiled.predict_proba(&x, &mut rng).unwrap(),
                model.predict_proba(&x, &estimator, &mut rng).unwrap()
            );
            assert_eq!(
                compiled.predict(&x, &mut rng).unwrap(),
                model.predict(&x, &estimator, &mut rng).unwrap()
            );
        }
    }

    #[test]
    fn exact_swap_test_compiled_matches_model_closely() {
        let model = trained_model(2);
        let estimator = FidelityEstimator::swap_test(Executor::ideal());
        let compiled = CompiledModel::compile(&model, estimator.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for x in samples() {
            let fast = compiled.class_fidelities(&x, &mut rng).unwrap();
            let slow = model.class_fidelities(&x, &estimator, &mut rng).unwrap();
            for (f, s) in fast.iter().zip(slow.iter()) {
                assert!((f - s).abs() < 1e-10, "{f} vs {s}");
            }
            assert_eq!(
                compiled.predict(&x, &mut rng).unwrap(),
                model.predict(&x, &estimator, &mut rng).unwrap()
            );
        }
    }

    #[test]
    fn predict_many_matches_sequential_predictions() {
        let model = trained_model(3);
        let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
        let xs = samples();
        let mut rng = StdRng::seed_from_u64(0);
        let sequential: Vec<Prediction> = xs
            .iter()
            .map(|x| compiled.predict_one(x, &mut rng).unwrap())
            .collect();
        for threads in [1, 2, 8] {
            // A fresh artifact per thread count: the cache must not leak
            // results between runs of this comparison.
            let fresh = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
            let batched = fresh
                .predict_many(&xs, &BatchExecutor::new(threads, 0), 0)
                .unwrap();
            assert_eq!(batched, sequential, "{threads} threads");
        }
    }

    #[test]
    fn duplicate_samples_are_evaluated_once_and_answered_identically() {
        let model = trained_model(4);
        let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
        let xs = samples();
        let preds = compiled
            .predict_many(&xs, &BatchExecutor::single_threaded(0), 0)
            .unwrap();
        assert_eq!(preds[0], preds[3]);
        // 3 unique encodings inserted; lookups all missed (cold cache).
        let stats = compiled.cache_stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.hits, 0);
        // A second pass over the same batch is answered from the cache.
        let again = compiled
            .predict_many(&xs, &BatchExecutor::single_threaded(0), 0)
            .unwrap();
        assert_eq!(again, preds);
        assert_eq!(compiled.cache_stats().hits, 4);
    }

    #[test]
    fn predict_many_from_angles_matches_predict_many() {
        let model = trained_model(11);
        let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
        let xs = samples();
        let batch = BatchExecutor::single_threaded(0);
        let via_features = compiled.predict_many(&xs, &batch, 0).unwrap();
        // A fresh artifact so the second run cannot be answered from the
        // first run's cache.
        let fresh = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
        let angles: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| fresh.encoder().encoding_angles(x).unwrap())
            .collect();
        let via_angles = fresh.predict_many_from_angles(angles, &batch, 0).unwrap();
        assert_eq!(via_angles, via_features);
    }

    #[test]
    fn predict_many_from_angles_rejects_malformed_entries() {
        let model = trained_model(12);
        let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
        let batch = BatchExecutor::single_threaded(0);
        let good = compiled.encoder().encoding_angles(&[0.1; 4]).unwrap();
        // Wrong angle count.
        assert!(compiled
            .predict_many_from_angles(vec![good.clone(), vec![0.2; 3]], &batch, 0)
            .is_err());
        // Non-finite angle.
        assert!(compiled
            .predict_many_from_angles(vec![vec![0.1, f64::NAN, 0.2, 0.3]], &batch, 0)
            .is_err());
        // Rejection happens before evaluation: nothing was cached.
        assert_eq!(compiled.cache_stats().entries, 0);
        assert!(compiled
            .predict_many_from_angles(vec![good], &batch, 0)
            .is_ok());
    }

    #[test]
    fn stochastic_serving_is_thread_invariant_and_seed_sensitive() {
        let model = trained_model(5);
        let estimator = FidelityEstimator::swap_test(Executor::ideal().with_shots(Some(256)));
        let compiled = CompiledModel::compile(&model, estimator).unwrap();
        assert!(!compiled.cache_enabled());
        let xs = samples();
        let run = |threads: usize, seed: u64| -> Vec<Vec<u64>> {
            compiled
                .predict_many(&xs, &BatchExecutor::new(threads, 0), seed)
                .unwrap()
                .into_iter()
                .map(|p| p.fidelities.iter().map(|f| f.to_bits()).collect())
                .collect()
        };
        assert_eq!(run(1, 7), run(2, 7));
        assert_eq!(run(1, 7), run(8, 7));
        assert_ne!(run(1, 7), run(1, 8));
        // Duplicates are *not* deduplicated under a stochastic estimator:
        // each keeps its own shot noise.
        let r = run(1, 7);
        assert_ne!(r[0], r[3]);
    }

    #[test]
    fn top_k_confidence_and_margin() {
        let p = Prediction {
            label: 2,
            probabilities: vec![0.2, 0.3, 0.5],
            fidelities: vec![0.1, 0.4, 0.9],
        };
        assert_eq!(p.top_k(2), vec![(2, 0.5), (1, 0.3)]);
        assert_eq!(p.top_k(10).len(), 3);
        assert!((p.confidence() - 0.5).abs() < 1e-12);
        assert!((p.margin() - 0.2).abs() < 1e-12);
        let single = Prediction {
            label: 0,
            probabilities: vec![1.0],
            fidelities: vec![1.0],
        };
        assert_eq!(single.margin(), 1.0);
    }

    #[test]
    fn exact_ties_resolve_identically_in_label_and_top_k() {
        // Iterator::max_by returns the LAST maximal element, so on an exact
        // tie the higher class index wins — label, top_k and the uncompiled
        // QuClassiModel::predict must all agree on that.
        let tied = prediction_from_fidelities(vec![0.25, 0.25]);
        assert_eq!(tied.label, 1);
        assert_eq!(tied.top_k(1), vec![(1, tied.probabilities[1])]);
        assert_eq!(tied.top_k(2)[1].0, 0);
        assert_eq!(tied.margin(), 0.0);
        // Cross-check against the model's arg-max on a genuinely tied
        // model: identical parameters for both classes.
        let mut model = QuClassiModel::new(QuClassiConfig::qc_s(4, 2)).unwrap();
        let params = vec![0.4; model.parameters_per_class()];
        model.set_class_params(0, params.clone()).unwrap();
        model.set_class_params(1, params).unwrap();
        let estimator = FidelityEstimator::analytic();
        let compiled = CompiledModel::compile(&model, estimator.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let x = [0.3, 0.6, 0.2, 0.8];
        assert_eq!(
            compiled.predict(&x, &mut rng).unwrap(),
            model.predict(&x, &estimator, &mut rng).unwrap()
        );
        assert_eq!(compiled.predict(&x, &mut rng).unwrap(), 1);
    }

    #[test]
    fn cache_capacity_zero_disables_caching() {
        let model = trained_model(6);
        let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic())
            .unwrap()
            .with_cache_capacity(0);
        assert!(!compiled.cache_enabled());
        let mut rng = StdRng::seed_from_u64(0);
        let x = vec![0.3, 0.4, 0.5, 0.6];
        compiled.class_fidelities(&x, &mut rng).unwrap();
        compiled.class_fidelities(&x, &mut rng).unwrap();
        assert_eq!(compiled.cache_stats().hits, 0);
        assert_eq!(compiled.cache_stats().entries, 0);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let model = trained_model(7);
        let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(compiled.predict(&[0.1, 0.2], &mut rng).is_err());
        assert!(compiled.predict(&[0.1, 0.2, 0.3, 1.4], &mut rng).is_err());
        let batch = BatchExecutor::single_threaded(0);
        assert!(compiled
            .predict_many(&[vec![0.1; 4], vec![2.0; 4]], &batch, 0)
            .is_err());
        assert!(compiled
            .evaluate_accuracy(&[vec![0.1; 4]], &[0, 1], &batch, 0)
            .is_err());
        assert!(compiled.evaluate_accuracy(&[], &[], &batch, 0).is_err());
    }

    #[test]
    fn evaluate_accuracy_matches_model_evaluation() {
        let model = trained_model(8);
        let estimator = FidelityEstimator::analytic();
        let compiled = CompiledModel::compile(&model, estimator.clone()).unwrap();
        let xs = samples();
        let ys: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(0);
            xs.iter()
                .map(|x| model.predict(x, &estimator, &mut rng).unwrap())
                .collect()
        };
        let acc = compiled
            .evaluate_accuracy(&xs, &ys, &BatchExecutor::new(4, 0), 0)
            .unwrap();
        assert!((acc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clone_preserves_artifact_and_cache() {
        let model = trained_model(9);
        let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let x = vec![0.2, 0.3, 0.4, 0.5];
        let a = compiled.class_fidelities(&x, &mut rng).unwrap();
        let cloned = compiled.clone();
        assert_eq!(cloned.cache_stats().entries, 1);
        assert_eq!(cloned.class_fidelities(&x, &mut rng).unwrap(), a);
        assert_eq!(cloned.cache_stats().hits, 1);
    }
}
