//! The serving-side result cache.
//!
//! Production inference traffic is heavily repetitive: the same sample is
//! retried, the same canonical inputs recur, and preprocessing pipelines
//! quantise nearby raw inputs onto identical normalised features. The cache
//! keys on the **encoding fingerprint** — the exact bit pattern of the
//! sample's rotation-angle vector — so any two inputs the quantum circuits
//! cannot distinguish share one entry, and a hit returns the *identical*
//! fidelity vector a fresh evaluation would produce (deterministic
//! estimators only; stochastic estimators bypass the cache entirely).
//!
//! Eviction is least-recently-used over a fixed capacity. The
//! implementation is dependency-free: a `HashMap` from fingerprint to
//! `(fidelities, last-use tick)` with an `O(entries)` scan on eviction —
//! at serving-cache capacities (hundreds to a few thousand entries) the
//! scan is noise next to a single circuit evaluation.

use std::collections::HashMap;

/// Counters describing cache effectiveness, retrievable through
/// `CompiledModel::cache_stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to circuit evaluation.
    pub misses: u64,
    /// Resident entries displaced to make room for new ones.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries (0 = caching disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The encoding fingerprint of a sample: the exact bits of its rotation
/// angles. Equal fingerprints ⇒ indistinguishable inputs downstream.
pub(crate) fn fingerprint(angles: &[f64]) -> Vec<u64> {
    angles.iter().map(|a| a.to_bits()).collect()
}

/// A fixed-capacity LRU map from encoding fingerprint to per-class
/// fidelities.
#[derive(Clone, Debug)]
pub(crate) struct EncodingCache {
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    map: HashMap<Vec<u64>, (Vec<f64>, u64)>,
}

impl EncodingCache {
    pub(crate) fn new(capacity: usize) -> Self {
        EncodingCache {
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            map: HashMap::with_capacity(capacity.min(1024)),
        }
    }

    /// Looks a fingerprint up, refreshing its recency on a hit.
    pub(crate) fn get(&mut self, key: &[u64]) -> Option<Vec<f64>> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((fidelities, last_used)) => {
                *last_used = self.tick;
                self.hits += 1;
                Some(fidelities.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) an entry, evicting the least-recently-used
    /// one when at capacity.
    pub(crate) fn insert(&mut self, key: Vec<u64>, fidelities: Vec<f64>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.map.insert(key, (fidelities, self.tick));
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = EncodingCache::new(2);
        c.insert(vec![1], vec![0.1]);
        c.insert(vec![2], vec![0.2]);
        // Touch key 1 so key 2 becomes the LRU entry.
        assert_eq!(c.get(&[1]), Some(vec![0.1]));
        c.insert(vec![3], vec![0.3]);
        assert_eq!(c.get(&[2]), None, "LRU entry should have been evicted");
        assert_eq!(c.get(&[1]), Some(vec![0.1]));
        assert_eq!(c.get(&[3]), Some(vec![0.3]));
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = EncodingCache::new(0);
        c.insert(vec![1], vec![0.1]);
        assert_eq!(c.get(&[1]), None);
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.hits, 0);
        // Disabled lookups are not counted as misses either.
        assert_eq!(s.misses, 0);
        assert_eq!(s.capacity, 0);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = EncodingCache::new(4);
        assert!(c.get(&[9]).is_none());
        c.insert(vec![9], vec![1.0]);
        assert!(c.get(&[9]).is_some());
        assert!(c.get(&[9]).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn fingerprints_are_exact_bit_patterns() {
        assert_eq!(
            fingerprint(&[0.5, -0.0]),
            vec![0.5f64.to_bits(), (-0.0f64).to_bits()]
        );
        // -0.0 and 0.0 differ as fingerprints: they are different bit
        // patterns, and exactness is the contract.
        assert_ne!(fingerprint(&[0.0]), fingerprint(&[-0.0]));
    }

    #[test]
    fn reinserting_refreshes_instead_of_duplicating() {
        let mut c = EncodingCache::new(2);
        c.insert(vec![1], vec![0.1]);
        c.insert(vec![1], vec![0.9]);
        assert_eq!(c.stats().entries, 1);
        assert_eq!(c.get(&[1]), Some(vec![0.9]));
    }

    #[test]
    fn capacity_one_keeps_exactly_the_most_recent_insertion() {
        let mut c = EncodingCache::new(1);
        c.insert(vec![1], vec![0.1]);
        assert_eq!(c.get(&[1]), Some(vec![0.1]));
        // Inserting a second key evicts the first (the only possible LRU
        // victim at capacity 1)…
        c.insert(vec![2], vec![0.2]);
        assert_eq!(c.stats().entries, 1);
        assert_eq!(c.get(&[1]), None);
        assert_eq!(c.get(&[2]), Some(vec![0.2]));
        // …and the order keeps rotating: every new key displaces the last.
        c.insert(vec![3], vec![0.3]);
        assert_eq!(c.get(&[2]), None);
        assert_eq!(c.get(&[3]), Some(vec![0.3]));
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn reinserting_at_capacity_does_not_evict_another_entry() {
        // A duplicate-key insert is a refresh, not a new resident: with the
        // map full, re-inserting an existing key must leave every other
        // entry alone.
        let mut c = EncodingCache::new(2);
        c.insert(vec![1], vec![0.1]);
        c.insert(vec![2], vec![0.2]);
        c.insert(vec![1], vec![0.15]);
        assert_eq!(c.stats().entries, 2);
        assert_eq!(c.get(&[2]), Some(vec![0.2]), "untouched entry survives");
        assert_eq!(c.get(&[1]), Some(vec![0.15]), "refresh updated the value");
    }

    #[test]
    fn reinsertion_refreshes_recency_for_eviction_purposes() {
        let mut c = EncodingCache::new(2);
        c.insert(vec![1], vec![0.1]);
        c.insert(vec![2], vec![0.2]);
        // Re-inserting key 1 makes key 2 the LRU victim.
        c.insert(vec![1], vec![0.11]);
        c.insert(vec![3], vec![0.3]);
        assert_eq!(c.get(&[2]), None, "stale entry should have been evicted");
        assert_eq!(c.get(&[1]), Some(vec![0.11]));
        assert_eq!(c.get(&[3]), Some(vec![0.3]));
    }

    #[test]
    fn accounting_survives_eviction_churn() {
        // hits/misses are lookup counters, not residency counters: eviction
        // churn must not rewrite history, and `entries` tracks only the
        // current residents.
        let mut c = EncodingCache::new(2);
        for k in 0..6u64 {
            assert_eq!(c.get(&[k]), None); // 6 misses
            c.insert(vec![k], vec![k as f64]);
        }
        assert_eq!(c.stats().entries, 2);
        assert_eq!(c.stats().misses, 6);
        assert_eq!(c.stats().hits, 0);
        // 6 inserts into a capacity-2 cache displaced 4 residents.
        assert_eq!(c.stats().evictions, 4);
        // The two most recent keys are resident; older ones miss again.
        assert!(c.get(&[5]).is_some());
        assert!(c.get(&[4]).is_some());
        assert!(c.get(&[0]).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 7));
        assert!((s.hit_rate() - 2.0 / 9.0).abs() < 1e-12);
        assert_eq!(s.capacity, 2);
    }
}
