//! Model checks for the `ResponseSlot` one-shot rendezvous (mutex +
//! condvar; publish result, then notify).
//!
//! Run with `RUSTFLAGS="--cfg quclassi_model" cargo test -p quclassi-serve
//! --test model_slot`. Compiles to nothing otherwise.

#![cfg(quclassi_model)]

use interleave::thread;
use quclassi_serve::model_support::{check_protocol, mutations, SlotProbe};

/// A waiter racing the fulfilment: the waiter always receives the result,
/// exactly once, in every interleaving — and consuming it empties the
/// slot.
#[test]
fn waiter_receives_the_result_exactly_once() {
    check_protocol(&[], || {
        let slot = SlotProbe::new();
        let waiter = {
            let slot = slot.clone();
            thread::spawn(move || slot.wait())
        };
        slot.fulfill();
        assert!(waiter.join().unwrap(), "waiter got the published result");
        assert!(
            !slot.is_ready(),
            "the rendezvous is one-shot: the waiter consumed the result"
        );
    });
}

/// A fulfilment completing before the wait even starts is still received
/// (the wait loop checks the cell before sleeping).
#[test]
fn late_waiter_still_receives() {
    check_protocol(&[], || {
        let slot = SlotProbe::new();
        slot.fulfill();
        assert!(slot.is_ready());
        assert!(slot.wait());
    });
}

/// Mutation proof: notifying before the result is published is the
/// lost-wakeup bug — the waiter finds the cell empty under the lock, then
/// sleeps forever through the already-spent notification. The checker
/// reports the resulting deadlock.
#[test]
#[should_panic(expected = "interleave: model check failed")]
fn mutation_notify_before_publish_is_caught() {
    check_protocol(&[mutations::SLOT_NOTIFY_EARLY], || {
        let slot = SlotProbe::new();
        let waiter = {
            let slot = slot.clone();
            thread::spawn(move || slot.wait())
        };
        slot.fulfill();
        assert!(waiter.join().unwrap());
    });
}
