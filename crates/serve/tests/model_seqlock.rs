//! Model checks for the `TraceRing` seqlock (writer: invalidate → release
//! fence → field stores → release publish; reader: acquire ticket → field
//! reads → acquire fence → ticket re-check).
//!
//! Run with `RUSTFLAGS="--cfg quclassi_model" cargo test -p quclassi-serve
//! --test model_seqlock`. Compiles to nothing otherwise.
//!
//! The positive tests run with the span checksum *disabled*
//! (`SEQLOCK_SKIP_CHECKSUM`), proving the bare two-ticket protocol alone
//! is torn-read-free; the checksum is defence-in-depth, not load-bearing.
//! The mutation proofs also disable it for the same reason in reverse —
//! it would mask the single-site ordering bugs they introduce.

#![cfg(quclassi_model)]

use interleave::thread;
use quclassi_serve::model_support::{check_protocol, mutations};
use quclassi_serve::{TraceRing, TraceSpan};
use std::sync::Arc;

/// A span whose every field is a distinct multiple of its id, so a torn
/// mix of two spans' fields is detectable field-by-field.
fn span(id: u64) -> TraceSpan {
    TraceSpan {
        trace_id: id,
        encode_ns: id * 3,
        queue_wait_ns: id * 5,
        assemble_ns: id * 7,
        compute_ns: id * 11,
        write_ns: id * 13,
        total_ns: id * 17,
        batch_size: id * 19,
    }
}

fn assert_consistent(s: &TraceSpan) {
    assert_eq!(
        *s,
        span(s.trace_id),
        "torn span: fields from different records under one trace_id"
    );
}

/// One reader racing a lapping writer on a capacity-1 ring: every span the
/// reader gets back is internally consistent, in every interleaving and
/// for every store each relaxed load may observe.
fn lapping_writer_scenario() {
    let ring = Arc::new(TraceRing::new(1));
    ring.record(span(1));
    let writer = {
        let ring = Arc::clone(&ring);
        thread::spawn(move || ring.record(span(2)))
    };
    for s in ring.last(1) {
        assert_consistent(&s);
    }
    writer.join().unwrap();
    // Quiescent read: ticket 2 is published and must read back exactly.
    assert_eq!(ring.last(1), vec![span(2)]);
}

#[test]
fn seqlock_has_no_torn_reads_with_checksum_enabled() {
    check_protocol(&[], lapping_writer_scenario);
}

#[test]
fn seqlock_core_is_sound_without_the_checksum() {
    check_protocol(&[mutations::SEQLOCK_SKIP_CHECKSUM], lapping_writer_scenario);
}

/// Mutation proof: weakening the publish store to `Relaxed` lets a reader
/// observe the published ticket without the field stores that preceded it.
#[test]
#[should_panic(expected = "interleave: model check failed")]
fn mutation_relaxed_publish_is_caught() {
    check_protocol(
        &[
            mutations::SEQLOCK_SKIP_CHECKSUM,
            mutations::SEQLOCK_PUBLISH_RELAXED,
        ],
        lapping_writer_scenario,
    );
}

/// Mutation proof: dropping the writer's release fence breaks the
/// fence-to-fence pairing with the reader's acquire fence — a reader can
/// observe a lapping writer's field store while its ticket re-check still
/// sees the old ticket, accepting a torn span.
#[test]
#[should_panic(expected = "interleave: model check failed")]
fn mutation_skipped_release_fence_is_caught() {
    check_protocol(
        &[
            mutations::SEQLOCK_SKIP_CHECKSUM,
            mutations::SEQLOCK_SKIP_RELEASE_FENCE,
        ],
        lapping_writer_scenario,
    );
}
