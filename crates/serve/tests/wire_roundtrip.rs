//! End-to-end wire-protocol tests: a real `TcpListener` on loopback, a
//! real runtime behind it, and byte-level assertions that remote serving
//! is indistinguishable from in-process serving.

use quclassi::model::{QuClassiConfig, QuClassiModel};
use quclassi::swap_test::FidelityEstimator;
use quclassi_infer::CompiledModel;
use quclassi_serve::json::Json;
use quclassi_serve::{ServeConfig, ServeRuntime, WireClient, WireServer};
use quclassi_sim::batch::BatchExecutor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn compiled(seed: u64) -> CompiledModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng).unwrap();
    CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap()
}

fn started_runtime() -> ServeRuntime {
    let runtime =
        ServeRuntime::start(ServeConfig::default(), BatchExecutor::single_threaded(0)).unwrap();
    runtime.deploy("iris", compiled(7)).unwrap();
    runtime
}

#[test]
fn wire_predictions_are_bit_identical_to_in_process_serving() {
    let runtime = started_runtime();
    let server = WireServer::start("127.0.0.1:0", runtime.client()).unwrap();
    let mut wire = WireClient::connect(server.local_addr()).unwrap();
    let local = runtime.client();

    let xs: Vec<Vec<f64>> = (0..5)
        .map(|i| vec![0.12 * i as f64, 0.8, 0.33, 1.0 - 0.11 * i as f64])
        .collect();
    for x in &xs {
        let remote = wire.predict("iris", x).unwrap();
        let direct = local.predict("iris", x).unwrap();
        assert_eq!(remote.label, direct.prediction.label);
        assert_eq!(remote.version, direct.version);
        // Shortest-round-trip float formatting ⇒ the *bits* survive TCP.
        let remote_bits: Vec<u64> = remote.probabilities.iter().map(|p| p.to_bits()).collect();
        let direct_bits: Vec<u64> = direct
            .prediction
            .probabilities
            .iter()
            .map(|p| p.to_bits())
            .collect();
        assert_eq!(remote_bits, direct_bits);
        let remote_fid: Vec<u64> = remote.fidelities.iter().map(|p| p.to_bits()).collect();
        let direct_fid: Vec<u64> = direct
            .prediction
            .fidelities
            .iter()
            .map(|p| p.to_bits())
            .collect();
        assert_eq!(remote_fid, direct_fid);
    }

    server.shutdown();
    runtime.shutdown();
}

#[test]
fn wire_errors_carry_stable_kinds() {
    let runtime = started_runtime();
    let server = WireServer::start("127.0.0.1:0", runtime.client()).unwrap();
    let mut wire = WireClient::connect(server.local_addr()).unwrap();

    // Unknown model.
    let err = wire.predict("ghost", &[0.1; 4]).unwrap_err();
    assert_eq!(err.kind(), "unknown_model");

    // Bad input dimension: a client error, reported as such.
    let response = wire
        .call(&Json::obj(vec![
            ("op", Json::str("predict")),
            ("model", Json::str("iris")),
            ("features", Json::nums(&[0.1, 0.2])),
        ]))
        .unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response.get("kind").and_then(Json::as_str),
        Some("bad_request")
    );

    // Protocol violations (bad ops, malformed shapes) keep the connection
    // alive and report kind "protocol".
    for bad in [
        Json::obj(vec![("op", Json::str("teleport"))]),
        Json::obj(vec![("not_op", Json::Bool(true))]),
        Json::obj(vec![
            ("op", Json::str("predict")),
            ("model", Json::str("iris")),
        ]),
        Json::obj(vec![
            ("op", Json::str("predict")),
            ("model", Json::str("iris")),
            ("features", Json::Arr(vec![Json::str("NaN")])),
        ]),
    ] {
        let response = wire.call(&bad).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            response.get("kind").and_then(Json::as_str),
            Some("protocol"),
            "for {bad}"
        );
    }
    // …and the connection still works afterwards.
    wire.ping().unwrap();

    server.shutdown();
    runtime.shutdown();
}

#[test]
fn wire_exposes_models_and_metrics() {
    let runtime = started_runtime();
    runtime.deploy("mnist", compiled(9)).unwrap();
    let server = WireServer::start("127.0.0.1:0", runtime.client()).unwrap();
    let mut wire = WireClient::connect(server.local_addr()).unwrap();

    wire.ping().unwrap();
    let response = wire
        .call(&Json::obj(vec![("op", Json::str("models"))]))
        .unwrap();
    let models = response.get("models").unwrap().as_arr().unwrap();
    let names: Vec<&str> = models
        .iter()
        .map(|m| m.get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(names, vec!["iris", "mnist"]);

    for i in 0..4 {
        wire.predict("iris", &[0.2, 0.4, 0.6, 0.1 * i as f64])
            .unwrap();
    }
    let metrics = wire.metrics().unwrap();
    assert_eq!(metrics.get("completed").and_then(Json::as_u64), Some(4));
    assert!(
        metrics
            .get("throughput_rps")
            .and_then(Json::as_f64)
            .unwrap()
            > 0.0
    );
    assert!(metrics.get("p50_us").and_then(Json::as_f64).unwrap() > 0.0);
    // The online-learning counters ride along on the same op: two deploys
    // count as promotions, nothing has been rejected or rolled back yet.
    assert_eq!(metrics.get("promotions").and_then(Json::as_u64), Some(2));
    for quiet in [
        "rollbacks",
        "candidates_rejected",
        "train_cycles",
        "learner_panics",
        "shadow_batches",
        "shadow_requests",
    ] {
        assert_eq!(
            metrics.get(quiet).and_then(Json::as_u64),
            Some(0),
            "{quiet} should start at zero"
        );
    }
    let per_model = metrics.get("models").unwrap().as_arr().unwrap();
    assert_eq!(per_model.len(), 2);
    assert_eq!(
        per_model[0].get("completed").and_then(Json::as_u64),
        Some(4),
        "iris served all four"
    );

    server.shutdown();
    runtime.shutdown();
}

#[test]
fn concurrent_wire_connections_are_served_independently() {
    let runtime = started_runtime();
    let server = WireServer::start("127.0.0.1:0", runtime.client()).unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut wire = WireClient::connect(addr).unwrap();
                let mut labels = Vec::new();
                for i in 0..10 {
                    let x = vec![0.05 * t as f64, 0.5, 0.09 * i as f64, 0.7];
                    labels.push(wire.predict("iris", &x).unwrap().label);
                }
                labels
            })
        })
        .collect();
    for handle in handles {
        let labels = handle.join().unwrap();
        assert_eq!(labels.len(), 10);
    }
    let metrics = runtime.metrics();
    assert_eq!(metrics.completed, 40);

    server.shutdown();
    runtime.shutdown();
}
