//! Request-multiplexing tests for the event-loop wire server: many
//! in-flight requests per connection, responses matched by `"id"` rather
//! than arrival order, and frame assembly under hostile byte chunking.

use quclassi::model::{QuClassiConfig, QuClassiModel};
use quclassi::swap_test::FidelityEstimator;
use quclassi_infer::CompiledModel;
use quclassi_serve::json::Json;
use quclassi_serve::wire::write_frame;
use quclassi_serve::{ServeConfig, ServeRuntime, WireClient, WireServer};
use quclassi_sim::batch::BatchExecutor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn compiled(seed: u64) -> CompiledModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng).unwrap();
    CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap()
}

fn started_runtime(config: ServeConfig) -> ServeRuntime {
    let runtime = ServeRuntime::start(config, BatchExecutor::single_threaded(0)).unwrap();
    runtime.deploy("iris", compiled(7)).unwrap();
    runtime
}

#[test]
fn pipelined_predictions_resolve_by_id_and_match_in_process_serving() {
    let runtime = started_runtime(ServeConfig::default());
    let server = WireServer::start("127.0.0.1:0", runtime.client()).unwrap();
    let mut wire = WireClient::connect(server.local_addr()).unwrap();
    let local = runtime.client();

    // Fire 16 predictions down one connection without reading anything.
    let xs: Vec<Vec<f64>> = (0..16)
        .map(|i| vec![0.06 * i as f64, 0.9 - 0.04 * i as f64, 0.33, 0.5])
        .collect();
    let mut expected = HashMap::new();
    for x in &xs {
        let id = wire.send_predict("iris", x).unwrap();
        expected.insert(id, x.clone());
    }

    // Collect 16 responses in whatever order they arrive; the id — not
    // the order — pairs each with its request.
    for _ in 0..xs.len() {
        let (id, response) = wire.recv_response().unwrap();
        let id = id.expect("predict responses echo their request id");
        let x = expected.remove(&id).expect("each id resolves exactly once");
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        let direct = local.predict("iris", &x).unwrap();
        assert_eq!(
            response.get("label").and_then(Json::as_u64),
            Some(direct.prediction.label as u64)
        );
        let remote_bits: Vec<u64> = response
            .get("probabilities")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|p| p.as_f64().unwrap().to_bits())
            .collect();
        let direct_bits: Vec<u64> = direct
            .prediction
            .probabilities
            .iter()
            .map(|p| p.to_bits())
            .collect();
        assert_eq!(
            remote_bits, direct_bits,
            "multiplexed responses stay bit-identical"
        );
    }
    assert!(expected.is_empty());

    server.shutdown();
    runtime.shutdown();
}

#[test]
fn responses_arrive_out_of_request_order() {
    // A wide batch window pins the reorder: predictions cannot complete
    // before the scheduler's 200 ms flush deadline, while control ops are
    // answered by the shard the moment their frame is read. Pipelining
    // [predict, ping, predict, models] therefore *must* deliver the
    // control responses first — out of request order, matched by id.
    let runtime = started_runtime(ServeConfig {
        max_batch: 64,
        batch_window: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let server = WireServer::start("127.0.0.1:0", runtime.client()).unwrap();
    let mut wire = WireClient::connect(server.local_addr()).unwrap();

    let x = [0.2, 0.4, 0.6, 0.8];
    let predict_a = wire.send_predict("iris", &x).unwrap();
    let ping_id = wire
        .send_request(&Json::obj(vec![("op", Json::str("ping"))]))
        .unwrap();
    let predict_b = wire.send_predict("iris", &x).unwrap();
    let models_id = wire
        .send_request(&Json::obj(vec![("op", Json::str("models"))]))
        .unwrap();

    let mut arrival = Vec::new();
    for _ in 0..4 {
        let (id, response) = wire.recv_response().unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        arrival.push(id.expect("every request carried an id"));
    }
    let pos = |id: u64| arrival.iter().position(|&a| a == id).unwrap();
    assert!(
        pos(ping_id) < pos(predict_a) && pos(models_id) < pos(predict_a),
        "control responses must overtake the batched prediction: {arrival:?}"
    );
    assert!(
        pos(predict_b) > pos(ping_id),
        "the second predict cannot beat a control op: {arrival:?}"
    );

    server.shutdown();
    runtime.shutdown();
}

#[test]
fn errors_are_multiplexed_by_id_too() {
    let runtime = started_runtime(ServeConfig::default());
    let server = WireServer::start("127.0.0.1:0", runtime.client()).unwrap();
    let mut wire = WireClient::connect(server.local_addr()).unwrap();

    // One good predict, one unknown model, one bad dimension — pipelined.
    let good = wire.send_predict("iris", &[0.1, 0.2, 0.3, 0.4]).unwrap();
    let ghost = wire.send_predict("ghost", &[0.1, 0.2, 0.3, 0.4]).unwrap();
    let short = wire.send_predict("iris", &[0.1]).unwrap();

    let mut outcomes = HashMap::new();
    for _ in 0..3 {
        let (id, response) = wire.recv_response().unwrap();
        outcomes.insert(id.unwrap(), response);
    }
    assert_eq!(
        outcomes[&good].get("ok").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        outcomes[&ghost].get("kind").and_then(Json::as_str),
        Some("unknown_model")
    );
    assert_eq!(
        outcomes[&short].get("kind").and_then(Json::as_str),
        Some("bad_request")
    );
    // The connection survives all of it.
    wire.ping().unwrap();

    server.shutdown();
    runtime.shutdown();
}

#[test]
fn frames_split_at_hostile_byte_boundaries_still_assemble() {
    let runtime = started_runtime(ServeConfig::default());
    let server = WireServer::start("127.0.0.1:0", runtime.client()).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // A ping delivered one byte per segment: the worst chunking TCP can
    // produce, including splits inside the 4-byte length header.
    let mut framed = Vec::new();
    write_frame(&mut framed, br#"{"op":"ping","id":1}"#).unwrap();
    for byte in &framed {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut reader = stream.try_clone().unwrap();
    let frame = quclassi_serve::wire::read_frame(&mut reader)
        .unwrap()
        .unwrap();
    let response = Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(response.get("id").and_then(Json::as_u64), Some(1));

    // Two requests fused into one segment — the opposite failure mode —
    // plus a third split across the fused tail.
    let mut fused = Vec::new();
    write_frame(&mut fused, br#"{"op":"ping","id":2}"#).unwrap();
    write_frame(&mut fused, br#"{"op":"ping","id":3}"#).unwrap();
    let mut third = Vec::new();
    write_frame(&mut third, br#"{"op":"ping","id":4}"#).unwrap();
    fused.extend_from_slice(&third[..3]);
    stream.write_all(&fused).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(20));
    stream.write_all(&third[3..]).unwrap();
    stream.flush().unwrap();
    for expected_id in [2u64, 3, 4] {
        let frame = quclassi_serve::wire::read_frame(&mut reader)
            .unwrap()
            .unwrap();
        let response = Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
        assert_eq!(
            response.get("id").and_then(Json::as_u64),
            Some(expected_id),
            "fused/split frames must resolve in order"
        );
    }

    server.shutdown();
    runtime.shutdown();
}

#[test]
fn trickled_oversize_claim_is_rejected_and_the_server_survives() {
    // End-to-end shape of the trickle attack: claim a frame over the
    // limit, never send it. The server must answer with a protocol error
    // (from the header alone) and close — without buffering the claim.
    let runtime = started_runtime(ServeConfig::default());
    let server = WireServer::start("127.0.0.1:0", runtime.client()).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let claim = ((16 * 1024 * 1024 + 1) as u32).to_be_bytes();
    stream.write_all(&claim).unwrap();
    let mut reader = stream.try_clone().unwrap();
    let frame = quclassi_serve::wire::read_frame(&mut reader)
        .expect("server answers the oversized claim")
        .expect("error frame, not silent EOF");
    let response = Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response.get("kind").and_then(Json::as_str),
        Some("protocol")
    );
    // After the error frame the connection closes (framing is poisoned).
    assert!(quclassi_serve::wire::read_frame(&mut reader)
        .map(|f| f.is_none())
        .unwrap_or(true));

    // The rest of the server is untouched.
    let mut wire = WireClient::connect(server.local_addr()).unwrap();
    wire.ping().unwrap();

    server.shutdown();
    runtime.shutdown();
}
