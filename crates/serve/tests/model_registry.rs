//! Model checks for the `SwapMap` hot-swap publication protocol (the core
//! the `ModelRegistry` deploys through): version assignment and map
//! insert in one write-locked critical section.
//!
//! Run with `RUSTFLAGS="--cfg quclassi_model" cargo test -p quclassi-serve
//! --test model_registry`. Compiles to nothing otherwise.

#![cfg(quclassi_model)]

use interleave::thread;
use quclassi_serve::model_support::{check_protocol, mutations, SwapProbe};
use std::sync::Arc;

/// Two concurrent publishes of the same name linearise: versions are
/// unique and monotonic, the surviving entry is the one that got the
/// higher version, and exactly one entry drains once its `Arc` drops.
fn concurrent_publish_scenario() {
    let map = Arc::new(SwapProbe::new());
    let other = {
        let map = Arc::clone(&map);
        thread::spawn(move || map.publish("m", 10))
    };
    let mine = map.publish("m", 20);
    let theirs = other.join().unwrap();
    let mut versions = vec![mine, theirs];
    versions.sort_unstable();
    assert_eq!(
        versions,
        vec![1, 2],
        "concurrent publishes must assign unique, monotonic versions"
    );
    let (version, payload) = map.get("m").expect("published");
    assert_eq!(version, 2, "the later version wins the map slot");
    assert_eq!(
        payload,
        if mine == 2 { 20 } else { 10 },
        "the surviving payload matches the version-2 publisher"
    );
    assert_eq!(map.draining(), 0, "the displaced Arc already dropped");
}

#[test]
fn concurrent_publishes_linearise_with_unique_versions() {
    check_protocol(&[], concurrent_publish_scenario);
}

/// Mutation proof: surrendering the write lock between version assignment
/// and insert lets both publishers read the same current version and
/// forge duplicate version numbers.
#[test]
#[should_panic(expected = "interleave: model check failed")]
fn mutation_split_publish_is_caught() {
    check_protocol(
        &[mutations::SWAP_SPLIT_PUBLISH],
        concurrent_publish_scenario,
    );
}
