//! Connection-scale soak: thousands of simultaneously open, mostly idle
//! connections against the event-loop server. The thread-per-connection
//! baseline cannot run this shape (10k threads); the event loop holds the
//! same sockets as epoll registrations and keeps serving live traffic
//! around them.
//!
//! The connection count is sized from the process's actual
//! `RLIMIT_NOFILE` budget (both socket ends live in this process), so the
//! test scales itself down on constrained CI instead of failing on
//! `EMFILE`.

use quclassi::model::{QuClassiConfig, QuClassiModel};
use quclassi::swap_test::FidelityEstimator;
use quclassi_infer::CompiledModel;
use quclassi_serve::json::Json;
use quclassi_serve::wire::{read_frame, write_frame};
use quclassi_serve::{ServeConfig, ServeRuntime, WireClient, WireConfig, WireServer};
use quclassi_sim::batch::BatchExecutor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::TcpStream;
use std::time::Duration;

#[test]
fn thousands_of_idle_connections_soak() {
    // Every connection costs two fds here (client end + server end), plus
    // headroom for the harness, runtime, epoll and eventfd descriptors.
    let budget = poll::raise_nofile_limit().unwrap_or(1024);
    let target = (budget.saturating_sub(256) / 2).min(10_000) as usize;
    if target < 100 {
        eprintln!("skipping soak: RLIMIT_NOFILE budget of {budget} is too small");
        return;
    }

    let mut rng = StdRng::seed_from_u64(7);
    let model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
    let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
    let runtime =
        ServeRuntime::start(ServeConfig::default(), BatchExecutor::single_threaded(0)).unwrap();
    runtime.deploy("iris", compiled).unwrap();

    let server = WireServer::start_with(
        "127.0.0.1:0",
        runtime.client(),
        WireConfig {
            max_connections: target + 16,
            // Idle is the point: no read deadline, or the herd would be
            // reaped mid-test.
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(30)),
            shards: 2,
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Open the herd. Each socket is accepted, capped, dealt to a shard,
    // and registered — then sits idle.
    let mut herd: Vec<TcpStream> = Vec::with_capacity(target);
    for i in 0..target {
        match TcpStream::connect(addr) {
            Ok(stream) => herd.push(stream),
            Err(e) => panic!("connect {i}/{target} failed: {e}"),
        }
    }

    // Live traffic still flows around the idle herd.
    let mut wire = WireClient::connect(addr).unwrap();
    wire.ping().unwrap();
    let prediction = wire.predict("iris", &[0.2, 0.4, 0.6, 0.8]).unwrap();
    assert_eq!(prediction.model, "iris");

    // A sample of the herd wakes up and gets served — the registrations
    // are live connections, not just accepted-and-forgotten sockets.
    let stride = (target / 64).max(1);
    let mut sampled = 0;
    for i in (0..herd.len()).step_by(stride) {
        let stream = &mut herd[i];
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write_frame(stream, br#"{"op":"ping","id":1}"#).unwrap();
        let frame = read_frame(stream).unwrap().expect("idle conn still served");
        let response = Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        sampled += 1;
    }
    assert!(sampled >= 32, "sampled only {sampled} of the herd");

    // Hang-ups release their slots: close half the herd, then the cap
    // still admits a newcomer (the count is decremented on close).
    herd.truncate(target / 2);
    let mut late = WireClient::connect(addr).unwrap();
    late.ping().unwrap();

    drop(herd);
    server.shutdown();
    runtime.shutdown();
}
