//! End-to-end observability tests: the `trace` op must reconstruct a
//! complete stage timeline for pipelined (out-of-order) requests on both
//! wire servers, and the Prometheus-style `metrics_text` exposition must
//! agree with the JSON `metrics` op it rides alongside.

use quclassi::model::{QuClassiConfig, QuClassiModel};
use quclassi::swap_test::FidelityEstimator;
use quclassi_infer::CompiledModel;
use quclassi_serve::json::Json;
use quclassi_serve::{ServeConfig, ServeRuntime, ThreadedWireServer, WireClient, WireServer};
use quclassi_sim::batch::BatchExecutor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn compiled(seed: u64) -> CompiledModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng).unwrap();
    CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap()
}

fn started_runtime() -> ServeRuntime {
    let runtime =
        ServeRuntime::start(ServeConfig::default(), BatchExecutor::single_threaded(0)).unwrap();
    runtime.deploy("iris", compiled(7)).unwrap();
    runtime
}

/// A span decoded from the `trace` op's JSON.
#[derive(Debug)]
struct Span {
    encode_ns: u64,
    queue_wait_ns: u64,
    assemble_ns: u64,
    compute_ns: u64,
    write_ns: u64,
    total_ns: u64,
    batch_size: u64,
}

impl Span {
    fn from_json(span: &Json) -> (u64, Span) {
        let field = |name: &str| {
            span.get(name)
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("span field {name} missing in {span}"))
        };
        (
            field("trace_id"),
            Span {
                encode_ns: field("encode_ns"),
                queue_wait_ns: field("queue_wait_ns"),
                assemble_ns: field("assemble_ns"),
                compute_ns: field("compute_ns"),
                write_ns: field("write_ns"),
                total_ns: field("total_ns"),
                batch_size: field("batch_size"),
            },
        )
    }

    fn stage_sum_ns(&self) -> u64 {
        self.encode_ns + self.queue_wait_ns + self.assemble_ns + self.compute_ns + self.write_ns
    }
}

/// The stage partition must tile the end-to-end latency: every stage fits
/// inside the total, and the unattributed remainder (notifier hand-off,
/// admission stamping) is bounded — the timeline genuinely reconstructs
/// where the request's time went.
fn assert_timeline_reconstructs(span: &Span, requests: usize) {
    assert!(span.total_ns > 0, "a served request took nonzero time");
    assert!(
        span.stage_sum_ns() <= span.total_ns,
        "stages are disjoint sub-intervals of the lifecycle: {span:?}"
    );
    let unattributed = span.total_ns - span.stage_sum_ns();
    assert!(
        unattributed < 250_000_000,
        "stage sum accounts for the end-to-end latency up to hand-off \
         slack: {unattributed} ns unattributed in {span:?}"
    );
    assert!(
        span.write_ns > 0,
        "wire-managed spans stamp the write stage: {span:?}"
    );
    assert!(
        span.batch_size >= 1 && span.batch_size <= requests as u64,
        "batch size is the request's actual group size: {span:?}"
    );
}

fn pipeline_and_trace(wire: &mut WireClient, requests: usize) {
    // Fire every prediction before reading anything: responses may
    // complete out of request order (the id pairs them back up), and the
    // trace ring must still hold one complete lifecycle per request.
    let xs: Vec<Vec<f64>> = (0..requests)
        .map(|i| vec![0.05 * i as f64, 0.9 - 0.03 * i as f64, 0.4, 0.6])
        .collect();
    let mut ids = Vec::new();
    for x in &xs {
        ids.push(wire.send_predict("iris", x).unwrap());
    }
    for _ in 0..requests {
        let (id, response) = wire.recv_response().unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        assert!(ids.contains(&id.expect("predict responses echo their id")));
    }

    // All responses are on the wire, so (same-connection ordering) every
    // span is recorded before the trace op is interpreted.
    let trace = wire.trace(requests).unwrap();
    assert!(trace.get("capacity").and_then(Json::as_u64).unwrap() >= requests as u64);
    assert!(trace.get("recorded").and_then(Json::as_u64).unwrap() >= requests as u64);
    let spans: HashMap<u64, Span> = trace
        .get("spans")
        .and_then(Json::as_arr)
        .expect("trace response carries a span array")
        .iter()
        .map(Span::from_json)
        .collect();
    for id in &ids {
        let span = spans
            .get(id)
            .unwrap_or_else(|| panic!("request {id} left a span in the ring"));
        assert_timeline_reconstructs(span, requests);
    }
}

#[test]
fn trace_op_reconstructs_stage_timelines_on_the_event_loop_server() {
    let runtime = started_runtime();
    let server = WireServer::start("127.0.0.1:0", runtime.client()).unwrap();
    let mut wire = WireClient::connect(server.local_addr()).unwrap();
    pipeline_and_trace(&mut wire, 16);
    server.shutdown();
    runtime.shutdown();
}

#[test]
fn trace_op_reconstructs_stage_timelines_on_the_threaded_server() {
    let runtime = started_runtime();
    let server = ThreadedWireServer::start("127.0.0.1:0", runtime.client()).unwrap();
    let mut wire = WireClient::connect(server.local_addr()).unwrap();
    pipeline_and_trace(&mut wire, 16);
    server.shutdown();
    runtime.shutdown();
}

#[test]
fn in_process_requests_leave_spans_without_a_write_stage() {
    let runtime = started_runtime();
    let client = runtime.client();
    for i in 0..8 {
        client
            .predict("iris", &[0.1 * i as f64, 0.5, 0.3, 0.7])
            .unwrap();
    }
    assert_eq!(client.traces_recorded(), 8);
    let spans = client.traces(8);
    assert_eq!(spans.len(), 8);
    for span in &spans {
        assert_eq!(span.write_ns, 0, "no wire write for in-process requests");
        assert!(span.total_ns > 0);
        assert!(span.stage_sum_ns() <= span.total_ns);
        assert!(span.batch_size >= 1);
    }
    runtime.shutdown();
}

#[test]
fn a_zero_capacity_ring_disables_tracing_without_disabling_serving() {
    let runtime = ServeRuntime::start(
        ServeConfig {
            trace_capacity: 0,
            ..ServeConfig::default()
        },
        BatchExecutor::single_threaded(0),
    )
    .unwrap();
    runtime.deploy("iris", compiled(7)).unwrap();
    let client = runtime.client();
    client.predict("iris", &[0.1, 0.2, 0.3, 0.4]).unwrap();
    assert_eq!(client.trace_capacity(), 0);
    assert_eq!(client.traces_recorded(), 0);
    assert!(client.traces(4).is_empty());
    runtime.shutdown();
}

/// Parses a text exposition into `name{labels} -> value`, skipping
/// comment lines.
fn parse_exposition(text: &str) -> HashMap<String, f64> {
    let mut samples = HashMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("malformed exposition line: {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable sample value in line: {line:?}"));
        samples.insert(name.to_string(), value);
    }
    samples
}

#[test]
fn text_exposition_round_trips_against_the_json_metrics_op() {
    let runtime = started_runtime();
    let server = WireServer::start("127.0.0.1:0", runtime.client()).unwrap();
    let mut wire = WireClient::connect(server.local_addr()).unwrap();

    // Drive some traffic (including a failure) so the counters are
    // nonzero, then drain it completely: with nothing in flight the two
    // snapshots below observe identical values.
    for i in 0..12 {
        let x = [0.08 * i as f64, 0.4, 0.5, 0.2];
        assert!(!wire.predict("iris", &x).unwrap().probabilities.is_empty());
    }
    assert!(wire.predict("no-such-model", &[0.0; 4]).is_err());

    let json = wire.metrics().unwrap();
    let samples = parse_exposition(&wire.metrics_text().unwrap());

    let json_num = |name: &str| {
        json.get(name)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("metrics JSON lacks {name}"))
    };
    let sample = |name: &str| {
        *samples
            .get(name)
            .unwrap_or_else(|| panic!("exposition lacks {name}"))
    };

    // Every serve/online/wire counter the JSON op reports must appear in
    // the exposition with the same value.
    let counter_pairs = [
        ("admitted", "quclassi_serve_admitted_total"),
        ("rejected", "quclassi_serve_rejected_total"),
        ("completed", "quclassi_serve_completed_total"),
        ("failed", "quclassi_serve_failed_total"),
        ("batches", "quclassi_serve_batches_total"),
        ("flush_on_size", "quclassi_serve_flush_size_total"),
        ("flush_on_deadline", "quclassi_serve_flush_deadline_total"),
        ("flush_on_close", "quclassi_serve_flush_close_total"),
        ("wire_refusals", "quclassi_wire_refusals_total"),
        (
            "refusal_write_failures",
            "quclassi_wire_refusal_write_failures_total",
        ),
        ("promotions", "quclassi_online_promotions_total"),
        ("rollbacks", "quclassi_online_rollbacks_total"),
        (
            "candidates_rejected",
            "quclassi_online_candidates_rejected_total",
        ),
        ("train_cycles", "quclassi_online_train_cycles_total"),
        ("learner_panics", "quclassi_online_learner_panics_total"),
        ("shadow_batches", "quclassi_online_shadow_batches_total"),
        ("shadow_requests", "quclassi_online_shadow_requests_total"),
        ("queue_depth", "quclassi_serve_queue_depth"),
        ("in_flight", "quclassi_serve_in_flight"),
    ];
    for (json_name, text_name) in counter_pairs {
        assert_eq!(
            json_num(json_name),
            sample(text_name),
            "{json_name} and {text_name} must agree"
        );
    }
    assert!(json_num("admitted") >= 12.0);
    assert!(
        json_num("rejected") >= 1.0,
        "unknown model counted rejected"
    );
    assert_eq!(json_num("in_flight"), 0.0);

    // Histogram families expose a count that matches the JSON stage
    // breakdown, plus +Inf buckets that equal it.
    let stages = json.get("stages").expect("metrics JSON has a stage map");
    for stage in ["encode", "queue_wait", "assemble", "compute", "write"] {
        let json_count = stages
            .get(stage)
            .and_then(|s| s.get("count"))
            .and_then(Json::as_f64)
            .unwrap();
        let family = format!("quclassi_serve_stage_{stage}_ns");
        assert_eq!(json_count, sample(&format!("{family}_count")));
        assert_eq!(
            json_count,
            sample(&format!("{family}_bucket{{le=\"+Inf\"}}"))
        );
    }
    assert_eq!(
        json_num("completed"),
        sample("quclassi_serve_latency_ns_count")
    );

    // Per-model and cache series carry the model name as a label.
    let model = json
        .get("models")
        .and_then(Json::as_arr)
        .and_then(|models| models.first())
        .expect("one deployed model");
    assert_eq!(
        model.get("completed").and_then(Json::as_f64).unwrap(),
        sample("quclassi_model_completed_total{model=\"iris\"}")
    );
    assert_eq!(
        model.get("cache_entries").and_then(Json::as_f64).unwrap(),
        sample("quclassi_cache_entries{model=\"iris\"}")
    );
    assert_eq!(
        model.get("cache_evictions").and_then(Json::as_f64).unwrap(),
        sample("quclassi_cache_evictions_total{model=\"iris\"}")
    );

    // Whether kernel profiling is live is itself exposed.
    assert!(samples.contains_key("quclassi_sim_profile_enabled"));

    server.shutdown();
    runtime.shutdown();
}
