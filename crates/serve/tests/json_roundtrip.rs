//! Property net over the wire JSON number path: for any finite `f64` —
//! subnormals, signed zeros, and the extremes of the exponent range
//! included — `parse(serialize(x))` must return the identical bits, and
//! the serialized form must be a fixed point after one round trip.
//!
//! This is the determinism contract the serving layer leans on: fidelities
//! and probabilities cross the wire without widening, so remote serving
//! stays bit-identical to in-process serving.

use proptest::prelude::*;
use quclassi_serve::json::Json;

fn roundtrip(x: f64) -> f64 {
    let text = Json::Num(x).to_string();
    Json::parse(&text)
        .unwrap_or_else(|e| panic!("serialized form {text:?} of {x:e} must reparse: {e}"))
        .as_f64()
        .expect("a number must reparse as a number")
}

proptest! {
    /// Doubles drawn uniformly over the whole 64-bit pattern space (every
    /// exponent, every mantissa, both signs — subnormals included)
    /// survive parse→serialize→parse bit-exactly. Non-finite patterns are
    /// skipped: they can never enter `Json::Num` from the parser.
    #[test]
    fn finite_doubles_roundtrip_bit_exactly(bits in 0u64..=u64::MAX) {
        let x = f64::from_bits(bits);
        if !x.is_finite() {
            return Ok(());
        }
        prop_assert_eq!(roundtrip(x).to_bits(), x.to_bits());
    }

    /// Structured stress over the exponent range: `m × 10^e` with the
    /// exponent swept from deep in the subnormal range to the overflow
    /// edge.
    #[test]
    fn scaled_doubles_roundtrip_bit_exactly(m in -1.0f64..1.0, e in -320i32..=308) {
        let x = m * 10f64.powi(e);
        prop_assert!(x.is_finite());
        prop_assert_eq!(roundtrip(x).to_bits(), x.to_bits());
    }

    /// One serialize→parse→serialize cycle is a fixed point on the wire
    /// bytes (the serialized form is canonical).
    #[test]
    fn serialized_form_is_a_fixed_point(bits in 0u64..=u64::MAX) {
        let x = f64::from_bits(bits);
        if !x.is_finite() {
            return Ok(());
        }
        let once = Json::Num(x).to_string();
        let twice = Json::Num(roundtrip(x)).to_string();
        prop_assert_eq!(once, twice);
    }
}

#[test]
// The 17-digit literal below is the exact published slow-parse value;
// trimming its "excessive" precision would change which f64 it names.
#[allow(clippy::excessive_precision)]
fn boundary_values_roundtrip_bit_exactly() {
    let cases = [
        0.0,
        -0.0,
        f64::MIN_POSITIVE, // smallest normal
        -f64::MIN_POSITIVE,
        f64::from_bits(1),                     // smallest positive subnormal
        f64::from_bits(0x000f_ffff_ffff_ffff), // largest subnormal
        f64::MAX,
        f64::MIN,
        1e-308,
        2.2250738585072011e-308, // the infamous slow-parse literal
        1.0 / 3.0,
        std::f64::consts::PI,
    ];
    for &x in &cases {
        let text = Json::Num(x).to_string();
        let back = Json::parse(&text).unwrap().as_f64().unwrap();
        assert_eq!(back.to_bits(), x.to_bits(), "{x:e} via {text:?}");
    }
    // -0.0 keeps its sign across the wire.
    let back = roundtrip(-0.0);
    assert!(back == 0.0 && back.is_sign_negative());
}
