//! Adversarial/slow-client tests for the TCP boundary: a real listener,
//! real sockets, and hostile peers. These are the regression tests for
//! the serve-layer robustness bugs:
//!
//! 1. a client that connects and never sends a length header used to pin
//!    its connection thread forever (no read deadline);
//! 2. the accept loop used to spawn handler threads without bound (no
//!    connection cap);
//! 3. a deeply nested JSON payload used to be limited only by the parser
//!    depth cap — pinned here end-to-end: the server answers with a
//!    client-error frame and keeps serving.

use quclassi::model::{QuClassiConfig, QuClassiModel};
use quclassi::swap_test::FidelityEstimator;
use quclassi_infer::CompiledModel;
use quclassi_serve::json::{Json, MAX_PARSE_DEPTH};
use quclassi_serve::wire::{read_frame, write_frame};
use quclassi_serve::{ServeConfig, ServeRuntime, WireClient, WireConfig, WireServer};
use quclassi_sim::batch::BatchExecutor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn compiled(seed: u64) -> CompiledModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
    CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap()
}

fn started_runtime() -> ServeRuntime {
    let runtime =
        ServeRuntime::start(ServeConfig::default(), BatchExecutor::single_threaded(0)).unwrap();
    runtime.deploy("iris", compiled(7)).unwrap();
    runtime
}

#[test]
fn slow_client_is_disconnected_by_the_read_deadline() {
    let runtime = started_runtime();
    let server = WireServer::start_with(
        "127.0.0.1:0",
        runtime.client(),
        WireConfig {
            read_timeout: Some(Duration::from_millis(150)),
            write_timeout: Some(Duration::from_millis(150)),
            ..WireConfig::default()
        },
    )
    .unwrap();

    // A slowloris peer: sends half a length header, then goes silent.
    let mut slow = TcpStream::connect(server.local_addr()).unwrap();
    slow.write_all(&[0u8, 0]).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let start = Instant::now();
    let mut buf = [0u8; 16];
    // The server must close the connection once the read deadline fires —
    // observed here as EOF (Ok(0)) or a reset, well before our 5 s guard.
    let disconnected = match slow.read(&mut buf) {
        Ok(0) | Err(_) => true,
        Ok(_) => false,
    };
    assert!(disconnected, "server kept a silent connection alive");
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "disconnect took {:?} — the deadline did not fire",
        start.elapsed()
    );

    // A well-behaved client on the same server still gets served.
    let mut wire = WireClient::connect(server.local_addr()).unwrap();
    wire.ping().unwrap();
    assert_eq!(
        wire.predict("iris", &[0.2, 0.4, 0.6, 0.8]).unwrap().model,
        "iris"
    );

    server.shutdown();
    runtime.shutdown();
}

#[test]
fn connections_beyond_the_cap_get_a_retryable_saturated_error() {
    let runtime = started_runtime();
    let server = WireServer::start_with(
        "127.0.0.1:0",
        runtime.client(),
        WireConfig {
            max_connections: 2,
            ..WireConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Fill the cap with two live connections (pinged so the handlers are
    // demonstrably running before the third connect).
    let mut first = WireClient::connect(addr).unwrap();
    first.ping().unwrap();
    let mut second = WireClient::connect(addr).unwrap();
    second.ping().unwrap();

    // The third connection is refused with a saturated error frame.
    let mut refused = TcpStream::connect(addr).unwrap();
    refused
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let frame = read_frame(&mut refused)
        .expect("refusal frame must arrive")
        .expect("refusal, not silent EOF");
    let response = Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response.get("kind").and_then(Json::as_str),
        Some("saturated"),
        "over-cap refusal must carry the retryable backpressure kind"
    );
    assert_eq!(response.get("capacity").and_then(Json::as_u64), Some(2));

    // The refusal is counted — and counted as *delivered*: the error
    // frame reached the peer, so the write-failure counter stays zero.
    // (Refusal-write failures used to be silently discarded; the unit
    // test in wire.rs pins the failing-write side of this counter.)
    let metrics = first.metrics().unwrap();
    assert!(
        metrics.get("wire_refusals").and_then(Json::as_u64).unwrap() >= 1,
        "over-cap refusals must be counted"
    );
    assert_eq!(
        metrics.get("refusal_write_failures").and_then(Json::as_u64),
        Some(0),
        "this refusal frame was delivered, not dropped"
    );

    // The capped connections are unaffected…
    first.ping().unwrap();
    second.ping().unwrap();

    // …and once one disconnects, a retry is admitted (the backpressure
    // contract: saturated means try again later, not never).
    drop(first);
    let start = Instant::now();
    let mut retried = loop {
        // The acceptor reaps finished handlers lazily (on the next
        // accept), so the first retry may still see the old count.
        if let Ok(mut wire) = WireClient::connect(addr) {
            if wire.ping().is_ok() {
                break wire;
            }
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "retry after a slot freed was never admitted"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(
        retried
            .predict("iris", &[0.1, 0.3, 0.5, 0.7])
            .unwrap()
            .model,
        "iris"
    );

    server.shutdown();
    runtime.shutdown();
}

#[test]
fn deeply_nested_payloads_get_an_error_frame_and_the_process_survives() {
    let runtime = started_runtime();
    let server = WireServer::start("127.0.0.1:0", runtime.client()).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A 200k-deep array bomb (400 KiB for the attacker, a would-be ~200k
    // recursion frames for the parser) and an object bomb.
    for bomb in [
        "[".repeat(200_000) + &"]".repeat(200_000),
        "{\"a\":".repeat(200_000) + "1" + &"}".repeat(200_000),
        // Nesting buried inside an otherwise valid predict request.
        format!(
            "{{\"op\":\"predict\",\"model\":\"iris\",\"features\":{}1{}}}",
            "[".repeat(MAX_PARSE_DEPTH + 10),
            "]".repeat(MAX_PARSE_DEPTH + 10)
        ),
    ] {
        write_frame(&mut stream, bomb.as_bytes()).unwrap();
        let frame = read_frame(&mut stream)
            .expect("server must answer, not die")
            .expect("error frame, not EOF");
        let response = Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            response.get("kind").and_then(Json::as_str),
            Some("protocol"),
            "nesting bomb must be classified as a client error"
        );
    }

    // Same connection keeps working — framing never desynchronised…
    write_frame(&mut stream, b"{\"op\":\"ping\"}").unwrap();
    let frame = read_frame(&mut stream).unwrap().unwrap();
    let response = Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));

    // …and so does the rest of the server.
    let mut wire = WireClient::connect(server.local_addr()).unwrap();
    assert_eq!(
        wire.predict("iris", &[0.9, 0.1, 0.2, 0.6]).unwrap().model,
        "iris"
    );

    server.shutdown();
    runtime.shutdown();
}

#[test]
fn wire_config_validation_and_defaults() {
    assert!(WireConfig::default().validate().is_ok());
    assert!(WireConfig {
        max_connections: 0,
        ..WireConfig::default()
    }
    .validate()
    .is_err());
    assert!(WireConfig {
        read_timeout: Some(Duration::ZERO),
        ..WireConfig::default()
    }
    .validate()
    .is_err());
    assert!(WireConfig {
        write_timeout: Some(Duration::ZERO),
        ..WireConfig::default()
    }
    .validate()
    .is_err());
    // Disabled deadlines are a legal (if trusting) configuration.
    assert!(WireConfig {
        read_timeout: None,
        write_timeout: None,
        ..WireConfig::default()
    }
    .validate()
    .is_ok());
}
