//! Model checks for the `BoundedQueue` push / batched-pop / close-drain
//! protocol (mutex + condvar, notify after unlock).
//!
//! Run with `RUSTFLAGS="--cfg quclassi_model" cargo test -p quclassi-serve
//! --test model_queue`. Compiles to nothing otherwise.
//!
//! All scenarios use a zero batch window: the model's condvar treats timed
//! waits as immediate timeouts, so the deadline path contributes nothing
//! explorable — the rendezvous under test is the phase-1 wait loop.

#![cfg(quclassi_model)]

use interleave::thread;
use quclassi_serve::model_support::{check_protocol, mutations, QueueProbe};
use std::sync::Arc;

/// Two producers, one consumer: every pushed item is popped exactly once,
/// in admission order, in every interleaving.
#[test]
fn items_are_neither_lost_nor_duplicated() {
    check_protocol(&[], || {
        let q = Arc::new(QueueProbe::new(4));
        let producers: Vec<_> = [1u32, 2]
            .into_iter()
            .map(|v| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.push(v).unwrap())
            })
            .collect();
        let mut got = Vec::new();
        while got.len() < 2 {
            got.extend(q.pop_batch(2).expect("queue is not closed"));
        }
        for p in producers {
            p.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert_eq!(q.depth(), 0);
    });
}

/// Close-drain: a close racing the consumer never strands the item pushed
/// before it — the consumer drains it, then sees the closed/empty `None`.
#[test]
fn close_drains_queued_items_before_none() {
    check_protocol(&[], || {
        let q = Arc::new(QueueProbe::new(4));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                q.push(7).unwrap();
                q.close();
            })
        };
        let mut got = Vec::new();
        while let Some(items) = q.pop_batch(2) {
            got.extend(items);
        }
        producer.join().unwrap();
        assert_eq!(got, vec![7], "item pushed before close must drain");
        assert!(q.push(8).is_err(), "closed queue rejects admissions");
    });
}

/// Mutation proof: notifying before the item is visible is the classic
/// lost wakeup — the consumer can check the queue, find it empty, then
/// sleep through the only (already-spent) notification. The checker
/// reports the resulting deadlock.
#[test]
#[should_panic(expected = "interleave: model check failed")]
fn mutation_notify_before_publish_is_caught() {
    check_protocol(&[mutations::QUEUE_NOTIFY_EARLY], || {
        let q = Arc::new(QueueProbe::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop_batch(1).expect("queue never closes"))
        };
        q.push(1).unwrap();
        assert_eq!(consumer.join().unwrap(), vec![1]);
    });
}
