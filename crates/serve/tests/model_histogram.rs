//! Model checks for the `LatencyHistogram` lock-free recording protocol:
//! bucket count first, nanosecond sum published second with `Release`;
//! snapshots read the sum first with `Acquire`.
//!
//! Run with `RUSTFLAGS="--cfg quclassi_model" cargo test -p quclassi-serve
//! --test model_histogram`. Compiles to nothing otherwise.

#![cfg(quclassi_model)]

use interleave::thread;
use quclassi_serve::model_support::{check_protocol, mutations};
use quclassi_serve::LatencyHistogram;
use std::sync::Arc;

/// Two recorders of 1 ns each racing one snapshot. With 1 ns observations
/// the documented "mean never inflated" invariant collapses to
/// `sum_ns <= count`: every nanosecond that made it into the sum must
/// have its count visible.
fn mean_never_inflated_scenario() {
    let h = Arc::new(LatencyHistogram::new());
    let recorders: Vec<_> = (0..2)
        .map(|_| {
            let h = Arc::clone(&h);
            thread::spawn(move || h.record_ns(1))
        })
        .collect();
    let snap = h.snapshot();
    assert!(
        snap.sum_ns() <= snap.count(),
        "inflated mean: {} ns over {} observations",
        snap.sum_ns(),
        snap.count()
    );
    for r in recorders {
        r.join().unwrap();
    }
    let fin = h.snapshot();
    assert_eq!((fin.count(), fin.sum_ns()), (2, 2));
}

#[test]
fn snapshot_mean_is_never_inflated() {
    check_protocol(&[], mean_never_inflated_scenario);
}

/// Racing `fetch_min`/`fetch_max` from two recorders converge to the true
/// extremes in every interleaving.
#[test]
fn min_max_converge_under_racing_recorders() {
    check_protocol(&[], || {
        let h = Arc::new(LatencyHistogram::new());
        let a = {
            let h = Arc::clone(&h);
            thread::spawn(move || h.record_ns(5))
        };
        h.record_ns(9);
        a.join().unwrap();
        let snap = h.snapshot();
        assert_eq!((snap.min_ns(), snap.max_ns()), (5, 9));
        assert_eq!((snap.count(), snap.sum_ns()), (2, 14));
    });
}

/// Mutation proof: weakening the sum's publish to `Relaxed` severs the
/// release/acquire pairing with the snapshot — a snapshot can observe an
/// observation's nanoseconds without its count, inflating the mean.
#[test]
#[should_panic(expected = "interleave: model check failed")]
fn mutation_relaxed_total_is_caught() {
    check_protocol(
        &[mutations::HISTOGRAM_TOTAL_RELAXED],
        mean_never_inflated_scenario,
    );
}
