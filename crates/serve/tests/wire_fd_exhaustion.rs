//! File-descriptor behaviour of the wire frontends at the edge of the
//! process's `RLIMIT_NOFILE` budget.
//!
//! Two regressions are pinned here, both found by the 10k-connection
//! bench cell:
//!
//! 1. **fd amplification** — the threaded server used to `try_clone` every
//!    accepted socket (one fd for the acceptor's registry, one for the
//!    handler thread), doubling the per-connection descriptor cost and
//!    halving the connection count the budget allows. Acceptor and
//!    handler now share one descriptor through an `Arc<TcpStream>`.
//! 2. **accept livelock on `EMFILE`** — with descriptors exhausted,
//!    `accept` fails but the pending connection keeps the listener
//!    readable, so a level-triggered poll re-reports it instantly and the
//!    accept loop used to spin at 100% CPU (starving every established
//!    connection on small machines) until fds freed. Both servers now
//!    back off briefly after a persistent accept failure and recover as
//!    soon as descriptors free up.
//!
//! Everything here is Linux-specific by construction (the poll shim, the
//! `/proc/self` introspection, `EMFILE` provocation via `setrlimit`).

#![cfg(target_os = "linux")]

use quclassi::model::{QuClassiConfig, QuClassiModel};
use quclassi::swap_test::FidelityEstimator;
use quclassi_infer::CompiledModel;
use quclassi_serve::json::Json;
use quclassi_serve::wire::{read_frame, write_frame};
use quclassi_serve::{ServeConfig, ServeRuntime, ThreadedWireServer, WireConfig, WireServer};
use quclassi_sim::batch::BatchExecutor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::TcpStream;
use std::time::Duration;

/// Open descriptors of this process right now (the transient fd used to
/// read the directory is included in the listing, so this overcounts the
/// steady state by exactly one — fine for deltas).
fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .expect("/proc/self/fd readable")
        .count()
}

/// This process's cumulative CPU time (user + system, all threads). Reads
/// through a pre-opened handle because it is called while the process is
/// deliberately out of descriptors.
fn process_cpu(stat_file: &mut std::fs::File) -> Duration {
    use std::io::{Read, Seek, SeekFrom};
    stat_file.seek(SeekFrom::Start(0)).expect("stat seekable");
    let mut stat = String::new();
    stat_file
        .read_to_string(&mut stat)
        .expect("/proc/self/stat readable");
    // Fields 14/15 (utime/stime) counted after the parenthesised comm,
    // which may itself contain spaces.
    let after_comm = &stat[stat.rfind(')').expect("comm closes") + 2..];
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    let utime: u64 = fields[11].parse().expect("utime parses");
    let stime: u64 = fields[12].parse().expect("stime parses");
    let tick = Duration::from_secs(1) / 100; // USER_HZ is 100 on Linux
    tick * (utime + stime) as u32
}

fn ping(stream: &mut TcpStream) {
    let request = Json::obj(vec![("op", Json::str("ping"))]);
    write_frame(stream, request.to_string().as_bytes()).expect("ping write");
    let payload = read_frame(stream)
        .expect("ping read")
        .expect("connection open");
    let response = Json::parse(std::str::from_utf8(&payload).expect("utf8")).expect("json");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
}

/// The EMFILE provocation, shared by both frontends: establish a probe,
/// exhaust descriptors, connect a client the server cannot accept, prove
/// the accept loop idles instead of spinning, then free descriptors and
/// prove the starved connection is adopted and served.
fn emfile_dance(addr: std::net::SocketAddr) {
    let mut probe = TcpStream::connect(addr).expect("probe connect");
    probe
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    ping(&mut probe);

    // Leave exactly one spare descriptor: enough for the next client
    // socket, nothing left for the server to accept it with. The CPU
    // census handle is opened first — once exhausted, even /proc reads
    // would fail.
    let mut stat_file = std::fs::File::open("/proc/self/stat").expect("stat opens");
    let used = fd_count();
    poll::set_nofile_limit(used as u64).expect("lower soft limit");
    let mut starved = TcpStream::connect(addr).expect("kernel-level connect via backlog");
    starved
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // The connection is established in the kernel but the server's
    // accept now fails with EMFILE. A spinning accept loop would burn
    // ~100% of a core here; the backoff path burns (almost) none.
    let cpu_before = process_cpu(&mut stat_file);
    std::thread::sleep(Duration::from_millis(400));
    let spent = process_cpu(&mut stat_file) - cpu_before;
    assert!(
        spent < Duration::from_millis(200),
        "accept loop burned {spent:?} of CPU over 400ms of fd exhaustion \
         (EMFILE livelock)"
    );

    // Descriptors free up → the very next accept pass must adopt the
    // starved connection and serve it.
    poll::raise_nofile_limit().expect("restore budget");
    ping(&mut starved);
    ping(&mut probe);
}

/// One test, not several: every section manipulates process-global state
/// (`RLIMIT_NOFILE`, `/proc/self/fd` census) that parallel test threads
/// would corrupt.
#[test]
fn one_descriptor_per_connection_and_no_accept_livelock() {
    poll::raise_nofile_limit().expect("rlimit adjustable");
    let mut rng = StdRng::seed_from_u64(11);
    let model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
    let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
    let runtime =
        ServeRuntime::start(ServeConfig::default(), BatchExecutor::single_threaded(0)).unwrap();
    runtime.deploy("iris", compiled).unwrap();
    let config = WireConfig {
        max_connections: 256,
        read_timeout: None,
        write_timeout: Some(Duration::from_secs(10)),
        shards: 1,
    };
    let server =
        ThreadedWireServer::start_with("127.0.0.1:0", runtime.client(), config.clone()).unwrap();
    let addr = server.local_addr();

    // ---- Section 1: one server-side descriptor per connection. ----
    let before = fd_count();
    let mut herd: Vec<TcpStream> = Vec::new();
    for _ in 0..100 {
        herd.push(TcpStream::connect(addr).expect("connect"));
    }
    // A ping round-trip per socket proves each one is fully accepted and
    // has its handler running, so every descriptor the server will ever
    // hold for the herd exists before the census.
    for stream in &mut herd {
        ping(stream);
    }
    let delta = fd_count() - before;
    // 100 client ends + 100 server ends = 200. The old try_clone path
    // held 300; leave slack for harness noise but stay well under it.
    assert!(
        delta <= 240,
        "100 connections grew the fd table by {delta} \
         (> 2 per connection: server-side descriptor amplification)"
    );

    // ---- Section 2: EMFILE must not livelock the threaded acceptor. ----
    emfile_dance(addr);
    drop(herd);
    server.shutdown();

    // ---- Section 3: the same dance against the event-loop server. ----
    let server = WireServer::start_with("127.0.0.1:0", runtime.client(), config).unwrap();
    emfile_dance(server.local_addr());
    server.shutdown();
    runtime.shutdown();
}
