//! The serve-side error taxonomy.
//!
//! Every failure a request can hit between admission and reply has a
//! distinct variant, because the three audiences of an error need three
//! different things: the *caller* must know whether to fix the request
//! ([`ServeError::Model`] with a client error), retry later
//! ([`ServeError::Saturated`]), or give up ([`ServeError::ShutDown`]); the
//! *wire layer* maps variants onto stable `kind` strings so remote clients
//! can branch without parsing prose; and the *operator* gets messages that
//! name the knob or model involved.

use quclassi::error::QuClassiError;
use std::fmt;

/// Errors produced by the serving runtime, its registry, and its wire
/// protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The bounded request queue is full: admission control rejected the
    /// request instead of letting it wait unboundedly. This is the
    /// backpressure signal — callers should slow down and retry.
    Saturated {
        /// Queue depth observed at rejection time.
        depth: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The runtime is shutting down (or has shut down) and admits no new
    /// requests. Already-admitted requests are still drained and answered.
    ShutDown,
    /// No model with this name is deployed in the registry.
    UnknownModel(String),
    /// A runtime configuration value (environment knob, config field) was
    /// invalid. Rejected at startup, never silently defaulted.
    InvalidConfig(String),
    /// The model layer failed — either at admission (input validation) or
    /// during batch evaluation. Use [`QuClassiError::is_client_error`] to
    /// tell a bad request from an internal failure.
    Model(QuClassiError),
    /// A wire-protocol frame or message was malformed (bad length prefix,
    /// invalid JSON, missing fields, unknown op).
    Protocol(String),
    /// An I/O error on the wire (bind, accept, read, write).
    Io(String),
}

impl ServeError {
    /// A stable, machine-readable discriminator for the wire protocol.
    ///
    /// Remote clients branch on this string (`"saturated"` → back off and
    /// retry, `"bad_request"` → fix the input, …) instead of parsing the
    /// human-readable message.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Saturated { .. } => "saturated",
            ServeError::ShutDown => "shutdown",
            ServeError::UnknownModel(_) => "unknown_model",
            ServeError::InvalidConfig(_) => "invalid_config",
            ServeError::Model(e) if e.is_client_error() => "bad_request",
            ServeError::Model(_) => "model_error",
            ServeError::Protocol(_) => "protocol",
            ServeError::Io(_) => "io",
        }
    }

    /// Whether retrying the *identical* request later can succeed.
    ///
    /// True for transient conditions (saturation); false for requests that
    /// are wrong in themselves (unknown model, invalid input, protocol
    /// violations) and for shutdown.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServeError::Saturated { .. })
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Saturated { depth, capacity } => write!(
                f,
                "request queue saturated ({depth}/{capacity}); back off and retry"
            ),
            ServeError::ShutDown => write!(f, "serving runtime is shut down"),
            ServeError::UnknownModel(name) => write!(f, "no model named '{name}' is deployed"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve configuration: {msg}"),
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QuClassiError> for ServeError {
    fn from(e: QuClassiError) -> Self {
        ServeError::Model(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_distinct_per_audience() {
        let cases: Vec<(ServeError, &str)> = vec![
            (
                ServeError::Saturated {
                    depth: 8,
                    capacity: 8,
                },
                "saturated",
            ),
            (ServeError::ShutDown, "shutdown"),
            (ServeError::UnknownModel("m".into()), "unknown_model"),
            (ServeError::InvalidConfig("x".into()), "invalid_config"),
            (
                ServeError::Model(QuClassiError::InvalidData("nan".into())),
                "bad_request",
            ),
            (
                ServeError::Model(QuClassiError::InvalidConfig("c".into())),
                "model_error",
            ),
            (ServeError::Protocol("junk".into()), "protocol"),
            (ServeError::Io("eof".into()), "io"),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind);
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn only_saturation_is_retryable() {
        assert!(ServeError::Saturated {
            depth: 1,
            capacity: 1
        }
        .is_retryable());
        assert!(!ServeError::ShutDown.is_retryable());
        assert!(!ServeError::UnknownModel("m".into()).is_retryable());
        assert!(!ServeError::Model(QuClassiError::InvalidData("x".into())).is_retryable());
    }

    #[test]
    fn model_errors_expose_their_source() {
        use std::error::Error;
        let e = ServeError::from(QuClassiError::InvalidData("bad".into()));
        assert!(e.source().is_some());
        assert!(ServeError::ShutDown.source().is_none());
    }
}
