//! The multi-model registry: named models, versioned hot-swap, per-model
//! stats.
//!
//! A serving runtime outlives any single model artifact. The registry maps
//! stable names (`"iris"`, `"mnist-36"`) onto immutable, reference-counted
//! [`ModelEntry`]s so that deployments follow the classic zero-downtime
//! sequence:
//!
//! 1. **load** — the caller compiles the new [`CompiledModel`] off to the
//!    side (the registry never blocks serving while this happens);
//! 2. **warm** — [`ModelRegistry::deploy`] pushes a synthetic mid-range
//!    sample through the full predict path *before* the swap, so a broken
//!    artifact is rejected while the old version still serves, and the
//!    first real request never pays first-touch cost;
//! 3. **atomic switch** — one write-locked map insert makes the new version
//!    visible; every request admitted afterwards resolves to it;
//! 4. **drain old** — requests admitted before the switch hold their own
//!    `Arc<ModelEntry>` and finish on the version that admitted them. The
//!    old artifact is freed when its last in-flight reference drops;
//!    [`ModelRegistry::draining`] reports how many retired versions are
//!    still alive.

use crate::error::ServeError;
use crate::metrics::ModelStats;
use crate::quclassi_sync::{Arc, Mutex};
use crate::swap::SwapMap;
use quclassi_infer::CompiledModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// One deployed (name, version, artifact) triple plus its serving counters.
///
/// Entries are immutable once deployed: a "model update" is a new entry
/// under the same name, never a mutation — which is what makes the switch
/// atomic and the drain safe.
#[derive(Debug)]
pub struct ModelEntry {
    name: String,
    version: u64,
    model: Arc<CompiledModel>,
    stats: ModelStats,
}

impl ModelEntry {
    /// The registry name this entry is deployed under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The monotonically increasing version of this deployment (1 for the
    /// first deploy of a name).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The immutable compiled artifact.
    pub fn model(&self) -> &Arc<CompiledModel> {
        &self.model
    }

    /// This entry's serving counters.
    pub fn stats(&self) -> &ModelStats {
        &self.stats
    }
}

/// A thread-safe registry of named, versioned compiled models.
///
/// The publication mechanics — write-locked versioned insert, drain
/// tracking of displaced entries — live in the generic (and model-checked)
/// crate-private `SwapMap`; this type adds the model-specific policy: warm-up before
/// the switch, rollback history, and typed errors.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: SwapMap<ModelEntry>,
    /// The artifact each name served *before* its current version, kept for
    /// [`ModelRegistry::rollback`]. Holds the bare `CompiledModel` (not the
    /// retired `ModelEntry`) so the drain accounting stays truthful: the
    /// displaced entry's strong count must reach zero once its in-flight
    /// requests finish.
    previous: Mutex<HashMap<String, (u64, Arc<CompiledModel>)>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploys `model` under `name`, returning the new version number.
    ///
    /// Implements warm → atomic switch → drain-old: the artifact is warmed
    /// with a synthetic mid-range sample first (a failure aborts the deploy
    /// and leaves any currently active version untouched), then swapped in
    /// with a single write-locked insert. The displaced entry, if any,
    /// keeps serving its in-flight requests and is tracked by
    /// [`ModelRegistry::draining`] until the last reference drops.
    pub fn deploy(&self, name: &str, model: CompiledModel) -> Result<u64, ServeError> {
        if name.is_empty() {
            return Err(ServeError::InvalidConfig(
                "model name must not be empty".to_string(),
            ));
        }
        // Warm outside any lock: serving traffic proceeds on the old
        // version for as long as this takes.
        let warm_sample = vec![0.5; model.encoder().dim()];
        let mut rng = StdRng::seed_from_u64(0);
        model
            .predict_one(&warm_sample, &mut rng)
            .map_err(ServeError::Model)?;

        let model = Arc::new(model);
        let (version, displaced) = self.models.publish(name, |version| ModelEntry {
            name: name.to_string(),
            version,
            model: Arc::clone(&model),
            stats: ModelStats::default(),
        });
        if let Some((old_version, old)) = displaced {
            self.previous
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(name.to_string(), (old_version, Arc::clone(&old.model)));
            // `old` drops here; the entry stays alive exactly as long as
            // in-flight requests still hold it.
        }
        Ok(version)
    }

    /// Redeploys the artifact `name` served before its current version, as
    /// a **new** monotonic version (versions never rewind — in-flight
    /// responses keep reporting the version that admitted them, and a
    /// rolled-back-then-fixed model cannot collide with its own history).
    /// Returns the new version number.
    ///
    /// Goes through the full [`ModelRegistry::deploy`] sequence, so the
    /// restored artifact is warmed before the switch and the displaced
    /// (regressed) version drains like any other. After a rollback the
    /// regressed artifact becomes the name's "previous", which makes
    /// rollback its own inverse.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] if `name` has never been deployed, or
    /// [`ServeError::InvalidConfig`] if it has only seen one version (there
    /// is nothing to roll back to).
    pub fn rollback(&self, name: &str) -> Result<u64, ServeError> {
        if self.active_version(name).is_none() {
            return Err(ServeError::UnknownModel(name.to_string()));
        }
        let artifact = {
            let previous = self.previous.lock().unwrap_or_else(|e| e.into_inner());
            match previous.get(name) {
                Some((_, artifact)) => CompiledModel::clone(artifact),
                None => {
                    return Err(ServeError::InvalidConfig(format!(
                        "model '{name}' has no previous version to roll back to"
                    )))
                }
            }
        };
        self.deploy(name, artifact)
    }

    /// The version whose artifact a [`ModelRegistry::rollback`] of `name`
    /// would restore (the version displaced by the most recent deploy), if
    /// any.
    pub fn previous_version(&self, name: &str) -> Option<u64> {
        self.previous
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|(v, _)| *v)
    }

    /// Resolves `name` to its currently active entry.
    pub fn get(&self, name: &str) -> Result<Arc<ModelEntry>, ServeError> {
        self.models
            .get(name)
            .map(|(_, entry)| entry)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))
    }

    /// The active version of `name`, if deployed.
    pub fn active_version(&self, name: &str) -> Option<u64> {
        self.models.version_of(name)
    }

    /// Deployed model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.models.names()
    }

    /// Snapshots of every active entry, sorted by name.
    pub fn entries(&self) -> Vec<Arc<ModelEntry>> {
        self.models.entries()
    }

    /// Number of *retired* (hot-swapped-out) versions still referenced by
    /// in-flight requests. Dropped references are pruned on each call, so
    /// a quiescent runtime reports 0.
    pub fn draining(&self) -> usize {
        self.models.draining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quclassi::model::{QuClassiConfig, QuClassiModel};
    use quclassi::swap_test::FidelityEstimator;

    fn compiled(seed: u64) -> CompiledModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let model =
            QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
        CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap()
    }

    #[test]
    fn deploy_versions_are_monotonic_per_name() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.deploy("a", compiled(1)).unwrap(), 1);
        assert_eq!(reg.deploy("a", compiled(2)).unwrap(), 2);
        assert_eq!(reg.deploy("b", compiled(3)).unwrap(), 1);
        assert_eq!(reg.active_version("a"), Some(2));
        assert_eq!(reg.active_version("b"), Some(1));
        assert_eq!(reg.names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn unknown_model_is_a_distinct_error() {
        let reg = ModelRegistry::new();
        assert_eq!(
            reg.get("ghost").unwrap_err(),
            ServeError::UnknownModel("ghost".to_string())
        );
        assert_eq!(reg.active_version("ghost"), None);
    }

    #[test]
    fn hot_swap_keeps_in_flight_references_alive_then_drains() {
        let reg = ModelRegistry::new();
        reg.deploy("m", compiled(1)).unwrap();
        let in_flight = reg.get("m").unwrap(); // a request mid-batch
        reg.deploy("m", compiled(2)).unwrap();
        // New admissions see v2; the in-flight request still holds v1.
        assert_eq!(reg.get("m").unwrap().version(), 2);
        assert_eq!(in_flight.version(), 1);
        assert_eq!(reg.draining(), 1);
        drop(in_flight);
        assert_eq!(reg.draining(), 0, "v1 drained once its last ref dropped");
    }

    #[test]
    fn rollback_restores_the_previous_artifact_as_a_new_version() {
        let reg = ModelRegistry::new();
        reg.deploy("m", compiled(1)).unwrap();
        assert_eq!(reg.previous_version("m"), None, "v1 has no predecessor");
        reg.deploy("m", compiled(2)).unwrap();
        assert_eq!(reg.previous_version("m"), Some(1));

        let v3 = reg.rollback("m").unwrap();
        assert_eq!(v3, 3, "rollback deploys a new version, never rewinds");
        assert_eq!(reg.active_version("m"), Some(3));
        // v3 serves v1's parameters: it predicts identically to a fresh
        // compile of the same seed.
        let mut rng = StdRng::seed_from_u64(9);
        let x = [0.2, 0.7, 0.4, 0.9];
        let want = compiled(1).predict_one(&x, &mut rng).unwrap();
        let got = reg
            .get("m")
            .unwrap()
            .model()
            .predict_one(&x, &mut rng)
            .unwrap();
        assert_eq!(got, want);
        // The regressed v2 artifact is now the rollback target, so a second
        // rollback is the inverse of the first.
        assert_eq!(reg.previous_version("m"), Some(2));
        assert_eq!(reg.rollback("m").unwrap(), 4);
        let want = compiled(2).predict_one(&x, &mut rng).unwrap();
        let got = reg
            .get("m")
            .unwrap()
            .model()
            .predict_one(&x, &mut rng)
            .unwrap();
        assert_eq!(got, want);
        // Rollback never leaks drain references of its own.
        assert_eq!(reg.draining(), 0);
    }

    #[test]
    fn rollback_without_history_is_rejected() {
        let reg = ModelRegistry::new();
        assert!(matches!(
            reg.rollback("ghost"),
            Err(ServeError::UnknownModel(_))
        ));
        reg.deploy("m", compiled(1)).unwrap();
        assert!(matches!(
            reg.rollback("m"),
            Err(ServeError::InvalidConfig(_))
        ));
        // The failed rollback left the active version untouched.
        assert_eq!(reg.active_version("m"), Some(1));
    }

    #[test]
    fn warm_failure_aborts_the_deploy_and_keeps_the_old_version() {
        let reg = ModelRegistry::new();
        reg.deploy("m", compiled(1)).unwrap();
        let v1 = reg.get("m").unwrap();
        // A stochastic SWAP-test artifact with zero shots... not directly
        // constructible; instead exercise the name-validation abort path
        // and assert the registry is untouched by failed deploys.
        assert!(matches!(
            reg.deploy("", compiled(2)),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(Arc::ptr_eq(&reg.get("m").unwrap(), &v1));
        assert_eq!(reg.draining(), 0);
    }
}
