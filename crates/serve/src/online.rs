//! Train-while-serve: the background online learner.
//!
//! An [`OnlineLearner`] runs next to a live [`crate::ServeRuntime`] and
//! closes the loop the paper leaves open (train offline, evaluate once):
//! it consumes a labelled sample stream, periodically fits a **candidate**
//! on the accumulated window, compiles it, **shadow-evaluates** it on
//! mirrored live traffic (see [`crate::shadow`]), and promotes it through
//! the registry's zero-downtime hot-swap only when an
//! accuracy-and-p99-latency gate passes. If the live model's accuracy on a
//! fresh holdout later regresses below a floor, the learner automatically
//! rolls back to the previous artifact — as a new monotonic version.
//!
//! ## One cycle
//!
//! ```text
//! stream ──▶ window ──▶ regression check (live acc on fresh holdout)
//!                        │ below floor? ──▶ rollback, next cycle
//!                        ▼
//!                      train candidate (catch_unwind: panics survive)
//!                        ▼
//!                      validate params finite ──▶ compile
//!                        ▼
//!                      accuracy gate (holdout) ──▶ shadow on live traffic
//!                        ▼
//!                      latency + failure gate ──▶ promote (hot-swap)
//! ```
//!
//! Every rejected candidate increments `candidates_rejected`; a rejected
//! or failed candidate **never reaches the registry** — user traffic only
//! ever sees fully gated versions.
//!
//! ## Determinism
//!
//! The learner's training and evaluation randomness derives from
//! [`OnlineConfig::seed`]; mirrored shadow traffic is rate-gated by a
//! deterministic accumulator; and fault injection (test builds and the
//! `fault-injection` feature only) follows a seeded `FaultPlan`
//! (compiled out of release builds, so plain docs cannot link it).
//! Gate *measurements* (latency) depend on machine load, but every
//! injected failure reproduces exactly.

use crate::error::ServeError;
use crate::runtime::{ServeRuntime, Shared};
use crate::shadow::ShadowReport;
use quclassi::model::QuClassiModel;
use quclassi::trainer::Trainer;
use quclassi_infer::CompiledModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of the online learner (see module docs for the cycle they
/// control).
#[derive(Clone, Debug)]
pub struct OnlineConfig {
    /// Samples pulled from the stream per training cycle (train + holdout).
    pub window: usize,
    /// Training epochs over each window (the incremental continuation of
    /// the trainer's own config).
    pub epochs_per_cycle: usize,
    /// Fraction of each window held out for the accuracy gates (clamped so
    /// both sides keep at least one sample).
    pub holdout_fraction: f64,
    /// Fraction of scheduler flushes mirrored onto the candidate during
    /// shadow evaluation, in `(0, 1]`.
    pub shadow_rate: f64,
    /// Mirrored requests required before the latency gate may pass. `0`
    /// disables shadow gating entirely (promote on accuracy alone — for
    /// trafficless tests and demos).
    pub min_shadow_requests: u64,
    /// Maximum time to wait for `min_shadow_requests` worth of mirrored
    /// traffic before giving up on the candidate.
    pub shadow_wait: Duration,
    /// Holdout accuracy a candidate must reach to be promoted.
    pub promote_min_accuracy: f64,
    /// Slack by which a candidate may undercut the live model's holdout
    /// accuracy and still be promoted (new data shifts both).
    pub accuracy_tolerance: f64,
    /// Maximum allowed candidate-p99 / live-p99 ratio on mirrored traffic.
    pub max_p99_ratio: f64,
    /// Live holdout accuracy below which the learner rolls back to the
    /// previous version (when one exists).
    pub rollback_min_accuracy: f64,
    /// Stop after this many cycles (`None` = run until stopped).
    pub max_cycles: Option<u64>,
    /// Seed for the learner's training shuffles and evaluation streams.
    pub seed: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            window: 64,
            epochs_per_cycle: 1,
            holdout_fraction: 0.25,
            shadow_rate: 1.0,
            min_shadow_requests: 16,
            shadow_wait: Duration::from_millis(500),
            promote_min_accuracy: 0.75,
            accuracy_tolerance: 0.05,
            max_p99_ratio: 3.0,
            rollback_min_accuracy: 0.55,
            max_cycles: None,
            seed: 0,
        }
    }
}

impl OnlineConfig {
    /// Reads the online-learning knobs from the environment on top of the
    /// defaults: `QUCLASSI_ONLINE_WINDOW` (positive integer),
    /// `QUCLASSI_SHADOW_RATE` (float in `(0, 1]`), and
    /// `QUCLASSI_PROMOTE_MIN_ACC` (float in `[0, 1]`).
    ///
    /// # Errors
    /// A variable that is set but malformed is **rejected** with
    /// [`ServeError::InvalidConfig`] — same contract as
    /// [`crate::ServeConfig::from_env`]: a typo in a deployment knob must
    /// fail startup, not silently train with a default.
    pub fn from_env() -> Result<Self, ServeError> {
        let mut config = OnlineConfig::default();
        if let Some(raw) = env_nonempty("QUCLASSI_ONLINE_WINDOW") {
            config.window = match raw.trim().parse::<usize>() {
                Ok(n) if n >= 2 => n,
                _ => {
                    return Err(ServeError::InvalidConfig(format!(
                        "QUCLASSI_ONLINE_WINDOW must be an integer ≥ 2, got '{raw}'"
                    )))
                }
            };
        }
        if let Some(raw) = env_nonempty("QUCLASSI_SHADOW_RATE") {
            config.shadow_rate = match raw.trim().parse::<f64>() {
                Ok(r) if r > 0.0 && r <= 1.0 => r,
                _ => {
                    return Err(ServeError::InvalidConfig(format!(
                        "QUCLASSI_SHADOW_RATE must be a float in (0, 1], got '{raw}'"
                    )))
                }
            };
        }
        if let Some(raw) = env_nonempty("QUCLASSI_PROMOTE_MIN_ACC") {
            config.promote_min_accuracy = match raw.trim().parse::<f64>() {
                Ok(a) if (0.0..=1.0).contains(&a) => a,
                _ => {
                    return Err(ServeError::InvalidConfig(format!(
                        "QUCLASSI_PROMOTE_MIN_ACC must be a float in [0, 1], got '{raw}'"
                    )))
                }
            };
        }
        config.validate()?;
        Ok(config)
    }

    /// Checks the invariants.
    pub fn validate(&self) -> Result<(), ServeError> {
        let bad = |msg: String| Err(ServeError::InvalidConfig(msg));
        if self.window < 2 {
            return bad("online window must be at least 2 (train + holdout)".into());
        }
        if self.epochs_per_cycle == 0 {
            return bad("epochs_per_cycle must be at least 1".into());
        }
        if !(self.holdout_fraction > 0.0 && self.holdout_fraction < 1.0) {
            return bad(format!(
                "holdout_fraction must be in (0, 1), got {}",
                self.holdout_fraction
            ));
        }
        if !(self.shadow_rate > 0.0 && self.shadow_rate <= 1.0) {
            return bad(format!(
                "shadow_rate must be in (0, 1], got {}",
                self.shadow_rate
            ));
        }
        for (name, v) in [
            ("promote_min_accuracy", self.promote_min_accuracy),
            ("rollback_min_accuracy", self.rollback_min_accuracy),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return bad(format!("{name} must be in [0, 1], got {v}"));
            }
        }
        if self.accuracy_tolerance < 0.0 {
            return bad(format!(
                "accuracy_tolerance must be non-negative, got {}",
                self.accuracy_tolerance
            ));
        }
        if self.max_p99_ratio <= 0.0 {
            return bad(format!(
                "max_p99_ratio must be positive, got {}",
                self.max_p99_ratio
            ));
        }
        Ok(())
    }
}

fn env_nonempty(key: &str) -> Option<String> {
    std::env::var(key).ok().filter(|v| !v.trim().is_empty())
}

/// How one learner cycle ended.
#[derive(Clone, Debug, PartialEq)]
pub enum CycleOutcome {
    /// The candidate passed every gate and was hot-swapped in.
    Promoted {
        /// The registry version now serving the candidate.
        version: u64,
    },
    /// The live model regressed below the rollback floor; the previous
    /// artifact was restored.
    RolledBack {
        /// The new registry version serving the restored artifact.
        version: u64,
    },
    /// The trainer panicked; the candidate was discarded and the learner
    /// survived.
    TrainerPanicked,
    /// Training returned an error (bad window data, mismatched shapes…).
    TrainFailed,
    /// The trained candidate had non-finite parameters.
    RejectedValidation,
    /// The candidate failed to compile.
    RejectedCompile,
    /// The candidate missed the holdout-accuracy gate.
    RejectedAccuracy {
        /// Candidate holdout accuracy.
        candidate: f64,
        /// Live holdout accuracy on the same samples.
        live: f64,
    },
    /// The candidate failed on mirrored traffic the live model served.
    RejectedShadowFailures {
        /// Number of mirrored requests it failed.
        failures: u64,
    },
    /// Too little live traffic was mirrored within the shadow-wait budget
    /// to judge the candidate.
    ShadowStarved {
        /// Mirrored requests actually observed.
        requests: u64,
    },
    /// The candidate's mirrored-traffic p99 exceeded the allowed ratio.
    RejectedLatency {
        /// Measured candidate-p99 / live-p99 ratio.
        p99_ratio: f64,
    },
    /// The final hot-swap deploy (warm-up included) failed.
    RejectedDeploy,
}

/// The record of one learner cycle.
#[derive(Clone, Debug)]
pub struct CycleReport {
    /// Cycle index (0-based; also the shadow tag for this cycle).
    pub cycle: u64,
    /// Live model's accuracy on this cycle's fresh holdout.
    pub live_accuracy: f64,
    /// Candidate's holdout accuracy, once it got that far.
    pub candidate_accuracy: Option<f64>,
    /// Final shadow report, when shadow evaluation ran.
    pub shadow: Option<ShadowReport>,
    /// How the cycle ended.
    pub outcome: CycleOutcome,
}

/// Everything the learner did, returned by [`OnlineLearner::stop`].
#[derive(Clone, Debug, Default)]
pub struct OnlineReport {
    /// Per-cycle records, in cycle order.
    pub cycles: Vec<CycleReport>,
}

impl OnlineReport {
    /// Number of promoted candidates.
    pub fn promotions(&self) -> u64 {
        self.count(|o| matches!(o, CycleOutcome::Promoted { .. }))
    }

    /// Number of automatic rollbacks.
    pub fn rollbacks(&self) -> u64 {
        self.count(|o| matches!(o, CycleOutcome::RolledBack { .. }))
    }

    /// Number of caught trainer panics.
    pub fn panics(&self) -> u64 {
        self.count(|o| matches!(o, CycleOutcome::TrainerPanicked))
    }

    /// Number of candidates discarded before reaching the registry.
    pub fn rejected(&self) -> u64 {
        self.cycles.len() as u64 - self.promotions() - self.rollbacks() - self.panics()
    }

    /// The outcome of cycle `cycle`, if it ran.
    pub fn outcome_at(&self, cycle: u64) -> Option<&CycleOutcome> {
        self.cycles
            .iter()
            .find(|c| c.cycle == cycle)
            .map(|c| &c.outcome)
    }

    fn count(&self, pred: impl Fn(&CycleOutcome) -> bool) -> u64 {
        self.cycles.iter().filter(|c| pred(&c.outcome)).count() as u64
    }
}

/// Internal fault hooks: a real [`crate::FaultPlan`] in test /
/// `fault-injection` builds, a zero-sized no-op otherwise, so the cycle
/// code reads identically in both.
#[derive(Clone, Debug, Default)]
struct Hooks {
    #[cfg(any(test, feature = "fault-injection"))]
    plan: crate::faults::FaultPlan,
}

#[cfg(any(test, feature = "fault-injection"))]
impl Hooks {
    fn with_plan(plan: crate::faults::FaultPlan) -> Self {
        Hooks { plan }
    }

    fn has(&self, cycle: u64, fault: &crate::faults::Fault) -> bool {
        self.plan.has(cycle, fault)
    }

    fn trainer_panic(&self, cycle: u64) -> bool {
        self.has(cycle, &crate::faults::Fault::TrainerPanic)
    }
    fn compile_fail(&self, cycle: u64) -> bool {
        self.has(cycle, &crate::faults::Fault::CompileFail)
    }
    fn poison(&self, cycle: u64) -> bool {
        self.has(cycle, &crate::faults::Fault::PoisonCandidate)
    }
    fn corrupt(&self, cycle: u64) -> bool {
        self.has(cycle, &crate::faults::Fault::CorruptCandidate)
    }
    fn bypass_gate(&self, cycle: u64) -> bool {
        self.has(cycle, &crate::faults::Fault::BypassGate)
    }
    fn swap_under_load(&self, cycle: u64) -> bool {
        self.has(cycle, &crate::faults::Fault::SwapUnderLoad)
    }
    fn slow_compile_ms(&self, cycle: u64) -> Option<u64> {
        self.plan.slow_compile_ms(cycle)
    }
}

#[cfg(not(any(test, feature = "fault-injection")))]
impl Hooks {
    fn trainer_panic(&self, _cycle: u64) -> bool {
        false
    }
    fn compile_fail(&self, _cycle: u64) -> bool {
        false
    }
    fn poison(&self, _cycle: u64) -> bool {
        false
    }
    fn corrupt(&self, _cycle: u64) -> bool {
        false
    }
    fn bypass_gate(&self, _cycle: u64) -> bool {
        false
    }
    fn swap_under_load(&self, _cycle: u64) -> bool {
        false
    }
    fn slow_compile_ms(&self, _cycle: u64) -> Option<u64> {
        None
    }
}

/// A background trainer promoting gated candidates into a live
/// [`ServeRuntime`] (see module docs).
///
/// Dropping the learner stops and joins it; call [`OnlineLearner::stop`]
/// instead to also collect the [`OnlineReport`].
#[derive(Debug)]
pub struct OnlineLearner {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<OnlineReport>>,
}

impl OnlineLearner {
    /// Starts the learner against `runtime`'s deployed model `name`.
    ///
    /// `base` is the parameter state training continues from — normally
    /// the same model whose compilation is currently deployed as `name`.
    /// `stream` supplies labelled samples (see
    /// `quclassi_datasets::stream::ReplayStream` for the bundled
    /// datasets); it should yield without blocking, and may end (`None`),
    /// which stops the learner at the next window boundary.
    ///
    /// # Errors
    /// Rejects an invalid `config` and an unknown `name`; fails if the
    /// learner thread cannot be spawned.
    pub fn start<S>(
        runtime: &ServeRuntime,
        name: &str,
        base: QuClassiModel,
        trainer: Trainer,
        stream: S,
        config: OnlineConfig,
    ) -> Result<Self, ServeError>
    where
        S: Iterator<Item = (Vec<f64>, usize)> + Send + 'static,
    {
        Self::launch(
            runtime,
            name,
            base,
            trainer,
            stream,
            config,
            Hooks::default(),
        )
    }

    /// [`OnlineLearner::start`] with a deterministic fault-injection
    /// schedule (test builds and the `fault-injection` feature only).
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn start_with_faults<S>(
        runtime: &ServeRuntime,
        name: &str,
        base: QuClassiModel,
        trainer: Trainer,
        stream: S,
        config: OnlineConfig,
        faults: crate::faults::FaultPlan,
    ) -> Result<Self, ServeError>
    where
        S: Iterator<Item = (Vec<f64>, usize)> + Send + 'static,
    {
        Self::launch(
            runtime,
            name,
            base,
            trainer,
            stream,
            config,
            Hooks::with_plan(faults),
        )
    }

    fn launch<S>(
        runtime: &ServeRuntime,
        name: &str,
        base: QuClassiModel,
        trainer: Trainer,
        stream: S,
        config: OnlineConfig,
        hooks: Hooks,
    ) -> Result<Self, ServeError>
    where
        S: Iterator<Item = (Vec<f64>, usize)> + Send + 'static,
    {
        config.validate()?;
        let shared = Arc::clone(runtime.shared());
        shared.registry.get(name)?; // the target must already be deployed
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            let name = name.to_string();
            std::thread::Builder::new()
                .name("quclassi-online-learner".to_string())
                .spawn(move || {
                    learner_loop(
                        &shared, &name, base, &trainer, stream, &config, &hooks, &stop,
                    )
                })
                .map_err(|e| ServeError::Io(format!("cannot spawn online learner: {e}")))?
        };
        Ok(OnlineLearner {
            stop,
            handle: Some(handle),
        })
    }

    /// Signals the learner to stop, joins it, and returns its report.
    pub fn stop(mut self) -> OnlineReport {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .and_then(|h| h.join().ok())
            .unwrap_or_default()
    }

    /// Joins the learner **without** signalling it to stop — blocks until
    /// it finishes on its own. Only meaningful with
    /// [`OnlineConfig::max_cycles`] set (or a finite stream); otherwise
    /// this blocks forever.
    pub fn join(mut self) -> OnlineReport {
        self.handle
            .take()
            .and_then(|h| h.join().ok())
            .unwrap_or_default()
    }
}

impl Drop for OnlineLearner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The learner thread body: one gated train→shadow→promote cycle per
/// iteration. Never touches user-visible responses; all its evaluation
/// runs on the trainer's own executor, not the scheduler's.
#[allow(clippy::too_many_arguments)]
fn learner_loop<S>(
    shared: &Arc<Shared>,
    name: &str,
    mut current: QuClassiModel,
    trainer: &Trainer,
    mut stream: S,
    config: &OnlineConfig,
    hooks: &Hooks,
    stop: &AtomicBool,
) -> OnlineReport
where
    S: Iterator<Item = (Vec<f64>, usize)>,
{
    let eval_exec = trainer.batch_executor().clone();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut last_good = current.clone();
    let mut cycles = Vec::new();
    let mut cycle: u64 = 0;

    // Mirrors a finished cycle's headline numbers into the metrics
    // registry (`quclassi_online_*` gauges) as it is pushed, so the
    // exposition tracks the learner without waiting for a final report.
    let push_cycle = |cycles: &mut Vec<CycleReport>, report: CycleReport| {
        shared.stats.online_last_cycle.set(report.cycle);
        shared.stats.online_live_accuracy.set(report.live_accuracy);
        if let Some(accuracy) = report.candidate_accuracy {
            shared.stats.online_candidate_accuracy.set(accuracy);
        }
        cycles.push(report);
    };

    'cycles: while !stop.load(Ordering::Relaxed) {
        if let Some(max) = config.max_cycles {
            if cycle >= max {
                break;
            }
        }

        // 1. Accumulate a window from the stream.
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(config.window);
        let mut ys: Vec<usize> = Vec::with_capacity(config.window);
        while xs.len() < config.window {
            if stop.load(Ordering::Relaxed) {
                break 'cycles;
            }
            match stream.next() {
                Some((x, y)) => {
                    xs.push(x);
                    ys.push(y);
                }
                None => break 'cycles, // stream ended: nothing left to learn
            }
        }
        shared.stats.train_cycles.inc();
        let holdout = ((config.window as f64 * config.holdout_fraction).ceil() as usize)
            .clamp(1, config.window - 1);
        let split = config.window - holdout;
        let (train_x, hold_x) = xs.split_at(split);
        let (train_y, hold_y) = ys.split_at(split);
        let eval_seed: u64 = rng.gen();
        let train_seed: u64 = rng.gen();

        // Fault: a concurrent operator redeploys the live artifact right
        // under the cycle (registry-swap-under-load).
        if hooks.swap_under_load(cycle) {
            if let Ok(live) = shared.registry.get(name) {
                let _ = shared.promote(name, CompiledModel::clone(live.model()));
            }
        }

        // 2. Post-promotion regression check on the *fresh* holdout: if
        // the live model has regressed below the floor and a previous
        // version exists, roll back within this cycle.
        let live_entry = match shared.registry.get(name) {
            Ok(entry) => entry,
            Err(_) => break,
        };
        let live_accuracy = live_entry
            .model()
            .evaluate_accuracy(hold_x, hold_y, &eval_exec, eval_seed)
            .unwrap_or(0.0);
        if live_accuracy < config.rollback_min_accuracy
            && shared.registry.previous_version(name).is_some()
        {
            if let Ok(version) = shared.rollback_model(name) {
                current = last_good.clone();
                push_cycle(
                    &mut cycles,
                    CycleReport {
                        cycle,
                        live_accuracy,
                        candidate_accuracy: None,
                        shadow: None,
                        outcome: CycleOutcome::RolledBack { version },
                    },
                );
                cycle += 1;
                continue;
            }
        }

        // 3. Train the candidate — inside catch_unwind so a trainer panic
        // (a bug, or the injected fault) never takes down serving.
        let mut candidate = current.clone();
        let inject_panic = hooks.trainer_panic(cycle);
        let epochs = config.epochs_per_cycle;
        let trained = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected trainer panic (fault schedule)");
            }
            let mut train_rng = StdRng::seed_from_u64(train_seed);
            trainer.fit_incremental(&mut candidate, train_x, train_y, epochs, &mut train_rng)
        }));
        let record = |candidate_accuracy: Option<f64>,
                      shadow: Option<ShadowReport>,
                      outcome: CycleOutcome| CycleReport {
            cycle,
            live_accuracy,
            candidate_accuracy,
            shadow,
            outcome,
        };
        match trained {
            Err(_) => {
                shared.stats.learner_panics.inc();
                push_cycle(
                    &mut cycles,
                    record(None, None, CycleOutcome::TrainerPanicked),
                );
                cycle += 1;
                continue;
            }
            Ok(Err(_)) => {
                shared.stats.candidates_rejected.inc();
                push_cycle(&mut cycles, record(None, None, CycleOutcome::TrainFailed));
                cycle += 1;
                continue;
            }
            Ok(Ok(_)) => {}
        }

        // Faults that corrupt the trained candidate before validation.
        if hooks.poison(cycle) {
            if let Ok(params) = candidate.class_params_mut(0) {
                if let Some(v) = params.first_mut() {
                    *v = f64::NAN;
                }
            }
        }
        if hooks.corrupt(cycle) {
            // All-zero parameters leave every class state identical, so
            // predictions collapse to class 0 — a deterministic accuracy
            // crater that still compiles, warms and serves.
            for class in 0..candidate.num_classes() {
                if let Ok(params) = candidate.class_params_mut(class) {
                    params.iter_mut().for_each(|v| *v = 0.0);
                }
            }
        }

        // 4. Validate: non-finite parameters never reach compilation.
        let finite = (0..candidate.num_classes()).all(|c| {
            candidate
                .class_params(c)
                .map(|p| p.iter().all(|v| v.is_finite()))
                .unwrap_or(false)
        });
        if !finite {
            shared.stats.candidates_rejected.inc();
            push_cycle(
                &mut cycles,
                record(None, None, CycleOutcome::RejectedValidation),
            );
            cycle += 1;
            continue;
        }

        // 5. Compile (with injectable stall / failure).
        if let Some(ms) = hooks.slow_compile_ms(cycle) {
            std::thread::sleep(Duration::from_millis(ms));
        }
        let compiled = if hooks.compile_fail(cycle) {
            None
        } else {
            CompiledModel::compile(&candidate, trainer.estimator.clone()).ok()
        };
        let Some(compiled) = compiled else {
            shared.stats.candidates_rejected.inc();
            push_cycle(
                &mut cycles,
                record(None, None, CycleOutcome::RejectedCompile),
            );
            cycle += 1;
            continue;
        };

        // 6. Accuracy gate on the holdout.
        let candidate_accuracy = compiled
            .evaluate_accuracy(hold_x, hold_y, &eval_exec, eval_seed)
            .unwrap_or(0.0);
        let bypass = hooks.bypass_gate(cycle);
        if !bypass
            && (candidate_accuracy < config.promote_min_accuracy
                || candidate_accuracy + config.accuracy_tolerance < live_accuracy)
        {
            shared.stats.candidates_rejected.inc();
            push_cycle(
                &mut cycles,
                record(
                    Some(candidate_accuracy),
                    None,
                    CycleOutcome::RejectedAccuracy {
                        candidate: candidate_accuracy,
                        live: live_accuracy,
                    },
                ),
            );
            cycle += 1;
            continue;
        }

        // 7. Shadow-evaluate on mirrored live traffic.
        let mut shadow_report = None;
        if config.min_shadow_requests > 0 {
            if shared
                .install_shadow(name, compiled.clone(), config.shadow_rate, cycle)
                .is_ok()
            {
                let deadline = Instant::now() + config.shadow_wait;
                while !stop.load(Ordering::Relaxed) && Instant::now() < deadline {
                    if let Some(report) = shared.shadow_report() {
                        if report.requests + report.failures >= config.min_shadow_requests {
                            break;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            shadow_report = shared.take_shadow();
            if !bypass {
                let report = shadow_report.clone().unwrap_or_else(|| ShadowReport {
                    model: name.to_string(),
                    tag: cycle,
                    requests: 0,
                    batches: 0,
                    failures: 0,
                    agreements: 0,
                    live_latency: Default::default(),
                    candidate_latency: Default::default(),
                });
                if report.failures > 0 {
                    shared.stats.candidates_rejected.inc();
                    push_cycle(
                        &mut cycles,
                        record(
                            Some(candidate_accuracy),
                            Some(report.clone()),
                            CycleOutcome::RejectedShadowFailures {
                                failures: report.failures,
                            },
                        ),
                    );
                    cycle += 1;
                    continue;
                }
                if report.requests < config.min_shadow_requests {
                    shared.stats.candidates_rejected.inc();
                    push_cycle(
                        &mut cycles,
                        record(
                            Some(candidate_accuracy),
                            Some(report.clone()),
                            CycleOutcome::ShadowStarved {
                                requests: report.requests,
                            },
                        ),
                    );
                    cycle += 1;
                    continue;
                }
                let p99_ratio = report.p99_ratio();
                if p99_ratio > config.max_p99_ratio {
                    shared.stats.candidates_rejected.inc();
                    push_cycle(
                        &mut cycles,
                        record(
                            Some(candidate_accuracy),
                            Some(report),
                            CycleOutcome::RejectedLatency { p99_ratio },
                        ),
                    );
                    cycle += 1;
                    continue;
                }
            }
        }

        // 8. Promote: warm → atomic hot-swap → drain old.
        match shared.promote(name, compiled) {
            Ok(version) => {
                last_good = std::mem::replace(&mut current, candidate);
                push_cycle(
                    &mut cycles,
                    record(
                        Some(candidate_accuracy),
                        shadow_report,
                        CycleOutcome::Promoted { version },
                    ),
                );
            }
            Err(_) => {
                shared.stats.candidates_rejected.inc();
                push_cycle(
                    &mut cycles,
                    record(
                        Some(candidate_accuracy),
                        shadow_report,
                        CycleOutcome::RejectedDeploy,
                    ),
                );
            }
        }
        cycle += 1;
    }

    OnlineReport { cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{Fault, FaultPlan};
    use crate::runtime::{ServeConfig, ServeRuntime};
    use quclassi::model::QuClassiConfig;
    use quclassi::swap_test::FidelityEstimator;
    use quclassi::trainer::TrainingConfig;
    use quclassi_sim::batch::BatchExecutor;

    /// An infinite, seeded two-cluster stream: class 0 near 0.25, class 1
    /// near 0.75, 4 features.
    fn toy_stream(seed: u64) -> impl Iterator<Item = (Vec<f64>, usize)> + Send + 'static {
        let mut rng = StdRng::seed_from_u64(seed);
        std::iter::from_fn(move || {
            let label = rng.gen_range(0..2usize);
            let centre: f64 = if label == 0 { 0.25 } else { 0.75 };
            let x: Vec<f64> = (0..4)
                .map(|_| (centre + rng.gen_range(-0.15_f64..0.15)).clamp(0.0, 1.0))
                .collect();
            Some((x, label))
        })
    }

    fn base_model(seed: u64) -> QuClassiModel {
        let mut rng = StdRng::seed_from_u64(seed);
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap()
    }

    fn quick_trainer() -> Trainer {
        Trainer::new(
            TrainingConfig {
                epochs: 1,
                learning_rate: 0.2,
                ..Default::default()
            },
            FidelityEstimator::analytic(),
        )
    }

    fn trafficless_config(max_cycles: u64) -> OnlineConfig {
        OnlineConfig {
            window: 24,
            epochs_per_cycle: 2,
            min_shadow_requests: 0, // no live traffic in unit tests
            promote_min_accuracy: 0.7,
            accuracy_tolerance: 1.0, // accuracy floor only
            rollback_min_accuracy: 0.0,
            max_cycles: Some(max_cycles),
            seed: 5,
            ..Default::default()
        }
    }

    fn runtime_with(name: &str, model: &QuClassiModel) -> ServeRuntime {
        let rt =
            ServeRuntime::start(ServeConfig::default(), BatchExecutor::single_threaded(0)).unwrap();
        let compiled = CompiledModel::compile(model, FidelityEstimator::analytic()).unwrap();
        rt.deploy(name, compiled).unwrap();
        rt
    }

    #[test]
    fn config_validation_and_env_contract() {
        assert!(OnlineConfig::default().validate().is_ok());
        let bad = OnlineConfig {
            window: 1,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = OnlineConfig {
            shadow_rate: 0.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = OnlineConfig {
            holdout_fraction: 1.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn learner_trains_and_promotes_through_the_gate() {
        let base = base_model(1);
        let rt = runtime_with("m", &base);
        let learner = OnlineLearner::start(
            &rt,
            "m",
            base,
            quick_trainer(),
            toy_stream(7),
            trafficless_config(4),
        )
        .unwrap();
        // max_cycles bounds the run; join() waits for it to finish.
        let report = learner.join();
        assert_eq!(report.cycles.len(), 4);
        assert!(
            report.promotions() >= 1,
            "separable clusters should promote at least once: {:?}",
            report.cycles
        );
        let version = rt.registry().active_version("m").unwrap();
        assert!(version >= 2, "promotion must advance the version");
        let m = rt.metrics();
        assert_eq!(m.train_cycles, 4);
        assert_eq!(m.promotions, 1 + report.promotions());
        rt.shutdown();
    }

    #[test]
    fn unknown_model_is_rejected_at_start() {
        let base = base_model(1);
        let rt = runtime_with("m", &base);
        let err = OnlineLearner::start(
            &rt,
            "ghost",
            base,
            quick_trainer(),
            toy_stream(7),
            trafficless_config(1),
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.kind(), "unknown_model");
        rt.shutdown();
    }

    #[test]
    fn trainer_panic_is_survived_and_counted() {
        let base = base_model(2);
        let rt = runtime_with("m", &base);
        let plan = FaultPlan::new().inject(0, Fault::TrainerPanic);
        let learner = OnlineLearner::start_with_faults(
            &rt,
            "m",
            base,
            quick_trainer(),
            toy_stream(8),
            trafficless_config(3),
            plan,
        )
        .unwrap();
        let report = learner.join();
        assert_eq!(report.outcome_at(0), Some(&CycleOutcome::TrainerPanicked));
        assert_eq!(report.panics(), 1);
        // The learner kept cycling and can still promote afterwards.
        assert!(report.promotions() >= 1, "cycles: {:?}", report.cycles);
        let m = rt.metrics();
        assert_eq!(m.learner_panics, 1);
        // The runtime is fully alive after the panic.
        let client = rt.client();
        assert!(client.predict("m", &[0.3; 4]).is_ok());
        rt.shutdown();
    }

    #[test]
    fn poisoned_and_failing_candidates_never_reach_the_registry() {
        let base = base_model(3);
        let rt = runtime_with("m", &base);
        let plan = FaultPlan::new()
            .inject(0, Fault::PoisonCandidate)
            .inject(1, Fault::CompileFail);
        let learner = OnlineLearner::start_with_faults(
            &rt,
            "m",
            base,
            quick_trainer(),
            toy_stream(9),
            trafficless_config(2),
            plan,
        )
        .unwrap();
        let report = learner.join();
        assert_eq!(
            report.outcome_at(0),
            Some(&CycleOutcome::RejectedValidation)
        );
        assert_eq!(report.outcome_at(1), Some(&CycleOutcome::RejectedCompile));
        // Neither candidate was deployed.
        assert_eq!(rt.registry().active_version("m"), Some(1));
        let m = rt.metrics();
        assert_eq!(m.candidates_rejected, 2);
        assert_eq!(m.promotions, 1, "only the initial deploy");
        rt.shutdown();
    }
}
