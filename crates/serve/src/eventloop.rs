//! The readiness-driven event-loop TCP frontend.
//!
//! [`WireServer`] serves the wire protocol from a fixed set of **shards**
//! — epoll loops on dedicated threads — instead of one thread per
//! connection. Each shard owns a disjoint subset of the connections:
//! nonblocking sockets, a per-connection [`FrameDecoder`] assembling
//! requests from whatever byte chunks the network delivers, and a
//! per-connection output buffer drained as the socket accepts bytes. Ten
//! thousand mostly-idle connections cost ten thousand *registrations*,
//! not ten thousand stacks.
//!
//! ## Anatomy of a shard
//!
//! ```text
//!            ┌──────────────────────── shard 0 ───────────────────────┐
//!  accept →  │ listener ─┐                                            │
//!            │           ├─ epoll_wait ─ readable conns → FrameDecoder│
//!            │ waker ────┘        │                          │        │
//!            └─────────│──────────│──────────────────────────│────────┘
//!                      │          │ control ops: answered    │ predict:
//!   completions and    │          │ in-loop, in order        │ submit_with_notifier
//!   inbox handoffs     │          ▼                          ▼
//!   fire the eventfd ──┴── out-buffers ◀── responses ◀── micro-batching
//!   waker                  (flushed as                   scheduler
//!                           sockets drain)          (shared, all shards)
//! ```
//!
//! Shard 0 additionally owns the listener: it accepts, enforces the
//! connection cap (over-cap peers get the retryable `saturated` refusal,
//! with delivery failures counted — see
//! `refuse_stream` in [`wire`](crate::wire)), and deals accepted
//! sockets round-robin to all shards through mutex-protected inboxes,
//! waking the target shard's eventfd.
//!
//! ## Multiplexing
//!
//! Control ops are answered synchronously inside the loop. A predict
//! request is submitted to the scheduler with a completion notifier that
//! fires the shard's waker; the loop keeps serving other sockets, and
//! when the waker fires it collects every completed prediction
//! ([`PendingPrediction::take_if_ready`]), stamps each response with its
//! request's echoed `"id"`, and enqueues it on the owning connection —
//! which is how one connection can have many predictions in flight and
//! receive responses out of submission order (the `"id"`, not arrival
//! order, pairs them). A connection that disappears mid-flight is handled
//! by generation tags: each adopted socket gets a fresh generation, and a
//! completion whose slot generation no longer matches is dropped instead
//! of being delivered to an unrelated peer that reused the slot.
//!
//! ## Deadlines without per-socket timers
//!
//! The kernel's `SO_RCVTIMEO`/`SO_SNDTIMEO` only bound *blocking* calls,
//! so the loop enforces [`WireConfig`] deadlines itself: each connection
//! tracks its last read progress and last write progress, and a sweep
//! (quantised to a fraction of the shortest deadline, never more than
//! once per epoll wake) disconnects peers that stalled past their limit —
//! the same observable contract as the threaded server's socket
//! deadlines, at O(connections / sweep-interval) cost instead of one
//! timer per socket.
//!
//! Shutdown is deterministic: every shard parks in `epoll_wait` on its
//! eventfd waker, and [`WireServer::shutdown`] fires them all.

use crate::error::ServeError;
use crate::json::Json;
use crate::metrics::Gauge;
use crate::runtime::{Client, CompletionNotifier, PendingPrediction, ResponseSlot};
use crate::wire::{
    append_frame, error_response, interpret, prediction_to_json, refuse_stream, trace_id_for,
    with_id, FrameDecoder, WireAction, WireConfig, ACCEPT_ERROR_BACKOFF, READ_CHUNK_BYTES,
};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const TOKEN_WAKER: usize = 0;
const TOKEN_LISTENER: usize = 1;
const TOKEN_BASE: usize = 2;

/// Above this much buffered-but-unsent output, a connection stops being
/// read from (its readable interest is dropped) until the peer drains —
/// per-connection write backpressure, so one slow reader cannot make the
/// server buffer unboundedly by pipelining requests it never collects.
const MAX_BUFFERED_OUT: usize = 1024 * 1024;

/// The event-loop wire server (see the module docs). API-compatible with
/// [`ThreadedWireServer`](crate::threaded::ThreadedWireServer): bind,
/// serve, `local_addr`, `shutdown`.
#[derive(Debug)]
pub struct WireServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    shards: Vec<ShardHandle>,
}

#[derive(Debug)]
struct ShardHandle {
    waker: Arc<poll::Waker>,
    thread: Option<JoinHandle<()>>,
}

/// A shard's public face: where shard 0 deposits accepted sockets, and
/// the waker that tells the owner to look.
#[derive(Debug)]
struct Mailbox {
    waker: Arc<poll::Waker>,
    inbox: Mutex<Vec<TcpStream>>,
}

impl WireServer {
    /// Binds `addr` and starts serving `client` with default knobs
    /// (including `WireConfig::default().shards` event-loop shards).
    pub fn start(addr: impl ToSocketAddrs, client: Client) -> Result<Self, ServeError> {
        Self::start_with(addr, client, WireConfig::default())
    }

    /// Binds `addr` and starts serving `client` with explicit knobs.
    pub fn start_with(
        addr: impl ToSocketAddrs,
        client: Client,
        config: WireConfig,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let open = Arc::new(AtomicUsize::new(0));

        // Build every shard's poller/waker up front so construction
        // errors surface from start_with, not from a dead thread.
        let mut pollers = Vec::with_capacity(config.shards);
        let mut mailboxes = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let poller = poll::Poller::new()?;
            let waker = Arc::new(poll::Waker::new()?);
            poller.register(waker.as_raw_fd(), TOKEN_WAKER, poll::Interest::READABLE)?;
            mailboxes.push(Arc::new(Mailbox {
                waker: Arc::clone(&waker),
                inbox: Mutex::new(Vec::new()),
            }));
            pollers.push(poller);
        }
        poller_register_listener(&pollers[0], &listener)?;

        let mailboxes: Arc<[Arc<Mailbox>]> = mailboxes.into();
        // Shard 0 takes the listener itself — the registered fd must stay
        // open for as long as the shard polls it.
        let mut listener = Some(listener);
        let mut shards = Vec::with_capacity(config.shards);
        for (index, poller) in pollers.into_iter().enumerate() {
            let waker = Arc::clone(&mailboxes[index].waker);
            let shard_connections = client.metrics_registry().gauge(&format!(
                "quclassi_wire_shard_connections{{shard=\"{index}\"}}"
            ));
            let shard = Shard {
                index,
                poller,
                mailboxes: Arc::clone(&mailboxes),
                listener: if index == 0 { listener.take() } else { None },
                next_peer: 0,
                client: client.clone(),
                config: config.clone(),
                shutdown: Arc::clone(&shutdown),
                open: Arc::clone(&open),
                conns: Vec::new(),
                free: Vec::new(),
                pending: Vec::new(),
                next_generation: 0,
                sweep_interval: sweep_interval(&config),
                last_sweep: Instant::now(),
                shard_connections,
            };
            let thread = std::thread::Builder::new()
                .name(format!("quclassi-wire-shard{index}"))
                .spawn(move || shard.run())
                .map_err(|e| ServeError::Io(format!("failed to spawn shard {index}: {e}")))?;
            shards.push(ShardHandle {
                waker,
                thread: Some(thread),
            });
        }
        Ok(WireServer {
            local_addr,
            shutdown,
            shards,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, closes every open connection, and joins every
    /// shard. Deterministic: each shard is parked in `epoll_wait` on its
    /// waker, so firing the wakers returns them all immediately.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.waker.wake();
        }
        for shard in &mut self.shards {
            if let Some(thread) = shard.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// How often the deadline sweep runs: a quarter of the shortest enabled
/// deadline, clamped to [10 ms, 1 s] — frequent enough that deadlines
/// fire within ~1.25× their nominal value, coarse enough that a shard
/// with 10k idle connections is not scanning them on every wake.
fn sweep_interval(config: &WireConfig) -> Option<Duration> {
    [config.read_timeout, config.write_timeout]
        .into_iter()
        .flatten()
        .min()
        .map(|t| (t / 4).clamp(Duration::from_millis(10), Duration::from_secs(1)))
}

#[cfg(unix)]
fn poller_register_listener(poller: &poll::Poller, listener: &TcpListener) -> std::io::Result<()> {
    use std::os::fd::AsRawFd;
    // std's TcpListener hardcodes a backlog of 128; a 10k-connection storm
    // overflows that in milliseconds and every dropped SYN costs the peer
    // a full retransmission timeout. Re-listen deeper (kernel-capped at
    // net.core.somaxconn); best-effort, the server works either way.
    let _ = poll::set_listener_backlog(listener.as_raw_fd(), 4096);
    poller.register(
        listener.as_raw_fd(),
        TOKEN_LISTENER,
        poll::Interest::READABLE,
    )
}

#[cfg(not(unix))]
fn poller_register_listener(_: &poll::Poller, _: &TcpListener) -> std::io::Result<()> {
    unreachable!("the poll shim already refused to construct on this target")
}

#[cfg(unix)]
fn stream_fd(stream: &TcpStream) -> std::os::fd::RawFd {
    use std::os::fd::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(not(unix))]
fn stream_fd(_: &TcpStream) -> std::os::fd::RawFd {
    unreachable!("the poll shim already refused to construct on this target")
}

/// One connection owned by a shard.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Buffered response bytes not yet accepted by the socket.
    out: Vec<u8>,
    /// Prefix of `out` already written.
    out_pos: usize,
    /// Interest currently registered with the poller.
    interest: poll::Interest,
    /// Tags in-flight predictions so a completion cannot be delivered to
    /// a different peer that reused this slot.
    generation: u64,
    /// Last time bytes arrived (read-idle deadline).
    last_read: Instant,
    /// Last time buffered output shrank (write-stall deadline).
    last_write: Instant,
    /// Close once `out` drains (set after a protocol error: the error
    /// frame should reach the peer, but framing cannot be resynchronised).
    closing: bool,
    /// Total response bytes ever enqueued on this connection (monotonic,
    /// unlike `out`, which is cleared on drain).
    queued_total: u64,
    /// Total response bytes the socket has accepted.
    written_total: u64,
    /// Prediction responses awaiting their write-completion stamp: once
    /// `written_total` reaches the recorded offset, the response's last
    /// byte hit the socket and its trace span is recorded. Offsets are
    /// enqueued in write order, so only the front is ever inspected.
    trace_writes: VecDeque<(u64, Instant, Arc<ResponseSlot>)>,
}

impl Conn {
    fn buffered_out(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Frames `payload` onto the output buffer, tracking the monotonic
    /// enqueued-byte offset for write-completion stamping.
    fn enqueue_frame(&mut self, payload: &[u8]) {
        append_frame(&mut self.out, payload);
        self.queued_total += 4 + payload.len() as u64;
    }
}

/// A prediction in flight: which connection (and which tenancy of that
/// slot) gets the response, and under which echoed id.
struct PendingEntry {
    slot: usize,
    generation: u64,
    id: Option<Json>,
    handle: PendingPrediction,
}

struct Shard {
    index: usize,
    poller: poll::Poller,
    /// Every shard's waker+inbox; `mailboxes[index]` is this shard's own.
    mailboxes: Arc<[Arc<Mailbox>]>,
    /// Shard 0 owns the listener.
    listener: Option<TcpListener>,
    next_peer: usize,
    client: Client,
    config: WireConfig,
    shutdown: Arc<AtomicBool>,
    /// Open connections across *all* shards (the connection-cap counter).
    open: Arc<AtomicUsize>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    pending: Vec<PendingEntry>,
    next_generation: u64,
    sweep_interval: Option<Duration>,
    last_sweep: Instant,
    /// `quclassi_wire_shard_connections{shard="N"}`: connections this
    /// shard currently owns.
    shard_connections: Gauge,
}

impl Shard {
    /// Mirrors the cross-shard open-connection count into the
    /// `quclassi_wire_connections` gauge (called after every change to
    /// `open`; last writer wins, which converges on the true count).
    fn sync_open_gauge(&self) {
        self.client
            .runtime_stats()
            .wire_connections
            .set(self.open.load(Ordering::Relaxed) as u64);
    }
}

impl Shard {
    fn run(mut self) {
        let mut events = poll::Events::with_capacity(256);
        let mut scratch = vec![0u8; READ_CHUNK_BYTES];
        let mut io_ready: Vec<(usize, bool, bool, bool)> = Vec::new();
        loop {
            if self.poller.wait(&mut events, self.sweep_interval).is_err() {
                // The poller fd itself failed; nothing to serve from.
                break;
            }
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let mut woken = false;
            let mut accept_ready = false;
            io_ready.clear();
            for event in events.iter() {
                match event.token() {
                    TOKEN_WAKER => woken = true,
                    TOKEN_LISTENER => accept_ready = true,
                    token => io_ready.push((
                        token - TOKEN_BASE,
                        event.is_readable(),
                        event.is_writable(),
                        event.is_error() || event.is_hangup(),
                    )),
                }
            }
            if woken {
                self.mailboxes[self.index].waker.drain();
                self.adopt_handoffs();
                self.collect_completions();
            }
            if accept_ready {
                self.accept_ready();
            }
            for &(slot, readable, writable, err_hup) in &io_ready {
                self.handle_io(slot, readable, writable, err_hup, &mut scratch);
            }
            self.maybe_sweep();
        }
        // Teardown: every owned connection closes (streams drop) and
        // leaves the cap; in-flight predictions resolve into dropped
        // slots (the scheduler still answers them — nobody is listening).
        let drained = self.conns.drain(..).flatten().count();
        for _ in 0..drained {
            self.open.fetch_sub(1, Ordering::Relaxed);
            self.shard_connections.sub(1);
        }
        self.sync_open_gauge();
    }

    /// Shard 0 only: accept until the listener runs dry, refusing over-cap
    /// peers and dealing admitted sockets round-robin across all shards.
    fn accept_ready(&mut self) {
        let Some(listener) = &self.listener else {
            return;
        };
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // fd exhaustion (EMFILE/ENFILE) or similar: the
                    // pending connection keeps the listener readable, so
                    // breaking straight back into a level-triggered wait
                    // would spin at 100% CPU. Stall this shard briefly
                    // instead; its established connections resume after
                    // the backoff, and accepting resumes when fds free.
                    std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                    break;
                }
            };
            let open_now = self.open.load(Ordering::Relaxed);
            if open_now >= self.config.max_connections {
                // The freshly accepted stream is still blocking, so the
                // refusal write is a plain bounded syscall.
                refuse_stream(
                    stream,
                    open_now,
                    self.config.max_connections,
                    self.config.write_timeout,
                    self.client.runtime_stats(),
                );
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            // Responses are small frames; without nodelay each one can
            // stall ~40 ms behind Nagle + delayed ACK.
            let _ = stream.set_nodelay(true);
            self.open.fetch_add(1, Ordering::Relaxed);
            self.sync_open_gauge();
            let peer = self.next_peer;
            self.next_peer = (self.next_peer + 1) % self.mailboxes.len();
            self.mailboxes[peer]
                .inbox
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(stream);
            if peer != self.index {
                self.mailboxes[peer].waker.wake();
            }
        }
        // Sockets dealt to ourselves skip the waker round-trip.
        self.adopt_handoffs();
    }

    /// Registers every socket deposited in this shard's inbox.
    fn adopt_handoffs(&mut self) {
        let streams = std::mem::take(
            &mut *self.mailboxes[self.index]
                .inbox
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for stream in streams {
            let slot = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.conns.len() - 1
            });
            if self
                .poller
                .register(
                    stream_fd(&stream),
                    TOKEN_BASE + slot,
                    poll::Interest::READABLE,
                )
                .is_err()
            {
                self.free.push(slot);
                self.open.fetch_sub(1, Ordering::Relaxed);
                self.sync_open_gauge();
                continue;
            }
            self.next_generation += 1;
            self.shard_connections.add(1);
            let now = Instant::now();
            self.conns[slot] = Some(Conn {
                stream,
                decoder: FrameDecoder::new(),
                out: Vec::new(),
                out_pos: 0,
                interest: poll::Interest::READABLE,
                generation: self.next_generation,
                last_read: now,
                last_write: now,
                closing: false,
                queued_total: 0,
                written_total: 0,
                trace_writes: VecDeque::new(),
            });
        }
    }

    /// Delivers every completed prediction to its (still-live, same
    /// tenancy) connection.
    fn collect_completions(&mut self) {
        let mut touched = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            let Some(result) = self.pending[i].handle.take_if_ready() else {
                i += 1;
                continue;
            };
            let entry = self.pending.swap_remove(i);
            let response = match result {
                Ok(response) => prediction_to_json(&response),
                Err(e) => error_response(&e),
            };
            let response = with_id(response, entry.id);
            if let Some(conn) = self.conns.get_mut(entry.slot).and_then(Option::as_mut) {
                if conn.generation == entry.generation {
                    conn.enqueue_frame(response.to_string().as_bytes());
                    // The write stage runs from here (response enqueued)
                    // to the moment the socket accepts its last byte.
                    conn.trace_writes.push_back((
                        conn.queued_total,
                        Instant::now(),
                        entry.handle.trace_slot(),
                    ));
                    touched.push(entry.slot);
                }
            }
        }
        for slot in touched {
            self.flush(slot);
        }
    }

    /// Services one connection's readiness events.
    fn handle_io(
        &mut self,
        slot: usize,
        readable: bool,
        writable: bool,
        err_hup: bool,
        scratch: &mut [u8],
    ) {
        if self.conns.get(slot).and_then(Option::as_ref).is_none() {
            return; // closed earlier this iteration (e.g. by the sweep)
        }
        if err_hup && !readable {
            // Hard error, or a hangup with nothing left to read. (A peer
            // that half-closed after sending still gets its requests
            // served: readable stays set until we drain the EOF.)
            self.close(slot);
            return;
        }
        if writable {
            self.flush(slot);
        }
        if readable {
            self.read_ready(slot, scratch);
        }
    }

    /// Reads until the socket runs dry (or backpressure pauses reading),
    /// interpreting every completed frame.
    fn read_ready(&mut self, slot: usize, scratch: &mut [u8]) {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if conn.closing || conn.buffered_out() > MAX_BUFFERED_OUT {
                // Backpressure: stop consuming requests until the peer
                // drains responses. Level-triggered epoll re-reports the
                // pending bytes once readable interest is restored.
                self.update_interest(slot);
                return;
            }
            let n = match conn.stream.read(scratch) {
                Ok(0) => {
                    self.close(slot);
                    return;
                }
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            };
            conn.last_read = Instant::now();
            if let Err(e) = conn.decoder.extend(&scratch[..n]) {
                // Oversized frame claim: answer why, then close once the
                // error frame is out (framing is now desynchronised).
                let response = error_response(&e).to_string();
                conn.enqueue_frame(response.as_bytes());
                conn.closing = true;
                break;
            }
            let mut frames = Vec::new();
            while let Some(frame) = conn.decoder.next_frame() {
                frames.push(frame);
            }
            for frame in frames {
                self.handle_frame(slot, &frame);
            }
        }
        self.flush(slot);
    }

    /// Interprets one complete request frame on `slot`.
    fn handle_frame(&mut self, slot: usize, frame: &[u8]) {
        match interpret(frame, &self.client) {
            WireAction::Respond(response) => {
                if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                    conn.enqueue_frame(response.to_string().as_bytes());
                }
            }
            WireAction::Predict {
                model,
                features,
                id,
            } => {
                let waker = Arc::clone(&self.mailboxes[self.index].waker);
                let notifier: CompletionNotifier = Arc::new(move || waker.wake());
                match self.client.submit_wire(
                    &model,
                    &features,
                    Some(notifier),
                    trace_id_for(id.as_ref()),
                ) {
                    Ok(handle) => {
                        let generation = match self.conns.get(slot).and_then(Option::as_ref) {
                            Some(conn) => conn.generation,
                            None => return, // connection died mid-batch
                        };
                        self.pending.push(PendingEntry {
                            slot,
                            generation,
                            id,
                            handle,
                        });
                    }
                    Err(e) => {
                        // Admission errors (saturated, unknown model, bad
                        // features) answer immediately, id attached, and
                        // the connection lives on.
                        let response = with_id(error_response(&e), id);
                        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                            conn.enqueue_frame(response.to_string().as_bytes());
                        }
                    }
                }
            }
        }
    }

    /// Writes buffered output until the socket stops accepting, stamping
    /// the write stage of every prediction response whose last byte the
    /// socket accepted, then reconciles poller interest (and closes
    /// drained `closing` conns).
    fn flush(&mut self, slot: usize) {
        let mut finished: Vec<(Arc<ResponseSlot>, u64)> = Vec::new();
        let mut close_after = false;
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if conn.out_pos == conn.out.len() {
                conn.out.clear();
                conn.out_pos = 0;
                conn.last_write = Instant::now();
                close_after = conn.closing;
                break;
            }
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    close_after = true;
                    break;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    conn.written_total += n as u64;
                    conn.last_write = Instant::now();
                    while conn
                        .trace_writes
                        .front()
                        .is_some_and(|(target, _, _)| *target <= conn.written_total)
                    {
                        let (_, enqueued, response_slot) =
                            conn.trace_writes.pop_front().expect("front exists");
                        finished.push((response_slot, enqueued.elapsed().as_nanos() as u64));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    close_after = true;
                    break;
                }
            }
        }
        // Record outside the connection borrow: delivered responses keep
        // their spans even when the connection dies right after.
        for (response_slot, write_ns) in finished {
            self.client.finish_wire_write(&response_slot, write_ns);
        }
        if close_after {
            self.close(slot);
            return;
        }
        self.update_interest(slot);
    }

    /// Keeps the poller registration in line with what the connection can
    /// make progress on: writable only while output is buffered, readable
    /// only while below the output backpressure limit (and not closing).
    fn update_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let wants_read = !conn.closing && conn.buffered_out() <= MAX_BUFFERED_OUT;
        let wants_write = conn.buffered_out() > 0;
        let desired = match (wants_read, wants_write) {
            (true, true) => poll::Interest::BOTH,
            (true, false) => poll::Interest::READABLE,
            // A paused reader always has buffered output, so (false, _)
            // keeps writable interest — the drain is what resumes reading.
            (false, _) => poll::Interest::WRITABLE,
        };
        if desired != conn.interest
            && self
                .poller
                .modify(stream_fd(&conn.stream), TOKEN_BASE + slot, desired)
                .is_ok()
        {
            conn.interest = desired;
        }
    }

    /// Disconnects peers that stalled past their read/write deadline.
    /// Runs at most once per sweep interval regardless of wake frequency.
    fn maybe_sweep(&mut self) {
        let Some(interval) = self.sweep_interval else {
            return;
        };
        if self.last_sweep.elapsed() < interval {
            return;
        }
        self.last_sweep = Instant::now();
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_ref() else {
                continue;
            };
            let read_stalled = self
                .config
                .read_timeout
                .is_some_and(|t| now.duration_since(conn.last_read) > t);
            let write_stalled = conn.buffered_out() > 0
                && self
                    .config
                    .write_timeout
                    .is_some_and(|t| now.duration_since(conn.last_write) > t);
            if read_stalled || write_stalled {
                self.close(slot);
            }
        }
    }

    /// Releases a connection: poller registration, slot, cap count. The
    /// stream drops (closes) here; pending predictions for the slot are
    /// left to resolve and are discarded by the generation check, and
    /// undelivered responses' trace spans drop with the connection (an
    /// undelivered response has no write-stage completion to stamp).
    fn close(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let _ = self.poller.deregister(stream_fd(&conn.stream));
        drop(conn);
        self.free.push(slot);
        self.open.fetch_sub(1, Ordering::Relaxed);
        self.shard_connections.sub(1);
        self.sync_open_gauge();
    }
}
