//! The synchronisation shim: `std::sync` in real builds, the `interleave`
//! model checker's shadow types under `--cfg quclassi_model`.
//!
//! Every hand-rolled concurrent protocol in this crate — the seqlock
//! [`TraceRing`](crate::trace::TraceRing), the
//! [`LatencyHistogram`](crate::metrics::LatencyHistogram) counters, the
//! [`BoundedQueue`](crate::queue), the one-shot `ResponseSlot`, and the
//! hot-swap publication core in [`swap`](crate::swap) — imports its
//! primitives from here instead of `std::sync` directly (the workspace
//! linter enforces this). Normal builds see plain re-exports and compile to
//! byte-identical code; the `model_*` integration tests build with
//! `RUSTFLAGS="--cfg quclassi_model"` and get shadow types whose every
//! access is a schedule/visibility point for exhaustive exploration.
//!
//! Run the model suite with:
//! `RUSTFLAGS="--cfg quclassi_model" cargo test -p quclassi-serve --test 'model_*'`

#[cfg(not(quclassi_model))]
pub(crate) use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, Weak};

#[cfg(quclassi_model)]
pub(crate) use interleave::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, Weak};

/// Shim counterpart of [`std::sync::atomic`].
pub(crate) mod atomic {
    #[cfg(not(quclassi_model))]
    pub(crate) use std::sync::atomic::{fence, AtomicU64, Ordering};

    #[cfg(quclassi_model)]
    pub(crate) use interleave::sync::atomic::{fence, AtomicU64, Ordering};
}
