//! A minimal, dependency-free JSON value type for the wire protocol.
//!
//! The build environment is fully offline (no serde), and the protocol
//! needs only a small, predictable subset of JSON: finite numbers,
//! strings, booleans, null, arrays, and objects with *insertion-ordered*
//! keys (deterministic wire bytes for identical responses).
//!
//! Numbers round-trip exactly for the payloads that matter: Rust's `{}`
//! formatting of an `f64` is the shortest decimal string that parses back
//! to the identical bits, so fidelities and probabilities cross the wire
//! without widening the serving determinism guarantees.

use crate::error::ServeError;
use std::fmt;

/// Maximum nesting depth the parser accepts.
///
/// The parser is recursive-descent, so without this cap a deeply nested
/// array/object payload arriving over the TCP socket (`"[[[[…"` costs the
/// attacker two bytes per level) would overflow the handler thread's stack
/// and kill the serving process. The cap bounds recursion to a constant
/// far above anything the wire protocol emits (responses nest 3 deep) and
/// turns the attack into an ordinary non-retryable client-error response,
/// with the connection staying usable.
pub const MAX_PARSE_DEPTH: usize = 64;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (serialised via shortest-round-trip formatting).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds an array of numbers.
    pub fn nums(values: &[f64]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (one complete value, trailing whitespace
    /// allowed).
    pub fn parse(text: &str) -> Result<Json, ServeError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest representation that round-trips to the same
                    // bits; integers print without a decimal point and
                    // parse back identically.
                    write!(f, "{n}")
                } else {
                    // JSON has no NaN/∞; degrade explicitly instead of
                    // emitting an unparsable token.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> ServeError {
        ServeError::Protocol(format!("invalid JSON at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), ServeError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", expected as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, ServeError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{literal}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ServeError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.error(&format!(
                "nesting deeper than the {MAX_PARSE_DEPTH}-level limit"
            )));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.error(&format!("unexpected byte 0x{b:02x}"))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ServeError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ServeError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ServeError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the paired low
                                // surrogate escape.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // boundary math is always valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ServeError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    /// Strict JSON number grammar (RFC 8259 §6): `-?int(.frac)?(e±exp)?`
    /// with a non-empty integer part, no leading zeros, and at least one
    /// digit after any decimal point or exponent marker. Rust's
    /// `str::parse::<f64>` accepts a much wider grammar (`1.`, `1e`,
    /// `01`, `inf`…), so the shape is validated here byte-by-byte and the
    /// parse only converts.
    fn number(&mut self) -> Result<Json, ServeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0`, or a nonzero digit followed by any digits.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    return Err(self.error("number has a leading zero"));
                }
            }
            Some(b) if b.is_ascii_digit() => {
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("number is missing its integer part")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(self.error("number has no digits after the decimal point"));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(self.error("number has no digits in its exponent"));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let n = text
            .parse::<f64>()
            .map_err(|_| self.error(&format!("invalid number '{text}'")))?;
        // A syntactically valid literal can still overflow f64 (`1e400`
        // parses to +∞). `Json::Num` guarantees finiteness — an infinity
        // admitted here would silently serialise back out as `null` —
        // so magnitude overflow is a client error, not a value.
        if !n.is_finite() {
            return Err(self.error(&format!("number '{text}' overflows the finite f64 range")));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let value = Json::obj(vec![
            ("op", Json::str("predict")),
            ("model", Json::str("iris")),
            ("features", Json::nums(&[0.1, 0.25, 1.0, 0.0])),
            (
                "nested",
                Json::obj(vec![("ok", Json::Bool(true)), ("n", Json::Null)]),
            ),
        ]);
        let text = value.to_string();
        assert_eq!(Json::parse(&text).unwrap(), value);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -0.0,
            2.0f64.sqrt(),
            1e-300,
        ] {
            let text = Json::Num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via '{text}'");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let tricky = "quote \" backslash \\ newline \n tab \t unicode ψ∿ control \u{0001}";
        let text = Json::str(tricky).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), tricky);
        // Escaped-form inputs parse too (incl. surrogate pairs).
        assert_eq!(
            Json::parse(r#""a\u00e9b\ud83d\ude00c""#).unwrap(),
            Json::str("aéb😀c")
        );
    }

    #[test]
    fn malformed_documents_are_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "tru",
            "nul",
            "\"unterminated",
            "1.2.3",
            "[1] trailing",
            "{\"a\" 1}",
            "\"\\u12\"",
            "\"\\ud800x\"",
            "--1",
            "+1",
            "0x10",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn depth_limit_is_exact_and_covers_objects_and_mixed_nesting() {
        // Exactly at the cap parses; one deeper is rejected. The document
        // root sits at depth 0, so MAX_PARSE_DEPTH + 1 brackets fit.
        let at_cap = "[".repeat(MAX_PARSE_DEPTH + 1) + &"]".repeat(MAX_PARSE_DEPTH + 1);
        assert!(Json::parse(&at_cap).is_ok());
        let over = "[".repeat(MAX_PARSE_DEPTH + 2) + &"]".repeat(MAX_PARSE_DEPTH + 2);
        let err = Json::parse(&over).unwrap_err();
        assert_eq!(err.kind(), "protocol");
        assert!(!err.is_retryable(), "a malformed payload is a client error");
        // Object nesting hits the same cap.
        let objects =
            "{\"a\":".repeat(MAX_PARSE_DEPTH + 2) + "null" + &"}".repeat(MAX_PARSE_DEPTH + 2);
        assert!(Json::parse(&objects).is_err());
        // Mixed array/object nesting too.
        let mixed = "[{\"a\":".repeat((MAX_PARSE_DEPTH + 3) / 2)
            + "null"
            + &"}]".repeat((MAX_PARSE_DEPTH + 3) / 2);
        assert!(Json::parse(&mixed).is_err());
    }

    #[test]
    fn megabyte_scale_bracket_bombs_fail_fast_without_deep_recursion() {
        // 2 MiB of '[': the parser must bail at the depth cap (constant
        // stack), not recurse a million frames and overflow.
        let bomb = "[".repeat(2 * 1024 * 1024);
        assert!(Json::parse(&bomb).is_err());
        let bomb_obj = "{\"k\":".repeat(500_000) + "1";
        assert!(Json::parse(&bomb_obj).is_err());
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = Json::parse(r#"{"n": 3, "s": "x", "b": true, "a": [1,2]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("s").unwrap().as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn number_grammar_is_strict_json() {
        // Shapes Rust's f64 parser would happily accept but RFC 8259
        // forbids — each must come back as a non-retryable client error.
        for bad in [
            "1.", "1e", "1E", "1e+", "1e-", "01", "-01", "007", "0.e1", ".5", "-.5", "-", "+1",
            "1.e3", "00",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert_eq!(err.kind(), "protocol", "should reject {bad:?}");
            assert!(!err.is_retryable(), "{bad:?} is a client error");
        }
        // Exact grammar boundaries that MUST parse.
        let accepted: [(&str, f64); 8] = [
            ("0", 0.0),
            ("-0", -0.0),
            ("0.5", 0.5),
            ("0e0", 0.0),
            ("1e3", 1000.0),
            ("1E+3", 1000.0),
            ("10", 10.0),
            ("-1.25e-2", -0.0125),
        ];
        for (good, want) in accepted {
            let n = Json::parse(good).unwrap().as_f64().unwrap();
            assert_eq!(n.to_bits(), want.to_bits(), "{good}");
        }
        // Strictness applies inside containers too.
        assert!(Json::parse("[1, 01]").is_err());
        assert!(Json::parse("{\"a\": 2.}").is_err());
    }

    #[test]
    fn overflowing_literals_are_rejected_not_admitted_as_infinity() {
        // `"1e400".parse::<f64>()` is Ok(inf); admitting it would let a
        // client smuggle a non-finite value past every downstream
        // validator (and it would re-serialise as `null`).
        for bad in ["1e400", "-1e400", "1e309", "-1.8e308", "123456789e999"] {
            let err = Json::parse(bad).unwrap_err();
            assert_eq!(err.kind(), "protocol", "should reject {bad:?}");
            assert!(!err.is_retryable());
        }
        // The finite extremes still pass, bit-exactly.
        assert_eq!(
            Json::parse("1.7976931348623157e308")
                .unwrap()
                .as_f64()
                .unwrap(),
            f64::MAX
        );
        assert_eq!(
            Json::parse("-1.7976931348623157e308")
                .unwrap()
                .as_f64()
                .unwrap(),
            f64::MIN
        );
        // Underflow toward zero is not overflow: tiny magnitudes round to
        // (sub)normals or zero, which are finite and admissible.
        assert_eq!(Json::parse("1e-400").unwrap().as_f64().unwrap(), 0.0);
        assert_eq!(
            Json::parse("5e-324").unwrap().as_f64().unwrap(),
            f64::from_bits(1)
        );
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
