//! Serving metrics: the central registry, lock-free latency histograms,
//! per-model counters, and the runtime-wide snapshot.
//!
//! Everything on the hot path is a relaxed atomic — recording a latency or
//! bumping a counter never takes a lock, so metrics cannot perturb the
//! batching behaviour they measure. Quantiles come from a fixed
//! power-of-two-bucketed histogram: each observation lands in bucket
//! `floor(log2(ns))` (zero allocation, O(64) snapshot cost), and read-outs
//! interpolate linearly *within* the landing bucket by the requested
//! rank's position among the bucket's entries. The raw bucketing alone is
//! only exact to within a factor of 2, which made distinct load points
//! report byte-identical p50 and p99 (e.g. 11.6/11.6 µs) whenever both
//! ranks landed in the same bucket; the sub-bucket interpolation keeps the
//! lock-free recording path untouched while separating quantiles that
//! differ in rank, not just in bucket. Exact lock-free min/max accompany
//! every histogram, and quantile read-outs are clamped into `[min, max]`
//! so interpolation can never report a value outside what was observed.
//!
//! ## The registry
//!
//! [`MetricsRegistry`] is the single namespace every serving metric lives
//! in: counters, gauges, float gauges, and histograms are registered once
//! by name and handed back as cheap cloneable handles ([`Counter`],
//! [`Gauge`], [`FloatGauge`], `Arc<`[`LatencyHistogram`]`>`) that write
//! with relaxed atomics. [`MetricsRegistry::expose`] renders the whole
//! namespace as Prometheus-style text so it can be scraped or diffed
//! without JSON parsing. Names follow
//! `quclassi_<area>_<metric>[_total|_ns]` — `_total` for monotone
//! counters, `_ns` for nanosecond histograms, labels in `{key="value"}`
//! form for per-shard / per-model series.

use crate::mutation;
use crate::quclassi_sync::atomic::{AtomicU64, Ordering};
use crate::quclassi_sync::{Arc, Mutex};

/// Number of histogram buckets: one per possible `floor(log2)` of a `u64`
/// nanosecond count.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free latency histogram with power-of-two buckets and exact
/// min/max tracking.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    total_ns: AtomicU64,
    /// Smallest observation; `u64::MAX` until the first record.
    min_ns: AtomicU64,
    /// Largest observation; 0 until the first record.
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `ns` nanoseconds.
    ///
    /// Write order is load-bearing for [`LatencyHistogram::snapshot`]:
    /// the bucket count is bumped *first* and the nanosecond sum is
    /// published *second* with `Release`. A snapshot that observes an
    /// observation's nanoseconds is thereby guaranteed to also observe
    /// its count, so a concurrent snapshot's mean can only be skewed
    /// *downward* (extra count, missing nanoseconds), never upward.
    pub fn record_ns(&self, ns: u64) {
        let bucket = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, mutation::histogram_total());
    }

    /// An immutable copy of the current counts.
    ///
    /// The nanosecond sum is read *before* the bucket counts (the mirror
    /// of [`LatencyHistogram::record_ns`]'s write order, paired via
    /// `Acquire`/`Release` on `total_ns`): every observation whose
    /// nanoseconds made it into the sum has its count visible by the time
    /// the buckets are read. Racing recorders can therefore only leave a
    /// snapshot with *more* counts than summed nanoseconds — the reported
    /// mean is exact in quiescence and a lower bound under concurrency,
    /// never inflated.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let total_ns = self.total_ns.load(Ordering::Acquire);
        let mut counts = [0u64; HISTOGRAM_BUCKETS];
        for (slot, c) in counts.iter_mut().zip(self.counts.iter()) {
            *slot = c.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            total_ns,
            min_ns: self.min_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`], with quantile read-outs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; HISTOGRAM_BUCKETS],
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; HISTOGRAM_BUCKETS],
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all recorded observations, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.total_ns
    }

    /// Smallest recorded observation in nanoseconds (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.min_ns == u64::MAX {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded observation in nanoseconds (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Per-bucket counts, for exposition rendering.
    pub(crate) fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Mean observation in nanoseconds (0.0 when empty). The mean is exact
    /// — it is computed from the true sum, not from bucket midpoints.
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_ns as f64 / n as f64
        }
    }

    /// The approximate `q`-quantile in nanoseconds (`q` clamped to
    /// `[0, 1]`); 0 when the histogram is empty.
    ///
    /// The observation with rank `ceil(q·n)` is located in its log2
    /// bucket, then interpolated linearly across the bucket's span
    /// `[2^b, 2^(b+1))` by the rank's midpoint position among the
    /// bucket's entries (the entries are assumed uniformly spread across
    /// the span). Two quantiles whose ranks differ therefore read out
    /// differently even when both land in the same bucket — the raw
    /// bucket midpoint used to collapse them into identical values.
    /// Interpolated values are clamped into the exact observed
    /// `[min, max]` range, so the worst-case read-out (p100) is the true
    /// maximum rather than a bucket-granular estimate.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        // The extreme ranks are tracked exactly — no interpolation needed.
        if self.min_ns <= self.max_ns {
            if rank == 1 {
                return self.min_ns;
            }
            if rank == n {
                return self.max_ns;
            }
        }
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                // Rank position among this bucket's entries, midpoint
                // rule: the k-th of c entries sits at (k − ½)/c of the
                // bucket span. Bucket b spans [2^b, 2^(b+1)); the span is
                // narrowed to the observed [min, max] range where they
                // overlap (the buckets holding the extremes), so quantiles
                // stay distinct even when every observation shares one
                // bucket instead of collapsing to the clamped maximum.
                let into = rank - (seen - c);
                let mut low = (1u64 << bucket) as f64;
                let mut high = low * 2.0;
                if self.min_ns <= self.max_ns {
                    low = low.max(self.min_ns as f64);
                    high = high.min(self.max_ns as f64 + 1.0).max(low);
                }
                let position = (into as f64 - 0.5) / c as f64;
                return self.clamp_to_observed((low + (high - low) * position).round() as u64);
            }
        }
        u64::MAX
    }

    /// Clamps an interpolated quantile into the observed `[min, max]`
    /// range. Skipped when the tracked extremes are inconsistent
    /// (`min > max`), which happens transiently when a snapshot races a
    /// recorder between its count and min/max updates.
    fn clamp_to_observed(&self, ns: u64) -> u64 {
        if self.min_ns <= self.max_ns {
            ns.clamp(self.min_ns, self.max_ns)
        } else {
            ns
        }
    }

    /// Median latency in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.quantile_ns(0.50) as f64 / 1_000.0
    }

    /// 90th-percentile latency in microseconds.
    pub fn p90_us(&self) -> f64 {
        self.quantile_ns(0.90) as f64 / 1_000.0
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.quantile_ns(0.99) as f64 / 1_000.0
    }
}

/// A monotonically increasing counter handle.
///
/// Cheap to clone (an `Arc` around one atomic); all writes are relaxed
/// single instructions. Handed out by [`MetricsRegistry::counter`] — or
/// free-standing via `Counter::default()` for unregistered use in tests.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can go up and down (queue depth, open
/// connections, in-flight requests).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrements by `n`, saturating at zero (a racing double-decrement
    /// must read as an empty gauge, not wrap to 2^64).
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an `f64` (accuracies, ratios), stored as raw bits in
/// one atomic so reads and writes stay lock-free and tear-free.
#[derive(Clone, Debug)]
pub struct FloatGauge(Arc<AtomicU64>);

impl Default for FloatGauge {
    fn default() -> Self {
        FloatGauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl FloatGauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// One registered metric.
#[derive(Debug)]
struct Metric {
    name: String,
    kind: MetricKind,
}

#[derive(Debug)]
enum MetricKind {
    Counter(Counter),
    Gauge(Gauge),
    FloatGauge(FloatGauge),
    Histogram(Arc<LatencyHistogram>),
}

impl MetricKind {
    fn type_name(&self) -> &'static str {
        match self {
            MetricKind::Counter(_) => "counter",
            MetricKind::Gauge(_) | MetricKind::FloatGauge(_) => "gauge",
            MetricKind::Histogram(_) => "histogram",
        }
    }
}

/// The central namespace of named serving metrics.
///
/// Registration is register-or-get: asking for an existing name of the
/// same kind returns a handle to the *same* underlying metric (so shards,
/// frontends and the runtime can share series without plumbing), while a
/// kind mismatch panics — that is a naming bug, not a runtime condition.
/// Registration takes a lock; the returned handles never do.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<Vec<Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register_or_get<T: Clone>(
        &self,
        name: &str,
        make: impl FnOnce() -> (T, MetricKind),
        get: impl Fn(&MetricKind) -> Option<T>,
    ) -> T {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        if let Some(existing) = metrics.iter().find(|m| m.name == name) {
            return get(&existing.kind).unwrap_or_else(|| {
                panic!(
                    "metric {name:?} already registered as a {}",
                    existing.kind.type_name()
                )
            });
        }
        let (handle, kind) = make();
        metrics.push(Metric {
            name: name.to_string(),
            kind,
        });
        handle
    }

    /// Registers (or retrieves) a counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.register_or_get(
            name,
            || {
                let c = Counter::default();
                (c.clone(), MetricKind::Counter(c))
            },
            |k| match k {
                MetricKind::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.register_or_get(
            name,
            || {
                let g = Gauge::default();
                (g.clone(), MetricKind::Gauge(g))
            },
            |k| match k {
                MetricKind::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) a float gauge.
    pub fn float_gauge(&self, name: &str) -> FloatGauge {
        self.register_or_get(
            name,
            || {
                let g = FloatGauge::default();
                (g.clone(), MetricKind::FloatGauge(g))
            },
            |k| match k {
                MetricKind::FloatGauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) a latency histogram.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        self.register_or_get(
            name,
            || {
                let h = Arc::new(LatencyHistogram::new());
                (Arc::clone(&h), MetricKind::Histogram(h))
            },
            |k| match k {
                MetricKind::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Registered metric names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.metrics
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|m| m.name.clone())
            .collect()
    }

    /// Renders every registered metric as Prometheus-style text.
    ///
    /// One `# TYPE` line per metric family (the name with any `{…}` label
    /// suffix stripped), then the sample lines. Histograms render
    /// cumulative `_bucket{le="…"}` series over their non-empty log2
    /// buckets plus `_sum`, `_count`, and the exact `_min`/`_max`.
    pub fn expose(&self) -> String {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut out = String::with_capacity(metrics.len() * 64);
        let mut typed: Vec<&str> = Vec::new();
        for m in metrics.iter() {
            let base = family_name(&m.name);
            if !typed.contains(&base) {
                typed.push(base);
                out.push_str("# TYPE ");
                out.push_str(base);
                out.push(' ');
                out.push_str(m.kind.type_name());
                out.push('\n');
            }
            match &m.kind {
                MetricKind::Counter(c) => {
                    append_sample(&mut out, &m.name, &c.get().to_string());
                }
                MetricKind::Gauge(g) => {
                    append_sample(&mut out, &m.name, &g.get().to_string());
                }
                MetricKind::FloatGauge(g) => {
                    append_sample(&mut out, &m.name, &format_f64(g.get()));
                }
                MetricKind::Histogram(h) => {
                    expose_histogram(&mut out, &m.name, &h.snapshot());
                }
            }
        }
        out
    }
}

/// The metric-family name: the registered name with any label suffix
/// stripped.
fn family_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

pub(crate) fn append_sample(out: &mut String, name: &str, value: &str) {
    out.push_str(name);
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Formats an `f64` for exposition (finite shortest-form, `NaN`/`±Inf`
/// spelled the Prometheus way).
pub(crate) fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Renders one histogram snapshot in exposition form. Shared by the
/// registry (registered histograms) and the runtime's dynamic per-model
/// series.
pub(crate) fn expose_histogram(out: &mut String, name: &str, snap: &HistogramSnapshot) {
    let (base, labels) = match name.find('{') {
        Some(i) => (&name[..i], &name[i..name.len() - 1]),
        None => (name, ""),
    };
    let label_sep = if labels.is_empty() { "{" } else { ", " };
    let mut cumulative = 0u64;
    for (bucket, &c) in snap.bucket_counts().iter().enumerate() {
        if c == 0 {
            continue;
        }
        cumulative += c;
        // Bucket b spans [2^b, 2^(b+1)): its inclusive upper bound.
        let le = if bucket == 63 {
            u64::MAX
        } else {
            (1u64 << (bucket + 1)) - 1
        };
        out.push_str(base);
        out.push_str("_bucket");
        if labels.is_empty() {
            out.push_str(&format!("{{le=\"{le}\"}}"));
        } else {
            out.push_str(labels);
            out.push_str(&format!("{label_sep}le=\"{le}\"}}"));
        }
        out.push(' ');
        out.push_str(&cumulative.to_string());
        out.push('\n');
    }
    let suffix_name = |suffix: &str| {
        if labels.is_empty() {
            format!("{base}{suffix}")
        } else {
            format!("{base}{suffix}{labels}}}")
        }
    };
    if labels.is_empty() {
        append_sample(
            out,
            &format!("{base}_bucket{{le=\"+Inf\"}}"),
            &cumulative.to_string(),
        );
    } else {
        append_sample(
            out,
            &format!("{base}_bucket{labels}{label_sep}le=\"+Inf\"}}"),
            &cumulative.to_string(),
        );
    }
    append_sample(out, &suffix_name("_sum"), &snap.sum_ns().to_string());
    append_sample(out, &suffix_name("_count"), &snap.count().to_string());
    append_sample(out, &suffix_name("_min"), &snap.min_ns().to_string());
    append_sample(out, &suffix_name("_max"), &snap.max_ns().to_string());
}

/// Escapes a label value for exposition (`\` → `\\`, `"` → `\"`,
/// newline → `\n`).
pub(crate) fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Lock-free per-model counters, owned by a registry entry and shared by
/// every request that resolves to it.
#[derive(Debug, Default)]
pub struct ModelStats {
    pub(crate) admitted: Counter,
    pub(crate) completed: Counter,
    pub(crate) failed: Counter,
    pub(crate) rejected: Counter,
    pub(crate) latency: LatencyHistogram,
}

impl ModelStats {
    /// An immutable copy of the counters.
    pub fn snapshot(&self) -> ModelStatsSnapshot {
        ModelStatsSnapshot {
            admitted: self.admitted.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            rejected: self.rejected.get(),
            latency: self.latency.snapshot(),
        }
    }
}

/// A point-in-time copy of one model's serving counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ModelStatsSnapshot {
    /// Requests admitted to the queue for this model.
    pub admitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests that failed during batch evaluation.
    pub failed: u64,
    /// Requests rejected at admission (queue saturated).
    pub rejected: u64,
    /// End-to-end (admission → reply) latency histogram.
    pub latency: HistogramSnapshot,
}

/// Why the scheduler flushed a micro-batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// The batch reached the configured size target.
    Size,
    /// The batching window expired (or was zero) before the target filled.
    Deadline,
    /// The runtime is draining at shutdown.
    Close,
}

/// Per-request pipeline stage latency histograms: where a request's
/// end-to-end time actually went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageLatencies {
    /// Admission-side encoding (feature → rotation angles) time.
    pub encode: HistogramSnapshot,
    /// Time spent queued between admission and scheduler pickup.
    pub queue_wait: HistogramSnapshot,
    /// Scheduler batch-assembly time (drain → group → dispatch).
    pub assemble: HistogramSnapshot,
    /// Batch compute time (the `predict_many_from_angles` call).
    pub compute: HistogramSnapshot,
    /// Wire write time (response serialised → bytes drained to the
    /// socket). Zero for in-process requests, which have no write stage.
    pub write: HistogramSnapshot,
}

/// Runtime-wide counters, gauges, and histograms — every field is a handle
/// into one shared [`MetricsRegistry`], so the same values are readable as
/// typed fields (hot paths, [`crate::runtime::MetricsSnapshot`]) and as
/// named series in the text exposition.
#[derive(Debug)]
pub struct RuntimeStats {
    pub(crate) admitted: Counter,
    pub(crate) rejected: Counter,
    pub(crate) completed: Counter,
    pub(crate) failed: Counter,
    pub(crate) batches: Counter,
    pub(crate) batched_requests: Counter,
    pub(crate) flush_on_size: Counter,
    pub(crate) flush_on_deadline: Counter,
    pub(crate) flush_on_close: Counter,
    /// Connections refused at the wire boundary (over the connection cap)
    /// with a `saturated` error frame.
    pub(crate) wire_refusals: Counter,
    /// Refusals whose error frame could not be written to the peer. A
    /// refused client that also failed the write never *saw* the
    /// backpressure signal — operationally distinct from a served refusal,
    /// so it is counted separately instead of silently discarded.
    pub(crate) refusal_write_failures: Counter,
    /// Successful deploys through the runtime (initial deploys and
    /// online-learner candidate promotions alike): the promotion history
    /// the registry itself does not keep.
    pub(crate) promotions: Counter,
    /// Rollbacks to a name's previous artifact (each redeployed as a new
    /// monotonic version, so a rollback never reuses a version number).
    pub(crate) rollbacks: Counter,
    /// Online-learner candidates that failed validation, compilation, the
    /// promotion gate, or the deploy warm-up — none of which ever reached
    /// the registry.
    pub(crate) candidates_rejected: Counter,
    /// Training cycles the online learner has started.
    pub(crate) train_cycles: Counter,
    /// Trainer panics caught and survived by the online learner.
    pub(crate) learner_panics: Counter,
    /// Scheduler flushes mirrored to a shadow candidate.
    pub(crate) shadow_batches: Counter,
    /// Requests duplicated onto a shadow candidate (user responses always
    /// come from the live model only).
    pub(crate) shadow_requests: Counter,
    /// Requests currently queued (mirrors the bounded queue's occupancy).
    pub(crate) queue_depth: Gauge,
    /// Requests admitted but not yet answered (queued + being evaluated).
    pub(crate) in_flight: Gauge,
    /// Open wire connections across all frontends and shards.
    pub(crate) wire_connections: Gauge,
    /// Live-model holdout accuracy from the latest online-learner cycle.
    pub(crate) online_live_accuracy: FloatGauge,
    /// Candidate holdout accuracy from the latest cycle that trained one.
    pub(crate) online_candidate_accuracy: FloatGauge,
    /// Index of the most recently completed online-learner cycle.
    pub(crate) online_last_cycle: Gauge,
    /// End-to-end (admission → reply) latency.
    pub(crate) latency: Arc<LatencyHistogram>,
    /// Admission-side encoding stage.
    pub(crate) stage_encode: Arc<LatencyHistogram>,
    /// Queue-wait stage (admission → scheduler pickup).
    pub(crate) stage_queue_wait: Arc<LatencyHistogram>,
    /// Scheduler batch-assembly stage.
    pub(crate) stage_assemble: Arc<LatencyHistogram>,
    /// Batch compute stage.
    pub(crate) stage_compute: Arc<LatencyHistogram>,
    /// Wire write stage (fulfil → bytes drained).
    pub(crate) stage_write: Arc<LatencyHistogram>,
}

impl RuntimeStats {
    /// Registers every runtime-wide metric into `registry` and returns the
    /// handle bundle. Calling twice against one registry returns handles
    /// to the *same* series (register-or-get).
    pub(crate) fn register(registry: &MetricsRegistry) -> Self {
        RuntimeStats {
            admitted: registry.counter("quclassi_serve_admitted_total"),
            rejected: registry.counter("quclassi_serve_rejected_total"),
            completed: registry.counter("quclassi_serve_completed_total"),
            failed: registry.counter("quclassi_serve_failed_total"),
            batches: registry.counter("quclassi_serve_batches_total"),
            batched_requests: registry.counter("quclassi_serve_batched_requests_total"),
            flush_on_size: registry.counter("quclassi_serve_flush_size_total"),
            flush_on_deadline: registry.counter("quclassi_serve_flush_deadline_total"),
            flush_on_close: registry.counter("quclassi_serve_flush_close_total"),
            wire_refusals: registry.counter("quclassi_wire_refusals_total"),
            refusal_write_failures: registry.counter("quclassi_wire_refusal_write_failures_total"),
            promotions: registry.counter("quclassi_online_promotions_total"),
            rollbacks: registry.counter("quclassi_online_rollbacks_total"),
            candidates_rejected: registry.counter("quclassi_online_candidates_rejected_total"),
            train_cycles: registry.counter("quclassi_online_train_cycles_total"),
            learner_panics: registry.counter("quclassi_online_learner_panics_total"),
            shadow_batches: registry.counter("quclassi_online_shadow_batches_total"),
            shadow_requests: registry.counter("quclassi_online_shadow_requests_total"),
            queue_depth: registry.gauge("quclassi_serve_queue_depth"),
            in_flight: registry.gauge("quclassi_serve_in_flight"),
            wire_connections: registry.gauge("quclassi_wire_connections"),
            online_live_accuracy: registry.float_gauge("quclassi_online_live_accuracy"),
            online_candidate_accuracy: registry.float_gauge("quclassi_online_candidate_accuracy"),
            online_last_cycle: registry.gauge("quclassi_online_last_cycle"),
            latency: registry.histogram("quclassi_serve_latency_ns"),
            stage_encode: registry.histogram("quclassi_serve_stage_encode_ns"),
            stage_queue_wait: registry.histogram("quclassi_serve_stage_queue_wait_ns"),
            stage_assemble: registry.histogram("quclassi_serve_stage_assemble_ns"),
            stage_compute: registry.histogram("quclassi_serve_stage_compute_ns"),
            stage_write: registry.histogram("quclassi_serve_stage_write_ns"),
        }
    }

    /// A snapshot of the five per-stage histograms.
    pub(crate) fn stage_snapshot(&self) -> StageLatencies {
        StageLatencies {
            encode: self.stage_encode.snapshot(),
            queue_wait: self.stage_queue_wait.snapshot(),
            assemble: self.stage_assemble.snapshot(),
            compute: self.stage_compute.snapshot(),
            write: self.stage_write.snapshot(),
        }
    }

    pub(crate) fn record_flush(&self, occupancy: usize, reason: FlushReason) {
        self.batches.inc();
        self.batched_requests.add(occupancy as u64);
        let counter = match reason {
            FlushReason::Size => &self.flush_on_size,
            FlushReason::Deadline => &self.flush_on_deadline,
            FlushReason::Close => &self.flush_on_close,
        };
        counter.inc();
    }
}

impl Default for RuntimeStats {
    /// Stand-alone stats backed by a private throwaway registry (tests,
    /// contexts with no exposition). The serving runtime registers into
    /// its shared registry via `RuntimeStats::register` instead.
    fn default() -> Self {
        Self::register(&MetricsRegistry::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_and_tracks_the_exact_mean() {
        let h = LatencyHistogram::new();
        for ns in [1u64, 2, 3, 1000, 1_000_000] {
            h.record_ns(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert!((s.mean_ns() - (1.0 + 2.0 + 3.0 + 1000.0 + 1_000_000.0) / 5.0).abs() < 1e-9);
        assert_eq!(s.sum_ns(), 1 + 2 + 3 + 1000 + 1_000_000);
    }

    #[test]
    fn min_max_track_exact_extremes() {
        let h = LatencyHistogram::new();
        let empty = h.snapshot();
        assert_eq!((empty.min_ns(), empty.max_ns()), (0, 0));
        for ns in [700u64, 3, 90_000, 41] {
            h.record_ns(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.min_ns(), 3);
        assert_eq!(s.max_ns(), 90_000);
        // Quantiles never leave the observed range, even at the extremes
        // where bucket interpolation alone would overshoot.
        assert!(s.quantile_ns(0.0) >= 3);
        assert_eq!(s.quantile_ns(1.0), 90_000);
    }

    #[test]
    fn single_observation_quantiles_collapse_to_the_observation() {
        // With exactly one observation, every quantile must read out the
        // observed value itself — min/max clamping pins the interpolation.
        let h = LatencyHistogram::new();
        h.record_ns(10_000);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile_ns(q), 10_000);
        }
    }

    #[test]
    fn quantiles_with_distinct_ranks_read_out_distinctly() {
        // Regression for the p50 == p99 collapse: 100 observations all in
        // the *same* log2 bucket used to report the identical bucket
        // midpoint for every quantile. Sub-bucket interpolation must
        // separate them monotonically.
        let h = LatencyHistogram::new();
        for i in 0..100u64 {
            h.record_ns(9_000 + 20 * i); // all inside bucket [8192, 16384)
        }
        let s = h.snapshot();
        let p50 = s.quantile_ns(0.50);
        let p90 = s.quantile_ns(0.90);
        let p99 = s.quantile_ns(0.99);
        assert!(p50 < p90 && p90 < p99, "p50={p50} p90={p90} p99={p99}");
        // All three stay inside the landing bucket's span.
        for q in [p50, p90, p99] {
            assert!((8192..16384).contains(&q), "quantile {q} left its bucket");
        }
    }

    #[test]
    fn quantiles_are_within_a_factor_of_two() {
        let h = LatencyHistogram::new();
        // 98 fast observations at ~10µs, 2 slow at ~10ms.
        for _ in 0..98 {
            h.record_ns(10_000);
        }
        for _ in 0..2 {
            h.record_ns(10_000_000);
        }
        let s = h.snapshot();
        let p50 = s.quantile_ns(0.50) as f64;
        assert!((5_000.0..=20_000.0).contains(&p50), "p50 = {p50}");
        let p99 = s.quantile_ns(0.99) as f64;
        assert!((5_000_000.0..=20_000_000.0).contains(&p99), "p99 = {p99}");
        // The microsecond helpers agree with the raw read-outs.
        assert!((s.p50_us() - p50 / 1000.0).abs() < 1e-9);
        assert!((s.p99_us() - p99 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_zero_edge_cases() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile_ns(0.5), 0);
        assert_eq!(s.mean_ns(), 0.0);
        let h = LatencyHistogram::new();
        h.record_ns(0); // clamps into bucket 0 rather than panicking
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!((s.min_ns(), s.max_ns()), (0, 0));
    }

    #[test]
    fn concurrent_snapshots_never_inflate_the_mean() {
        use std::sync::atomic::AtomicBool;

        // Every recorded observation is exactly V ns, so any correct
        // snapshot has mean ≤ V: total_ns is k·V for the k observations
        // whose sum is visible, over a count m ≥ k. The pre-fix ordering
        // (count read before total) allowed m < k — a mean *above* V —
        // under recorder/reader races; hammer that interleaving.
        const V: u64 = 4096;
        let h = Arc::new(LatencyHistogram::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        h.record_ns(V);
                    }
                })
            })
            .collect();
        for _ in 0..20_000 {
            let s = h.snapshot();
            let (count, total) = (s.count(), s.mean_ns() * s.count() as f64);
            assert!(
                s.mean_ns() <= V as f64,
                "snapshot mean {} exceeds the only recorded value {V} \
                 (count {count}, total {total})",
                s.mean_ns()
            );
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        // Quiescent snapshot: the mean is exact again.
        let s = h.snapshot();
        assert!(s.count() > 0);
        assert_eq!(s.mean_ns(), V as f64);
        assert_eq!((s.min_ns(), s.max_ns()), (V, V));
    }

    #[test]
    fn concurrent_recording_counts_never_exceed_observations() {
        use std::sync::atomic::AtomicBool;

        // Proptest-style stress: N writers record while a reader snapshots.
        // Each writer publishes how many observations it has *finished*
        // (after record_ns returns). A snapshot taken at any moment may see
        // in-progress observations, so its count is bounded by the number
        // finished *after* it completes; and every quantile/extreme must
        // stay within the only values ever recorded.
        const VALUES: [u64; 3] = [1_000, 30_000, 2_000_000];
        let h = Arc::new(LatencyHistogram::new());
        let stop = Arc::new(AtomicBool::new(false));
        let finished = Arc::new(AtomicU64::new(0));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                let finished = Arc::clone(&finished);
                std::thread::spawn(move || {
                    let mut i = w;
                    while !stop.load(Ordering::Relaxed) {
                        h.record_ns(VALUES[i % VALUES.len()]);
                        finished.fetch_add(1, Ordering::Release);
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..10_000 {
            let before = finished.load(Ordering::Acquire);
            let s = h.snapshot();
            // Upper bound: finished-after + one in-flight per writer.
            let after = finished.load(Ordering::Acquire);
            assert!(s.count() >= before.saturating_sub(4));
            assert!(
                s.count() <= after + 4,
                "count {} exceeds observations {}",
                s.count(),
                after + 4
            );
            if s.count() > 0 {
                let (min, max) = (s.min_ns(), s.max_ns());
                assert!(VALUES.contains(&min) || min == 0, "min {min} unobserved");
                assert!(VALUES.contains(&max) || max == 0, "max {max} unobserved");
                if min <= max && max > 0 {
                    let p99 = s.quantile_ns(0.99);
                    assert!(p99 >= min && p99 <= max, "p99 {p99} outside [{min},{max}]");
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        // Quiescent: count is exactly the number of finished observations.
        assert_eq!(h.snapshot().count(), finished.load(Ordering::Acquire));
    }

    #[test]
    fn flush_reasons_are_counted_separately() {
        let stats = RuntimeStats::default();
        stats.record_flush(4, FlushReason::Size);
        stats.record_flush(1, FlushReason::Deadline);
        stats.record_flush(2, FlushReason::Close);
        stats.record_flush(8, FlushReason::Size);
        assert_eq!(stats.batches.get(), 4);
        assert_eq!(stats.batched_requests.get(), 15);
        assert_eq!(stats.flush_on_size.get(), 2);
        assert_eq!(stats.flush_on_deadline.get(), 1);
        assert_eq!(stats.flush_on_close.get(), 1);
    }

    #[test]
    fn registry_register_or_get_shares_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("demo_total");
        let b = reg.counter("demo_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = reg.gauge("demo_gauge");
        g.set(7);
        g.add(3);
        g.sub(4);
        assert_eq!(reg.gauge("demo_gauge").get(), 6);
        g.sub(100); // saturates, never wraps
        assert_eq!(g.get(), 0);
        let f = reg.float_gauge("demo_ratio");
        f.set(0.25);
        assert_eq!(reg.float_gauge("demo_ratio").get(), 0.25);
        let h = reg.histogram("demo_ns");
        h.record_ns(5);
        assert_eq!(reg.histogram("demo_ns").snapshot().count(), 1);
        assert_eq!(
            reg.names(),
            vec!["demo_total", "demo_gauge", "demo_ratio", "demo_ns"]
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("oops");
        reg.gauge("oops");
    }

    #[test]
    fn exposition_renders_every_metric_kind() {
        let reg = MetricsRegistry::new();
        reg.counter("x_total").add(41);
        reg.gauge("x_depth").set(3);
        reg.float_gauge("x_ratio").set(0.5);
        let h = reg.histogram("x_ns");
        h.record_ns(100);
        h.record_ns(300);
        reg.gauge("x_shard{shard=\"0\"}").set(2);
        reg.gauge("x_shard{shard=\"1\"}").set(5);
        let text = reg.expose();
        assert!(text.contains("# TYPE x_total counter\nx_total 41\n"));
        assert!(text.contains("# TYPE x_depth gauge\nx_depth 3\n"));
        assert!(text.contains("x_ratio 0.5\n"));
        assert!(text.contains("# TYPE x_ns histogram\n"));
        // 100 lands in [64,128) → le=127; 300 in [256,512) → le=511.
        assert!(text.contains("x_ns_bucket{le=\"127\"} 1\n"), "{text}");
        assert!(text.contains("x_ns_bucket{le=\"511\"} 2\n"), "{text}");
        assert!(text.contains("x_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("x_ns_sum 400\n"));
        assert!(text.contains("x_ns_count 2\n"));
        assert!(text.contains("x_ns_min 100\n"));
        assert!(text.contains("x_ns_max 300\n"));
        // Labeled series share one TYPE line for the family.
        assert_eq!(text.matches("# TYPE x_shard gauge").count(), 1);
        assert!(text.contains("x_shard{shard=\"0\"} 2\n"));
        assert!(text.contains("x_shard{shard=\"1\"} 5\n"));
    }

    #[test]
    fn runtime_stats_register_exposes_every_counter() {
        let reg = MetricsRegistry::new();
        let stats = RuntimeStats::register(&reg);
        stats.promotions.inc();
        stats.refusal_write_failures.add(2);
        let text = reg.expose();
        for name in [
            "quclassi_serve_admitted_total",
            "quclassi_serve_rejected_total",
            "quclassi_serve_completed_total",
            "quclassi_serve_failed_total",
            "quclassi_serve_batches_total",
            "quclassi_serve_batched_requests_total",
            "quclassi_serve_flush_size_total",
            "quclassi_serve_flush_deadline_total",
            "quclassi_serve_flush_close_total",
            "quclassi_wire_refusals_total",
            "quclassi_wire_refusal_write_failures_total",
            "quclassi_online_promotions_total",
            "quclassi_online_rollbacks_total",
            "quclassi_online_candidates_rejected_total",
            "quclassi_online_train_cycles_total",
            "quclassi_online_learner_panics_total",
            "quclassi_online_shadow_batches_total",
            "quclassi_online_shadow_requests_total",
            "quclassi_serve_queue_depth",
            "quclassi_serve_in_flight",
            "quclassi_wire_connections",
            "quclassi_online_live_accuracy",
            "quclassi_online_candidate_accuracy",
            "quclassi_online_last_cycle",
            "quclassi_serve_latency_ns",
            "quclassi_serve_stage_encode_ns",
            "quclassi_serve_stage_queue_wait_ns",
            "quclassi_serve_stage_assemble_ns",
            "quclassi_serve_stage_compute_ns",
            "quclassi_serve_stage_write_ns",
        ] {
            assert!(text.contains(name), "exposition missing {name}");
        }
        assert!(text.contains("quclassi_online_promotions_total 1\n"));
        assert!(text.contains("quclassi_wire_refusal_write_failures_total 2\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
