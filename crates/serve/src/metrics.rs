//! Serving metrics: latency histograms, per-model counters, and the
//! runtime-wide snapshot.
//!
//! Everything on the hot path is a relaxed atomic — recording a latency or
//! bumping a counter never takes a lock, so metrics cannot perturb the
//! batching behaviour they measure. Quantiles come from a fixed
//! power-of-two-bucketed histogram: each observation lands in bucket
//! `floor(log2(ns))` (zero allocation, O(64) snapshot cost), and read-outs
//! interpolate linearly *within* the landing bucket by the requested
//! rank's position among the bucket's entries. The raw bucketing alone is
//! only exact to within a factor of 2, which made distinct load points
//! report byte-identical p50 and p99 (e.g. 11.6/11.6 µs) whenever both
//! ranks landed in the same bucket; the sub-bucket interpolation keeps the
//! lock-free recording path untouched while separating quantiles that
//! differ in rank, not just in bucket.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: one per possible `floor(log2)` of a `u64`
/// nanosecond count.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free latency histogram with power-of-two buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    total_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `ns` nanoseconds.
    ///
    /// Write order is load-bearing for [`LatencyHistogram::snapshot`]:
    /// the bucket count is bumped *first* and the nanosecond sum is
    /// published *second* with `Release`. A snapshot that observes an
    /// observation's nanoseconds is thereby guaranteed to also observe
    /// its count, so a concurrent snapshot's mean can only be skewed
    /// *downward* (extra count, missing nanoseconds), never upward.
    pub fn record_ns(&self, ns: u64) {
        let bucket = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Release);
    }

    /// An immutable copy of the current counts.
    ///
    /// The nanosecond sum is read *before* the bucket counts (the mirror
    /// of [`LatencyHistogram::record_ns`]'s write order, paired via
    /// `Acquire`/`Release` on `total_ns`): every observation whose
    /// nanoseconds made it into the sum has its count visible by the time
    /// the buckets are read. Racing recorders can therefore only leave a
    /// snapshot with *more* counts than summed nanoseconds — the reported
    /// mean is exact in quiescence and a lower bound under concurrency,
    /// never inflated.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let total_ns = self.total_ns.load(Ordering::Acquire);
        let mut counts = [0u64; HISTOGRAM_BUCKETS];
        for (slot, c) in counts.iter_mut().zip(self.counts.iter()) {
            *slot = c.load(Ordering::Relaxed);
        }
        HistogramSnapshot { counts, total_ns }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`], with quantile read-outs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; HISTOGRAM_BUCKETS],
    total_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; HISTOGRAM_BUCKETS],
            total_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean observation in nanoseconds (0.0 when empty). The mean is exact
    /// — it is computed from the true sum, not from bucket midpoints.
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_ns as f64 / n as f64
        }
    }

    /// The approximate `q`-quantile in nanoseconds (`q` clamped to
    /// `[0, 1]`); 0 when the histogram is empty.
    ///
    /// The observation with rank `ceil(q·n)` is located in its log2
    /// bucket, then interpolated linearly across the bucket's span
    /// `[2^b, 2^(b+1))` by the rank's midpoint position among the
    /// bucket's entries (the entries are assumed uniformly spread across
    /// the span). Two quantiles whose ranks differ therefore read out
    /// differently even when both land in the same bucket — the raw
    /// bucket midpoint used to collapse them into identical values.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                // Rank position among this bucket's entries, midpoint
                // rule: the k-th of c entries sits at (k − ½)/c of the
                // bucket span. Bucket b spans [2^b, 2^(b+1)), width 2^b.
                let into = rank - (seen - c);
                let low = (1u64 << bucket) as f64;
                let position = (into as f64 - 0.5) / c as f64;
                return (low + low * position).round() as u64;
            }
        }
        u64::MAX
    }

    /// Median latency in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.quantile_ns(0.50) as f64 / 1_000.0
    }

    /// 90th-percentile latency in microseconds.
    pub fn p90_us(&self) -> f64 {
        self.quantile_ns(0.90) as f64 / 1_000.0
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.quantile_ns(0.99) as f64 / 1_000.0
    }
}

/// Lock-free per-model counters, owned by a registry entry and shared by
/// every request that resolves to it.
#[derive(Debug, Default)]
pub struct ModelStats {
    pub(crate) admitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) latency: LatencyHistogram,
}

impl ModelStats {
    /// An immutable copy of the counters.
    pub fn snapshot(&self) -> ModelStatsSnapshot {
        ModelStatsSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
        }
    }
}

/// A point-in-time copy of one model's serving counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ModelStatsSnapshot {
    /// Requests admitted to the queue for this model.
    pub admitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests that failed during batch evaluation.
    pub failed: u64,
    /// Requests rejected at admission (queue saturated).
    pub rejected: u64,
    /// End-to-end (admission → reply) latency histogram.
    pub latency: HistogramSnapshot,
}

/// Why the scheduler flushed a micro-batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// The batch reached the configured size target.
    Size,
    /// The batching window expired (or was zero) before the target filled.
    Deadline,
    /// The runtime is draining at shutdown.
    Close,
}

/// Lock-free runtime-wide counters.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    pub(crate) admitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_requests: AtomicU64,
    pub(crate) flush_on_size: AtomicU64,
    pub(crate) flush_on_deadline: AtomicU64,
    pub(crate) flush_on_close: AtomicU64,
    /// Connections refused at the wire boundary (over the connection cap)
    /// with a `saturated` error frame.
    pub(crate) wire_refusals: AtomicU64,
    /// Refusals whose error frame could not be written to the peer. A
    /// refused client that also failed the write never *saw* the
    /// backpressure signal — operationally distinct from a served refusal,
    /// so it is counted separately instead of silently discarded.
    pub(crate) refusal_write_failures: AtomicU64,
    /// Successful deploys through the runtime (initial deploys and
    /// online-learner candidate promotions alike): the promotion history
    /// the registry itself does not keep.
    pub(crate) promotions: AtomicU64,
    /// Rollbacks to a name's previous artifact (each redeployed as a new
    /// monotonic version, so a rollback never reuses a version number).
    pub(crate) rollbacks: AtomicU64,
    /// Online-learner candidates that failed validation, compilation, the
    /// promotion gate, or the deploy warm-up — none of which ever reached
    /// the registry.
    pub(crate) candidates_rejected: AtomicU64,
    /// Training cycles the online learner has started.
    pub(crate) train_cycles: AtomicU64,
    /// Trainer panics caught and survived by the online learner.
    pub(crate) learner_panics: AtomicU64,
    /// Scheduler flushes mirrored to a shadow candidate.
    pub(crate) shadow_batches: AtomicU64,
    /// Requests duplicated onto a shadow candidate (user responses always
    /// come from the live model only).
    pub(crate) shadow_requests: AtomicU64,
    pub(crate) latency: LatencyHistogram,
}

impl RuntimeStats {
    pub(crate) fn record_flush(&self, occupancy: usize, reason: FlushReason) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(occupancy as u64, Ordering::Relaxed);
        let counter = match reason {
            FlushReason::Size => &self.flush_on_size,
            FlushReason::Deadline => &self.flush_on_deadline,
            FlushReason::Close => &self.flush_on_close,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_and_tracks_the_exact_mean() {
        let h = LatencyHistogram::new();
        for ns in [1u64, 2, 3, 1000, 1_000_000] {
            h.record_ns(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert!((s.mean_ns() - (1.0 + 2.0 + 3.0 + 1000.0 + 1_000_000.0) / 5.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_with_distinct_ranks_read_out_distinctly() {
        // Regression for the p50 == p99 collapse: 100 observations all in
        // the *same* log2 bucket used to report the identical bucket
        // midpoint for every quantile. Sub-bucket interpolation must
        // separate them monotonically.
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record_ns(10_000); // bucket [8192, 16384)
        }
        let s = h.snapshot();
        let p50 = s.quantile_ns(0.50);
        let p90 = s.quantile_ns(0.90);
        let p99 = s.quantile_ns(0.99);
        assert!(p50 < p90 && p90 < p99, "p50={p50} p90={p90} p99={p99}");
        // All three stay inside the landing bucket's span.
        for q in [p50, p90, p99] {
            assert!((8192..16384).contains(&q), "quantile {q} left its bucket");
        }
        // A single observation reads out at its bucket's centre.
        let h = LatencyHistogram::new();
        h.record_ns(10_000);
        assert_eq!(h.snapshot().quantile_ns(0.5), 8192 + 4096);
    }

    #[test]
    fn quantiles_are_within_a_factor_of_two() {
        let h = LatencyHistogram::new();
        // 98 fast observations at ~10µs, 2 slow at ~10ms.
        for _ in 0..98 {
            h.record_ns(10_000);
        }
        for _ in 0..2 {
            h.record_ns(10_000_000);
        }
        let s = h.snapshot();
        let p50 = s.quantile_ns(0.50) as f64;
        assert!((5_000.0..=20_000.0).contains(&p50), "p50 = {p50}");
        let p99 = s.quantile_ns(0.99) as f64;
        assert!((5_000_000.0..=20_000_000.0).contains(&p99), "p99 = {p99}");
        // The microsecond helpers agree with the raw read-outs.
        assert!((s.p50_us() - p50 / 1000.0).abs() < 1e-9);
        assert!((s.p99_us() - p99 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_zero_edge_cases() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile_ns(0.5), 0);
        assert_eq!(s.mean_ns(), 0.0);
        let h = LatencyHistogram::new();
        h.record_ns(0); // clamps into bucket 0 rather than panicking
        assert_eq!(h.snapshot().count(), 1);
    }

    #[test]
    fn concurrent_snapshots_never_inflate_the_mean() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        // Every recorded observation is exactly V ns, so any correct
        // snapshot has mean ≤ V: total_ns is k·V for the k observations
        // whose sum is visible, over a count m ≥ k. The pre-fix ordering
        // (count read before total) allowed m < k — a mean *above* V —
        // under recorder/reader races; hammer that interleaving.
        const V: u64 = 4096;
        let h = Arc::new(LatencyHistogram::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        h.record_ns(V);
                    }
                })
            })
            .collect();
        for _ in 0..20_000 {
            let s = h.snapshot();
            let (count, total) = (s.count(), s.mean_ns() * s.count() as f64);
            assert!(
                s.mean_ns() <= V as f64,
                "snapshot mean {} exceeds the only recorded value {V} \
                 (count {count}, total {total})",
                s.mean_ns()
            );
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        // Quiescent snapshot: the mean is exact again.
        let s = h.snapshot();
        assert!(s.count() > 0);
        assert_eq!(s.mean_ns(), V as f64);
    }

    #[test]
    fn flush_reasons_are_counted_separately() {
        let stats = RuntimeStats::default();
        stats.record_flush(4, FlushReason::Size);
        stats.record_flush(1, FlushReason::Deadline);
        stats.record_flush(2, FlushReason::Close);
        stats.record_flush(8, FlushReason::Size);
        assert_eq!(stats.batches.load(Ordering::Relaxed), 4);
        assert_eq!(stats.batched_requests.load(Ordering::Relaxed), 15);
        assert_eq!(stats.flush_on_size.load(Ordering::Relaxed), 2);
        assert_eq!(stats.flush_on_deadline.load(Ordering::Relaxed), 1);
        assert_eq!(stats.flush_on_close.load(Ordering::Relaxed), 1);
    }
}
