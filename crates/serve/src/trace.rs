//! Per-request tracing: stage-stamped spans in a lock-free ring buffer.
//!
//! Every request admitted to the serving runtime carries a trace id (the
//! wire request's `"id"` when it has one, an auto-assigned id otherwise)
//! and accumulates monotonic stage timestamps as it moves through the
//! pipeline: **encode** (admission-side validation + angle encoding) →
//! **queue wait** (bounded queue) → **assemble** (scheduler drain + model
//! grouping) → **compute** (the batched evaluation) → **write** (response
//! bytes drained to the socket; zero for in-process requests). When the
//! lifecycle completes, one [`TraceSpan`] is recorded into the runtime's
//! [`TraceRing`] and becomes retrievable — newest last — through
//! `Client::traces` and the wire `{"op":"trace","last":N}` op, which
//! reconstructs complete per-request timelines even when pipelined
//! responses completed out of order.
//!
//! ## The ring
//!
//! [`TraceRing`] is a fixed-capacity overwrite-oldest buffer with the same
//! lock-free discipline as
//! [`LatencyHistogram`](crate::metrics::LatencyHistogram): recording takes
//! one atomic ticket claim plus a handful of relaxed stores — no lock, no
//! allocation — so tracing cannot perturb the latencies it measures.
//! Readers validate each slot seqlock-style: a slot's **ticket** (the
//! 1-based global record index it holds) is read before and after the
//! field reads, and a mixed **checksum** over the fields is verified, so a
//! reader that races a lapping writer *skips* the slot rather than
//! returning a torn span. Capacity 0 disables tracing entirely: recording
//! is a no-op and retrieval returns nothing.

use crate::mutation;
use crate::quclassi_sync::atomic::{fence, AtomicU64, Ordering};
use std::time::Instant;

/// Default [`TraceRing`] capacity (`ServeConfig::trace_capacity`,
/// overridable via `QUCLASSI_TRACE_CAPACITY`; 0 disables tracing).
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// One completed request's stage timeline, all durations in nanoseconds.
///
/// The stages partition the request's lifetime:
/// `encode + queue_wait + assemble + compute + write ≈ total` (the
/// remainder is scheduler bookkeeping between stage boundaries —
/// microseconds, not milliseconds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSpan {
    /// The request's trace id: a numeric wire `"id"` verbatim, a hash of a
    /// non-numeric one, or an auto-assigned id for untagged / in-process
    /// requests.
    pub trace_id: u64,
    /// Admission-side validation + rotation-angle encoding.
    pub encode_ns: u64,
    /// Time spent in the bounded queue before scheduler pickup.
    pub queue_wait_ns: u64,
    /// Scheduler batch-assembly (drain → group → dispatch).
    pub assemble_ns: u64,
    /// Batched evaluation of the group this request rode in.
    pub compute_ns: u64,
    /// Response serialisation + socket drain (0 for in-process requests,
    /// which have no write stage).
    pub write_ns: u64,
    /// End-to-end: request received → response delivered.
    pub total_ns: u64,
    /// Number of requests in the evaluated batch group (1 = unbatched).
    pub batch_size: u64,
}

const SPAN_FIELDS: usize = 8;

impl TraceSpan {
    /// Sum of the five stage durations — the traced fraction of
    /// [`TraceSpan::total_ns`].
    pub fn stage_sum_ns(&self) -> u64 {
        self.encode_ns + self.queue_wait_ns + self.assemble_ns + self.compute_ns + self.write_ns
    }

    fn to_fields(self) -> [u64; SPAN_FIELDS] {
        [
            self.trace_id,
            self.encode_ns,
            self.queue_wait_ns,
            self.assemble_ns,
            self.compute_ns,
            self.write_ns,
            self.total_ns,
            self.batch_size,
        ]
    }

    fn from_fields(f: [u64; SPAN_FIELDS]) -> Self {
        TraceSpan {
            trace_id: f[0],
            encode_ns: f[1],
            queue_wait_ns: f[2],
            assemble_ns: f[3],
            compute_ns: f[4],
            write_ns: f[5],
            total_ns: f[6],
            batch_size: f[7],
        }
    }
}

/// Order-sensitive mix of a slot's ticket and fields. Tearing insurance on
/// top of the seqlock ticket check: two writers lapping onto the same slot
/// can interleave their field stores in a way the before/after ticket
/// reads alone cannot always detect, but a mixed checksum over the exact
/// field values makes a surviving torn read astronomically unlikely.
fn span_checksum(ticket: u64, fields: &[u64; SPAN_FIELDS]) -> u64 {
    let mut acc = ticket ^ 0x9E37_79B9_7F4A_7C15;
    for &v in fields {
        acc = acc
            .rotate_left(13)
            .wrapping_mul(0x100_0000_01B3)
            .wrapping_add(v);
    }
    acc
}

struct Slot {
    /// The 1-based global record index whose span the fields hold; 0 while
    /// empty or mid-write.
    ticket: AtomicU64,
    fields: [AtomicU64; SPAN_FIELDS],
    checksum: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            ticket: AtomicU64::new(0),
            fields: std::array::from_fn(|_| AtomicU64::new(0)),
            checksum: AtomicU64::new(0),
        }
    }
}

/// A fixed-capacity, lock-free, overwrite-oldest ring of [`TraceSpan`]s.
pub struct TraceRing {
    slots: Box<[Slot]>,
    /// Total spans ever recorded (tickets are 1-based: slot `(t-1) % cap`
    /// holds ticket `t`).
    head: AtomicU64,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceRing {
    /// Creates a ring holding the most recent `capacity` spans (0 disables
    /// tracing: recording becomes a no-op).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans recorded since construction (not bounded by capacity).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one span, overwriting the oldest when full. Lock-free and
    /// allocation-free: one ticket claim + relaxed field stores.
    pub fn record(&self, span: TraceSpan) {
        if self.slots.is_empty() {
            return;
        }
        let ticket = self.head.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        if ticket == 0 {
            // The 2^64th span wrapped the ticket counter onto the "empty /
            // mid-write" sentinel; drop this one span rather than publish a
            // slot readers must treat as invalid.
            return;
        }
        let slot = &self.slots[((ticket - 1) % self.slots.len() as u64) as usize];
        // Seqlock write protocol: invalidate, fence, store fields, publish.
        // The Release *fence* (not merely the release invalidation store)
        // is what orders the relaxed field stores after the invalidation
        // from the reader's point of view: it pairs with the reader's
        // Acquire fence between its field reads and ticket re-check, so a
        // reader whose re-check still sees the old ticket cannot have read
        // any of this writer's field values. The Release on the final
        // ticket store pairs with readers' Acquire ticket load, making
        // every field store visible to a reader that observes the
        // published ticket.
        slot.ticket.store(0, Ordering::Release);
        if mutation::seqlock_release_fence() {
            fence(Ordering::Release);
        }
        let fields = span.to_fields();
        for (dst, v) in slot.fields.iter().zip(fields) {
            dst.store(v, Ordering::Relaxed);
        }
        slot.checksum
            .store(span_checksum(ticket, &fields), Ordering::Relaxed);
        slot.ticket.store(ticket, mutation::seqlock_publish());
    }

    /// Reads the slot expected to hold `ticket`, seqlock-style; `None` if
    /// it was overwritten, is mid-write, or fails the checksum.
    fn read_slot(&self, ticket: u64) -> Option<TraceSpan> {
        let slot = &self.slots[((ticket - 1) % self.slots.len() as u64) as usize];
        if slot.ticket.load(Ordering::Acquire) != ticket {
            return None;
        }
        let mut fields = [0u64; SPAN_FIELDS];
        for (dst, src) in fields.iter_mut().zip(slot.fields.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        let checksum = slot.checksum.load(Ordering::Relaxed);
        // Order the field reads before the ticket re-check: if the ticket
        // is still ours afterwards *and* the checksum matches, the fields
        // form one consistent record.
        fence(Ordering::Acquire);
        if slot.ticket.load(Ordering::Relaxed) != ticket {
            return None;
        }
        if mutation::seqlock_verify_checksum() && checksum != span_checksum(ticket, &fields) {
            return None;
        }
        Some(TraceSpan::from_fields(fields))
    }

    /// Test-only: plants the ticket counter so overflow behaviour can be
    /// exercised without recording 2^64 spans.
    #[cfg(test)]
    fn seed_recorded(&self, n: u64) {
        self.head.store(n, Ordering::Relaxed);
    }

    /// The most recent `n` completed spans, oldest first. Spans that are
    /// mid-write or were overwritten while reading are skipped, never
    /// returned torn.
    pub fn last(&self, n: usize) -> Vec<TraceSpan> {
        let head = self.head.load(Ordering::Acquire);
        let capacity = self.slots.len() as u64;
        if head == 0 || capacity == 0 || n == 0 {
            return Vec::new();
        }
        let take = (n as u64).min(capacity).min(head);
        let mut spans = Vec::with_capacity(take as usize);
        for ticket in (head - take + 1)..=head {
            if let Some(span) = self.read_slot(ticket) {
                spans.push(span);
            }
        }
        spans
    }
}

/// Per-request trace bookkeeping carried by a request's response slot:
/// identity and arrival time are fixed at admission; stage durations are
/// stamped by whichever thread finishes the stage.
#[derive(Debug)]
pub(crate) struct TraceState {
    /// See [`TraceSpan::trace_id`].
    pub(crate) trace_id: u64,
    /// When the request entered the runtime (wire frame interpreted /
    /// `submit` called).
    pub(crate) received: Instant,
    /// True when a wire frontend owns the write stage: the scheduler then
    /// leaves span recording to the frontend's write-completion hook
    /// instead of recording at fulfilment.
    pub(crate) wire_managed: bool,
    pub(crate) encode_ns: AtomicU64,
    pub(crate) queue_wait_ns: AtomicU64,
    pub(crate) assemble_ns: AtomicU64,
    pub(crate) compute_ns: AtomicU64,
    pub(crate) batch_size: AtomicU64,
}

impl TraceState {
    pub(crate) fn new(trace_id: u64, received: Instant, wire_managed: bool) -> Self {
        TraceState {
            trace_id,
            received,
            wire_managed,
            encode_ns: AtomicU64::new(0),
            queue_wait_ns: AtomicU64::new(0),
            assemble_ns: AtomicU64::new(0),
            compute_ns: AtomicU64::new(0),
            batch_size: AtomicU64::new(0),
        }
    }

    /// Assembles the final span from the stamped stages.
    pub(crate) fn span(&self, write_ns: u64, total_ns: u64) -> TraceSpan {
        TraceSpan {
            trace_id: self.trace_id,
            encode_ns: self.encode_ns.load(Ordering::Relaxed),
            queue_wait_ns: self.queue_wait_ns.load(Ordering::Relaxed),
            assemble_ns: self.assemble_ns.load(Ordering::Relaxed),
            compute_ns: self.compute_ns.load(Ordering::Relaxed),
            write_ns,
            total_ns,
            batch_size: self.batch_size.load(Ordering::Relaxed),
        }
    }
}

/// FNV-1a over a non-numeric wire id's serialised form — a stable trace id
/// for clients that tag requests with strings or structures.
pub(crate) fn hash_trace_id(serialised: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in serialised.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn span(id: u64) -> TraceSpan {
        // Field values derived from the id so a torn read (fields from two
        // different records) is detectable by the invariants below.
        TraceSpan {
            trace_id: id,
            encode_ns: id.wrapping_mul(3),
            queue_wait_ns: id.wrapping_mul(5),
            assemble_ns: id.wrapping_mul(7),
            compute_ns: id.wrapping_mul(11),
            write_ns: id.wrapping_mul(13),
            total_ns: id.wrapping_mul(17),
            batch_size: id.wrapping_mul(19),
        }
    }

    fn assert_consistent(s: &TraceSpan) {
        let id = s.trace_id;
        assert_eq!(
            (
                s.encode_ns,
                s.queue_wait_ns,
                s.assemble_ns,
                s.compute_ns,
                s.write_ns,
                s.total_ns,
                s.batch_size,
            ),
            (
                id.wrapping_mul(3),
                id.wrapping_mul(5),
                id.wrapping_mul(7),
                id.wrapping_mul(11),
                id.wrapping_mul(13),
                id.wrapping_mul(17),
                id.wrapping_mul(19),
            ),
            "torn span for id {id}"
        );
    }

    #[test]
    fn zero_capacity_disables_tracing() {
        // The QUCLASSI_TRACE_CAPACITY=0 contract: recording is a no-op
        // (not merely "retrieval returns nothing") — the counter stays 0
        // no matter how much is recorded, and every retrieval shape is
        // empty without panicking on the empty slot array.
        let ring = TraceRing::new(0);
        for id in 1..=100 {
            ring.record(span(id));
        }
        assert_eq!(ring.recorded(), 0, "recording must not even count");
        assert!(ring.last(10).is_empty());
        assert!(ring.last(0).is_empty());
        assert!(ring.last(usize::MAX).is_empty());
        assert_eq!(ring.capacity(), 0);
    }

    #[test]
    fn exact_capacity_boundary_wraps_onto_the_oldest_slot() {
        let ring = TraceRing::new(4);
        // Fill to exactly capacity: nothing wrapped yet.
        for id in 1..=4 {
            ring.record(span(id));
        }
        assert_eq!(
            ring.last(4).iter().map(|s| s.trace_id).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        // Ticket capacity+1 lands on slot 0 (the boundary wrap): span 1 is
        // gone, spans 2..=5 survive, and last(n) never resurrects the
        // overwritten span no matter how large n is.
        ring.record(span(5));
        let spans = ring.last(usize::MAX);
        assert_eq!(
            spans.iter().map(|s| s.trace_id).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
        for s in &spans {
            assert_consistent(s);
        }
        // A full second lap replaces every slot exactly once.
        for id in 6..=9 {
            ring.record(span(id));
        }
        assert_eq!(
            ring.last(4).iter().map(|s| s.trace_id).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn capacity_one_ring_keeps_only_the_newest() {
        let ring = TraceRing::new(1);
        for id in 1..=3 {
            ring.record(span(id));
            assert_eq!(
                ring.last(8).iter().map(|s| s.trace_id).collect::<Vec<_>>(),
                vec![id],
                "a capacity-1 ring holds exactly the newest span"
            );
        }
        assert_eq!(ring.recorded(), 3);
    }

    #[test]
    fn ticket_counter_overflow_skips_the_sentinel_and_recovers() {
        let ring = TraceRing::new(4);
        ring.seed_recorded(u64::MAX - 2);
        // The last two tickets before the wrap record and read back
        // normally (no debug-overflow panic in the ticket arithmetic).
        ring.record(span(u64::MAX - 1));
        ring.record(span(u64::MAX));
        let spans = ring.last(2);
        assert_eq!(
            spans.iter().map(|s| s.trace_id).collect::<Vec<_>>(),
            vec![u64::MAX - 1, u64::MAX]
        );
        for s in &spans {
            assert_consistent(s);
        }
        // The 2^64th record wraps the counter onto ticket 0 — the
        // empty/mid-write sentinel — so that one span is dropped rather
        // than published as a slot readers must reject. With the counter
        // back at 0 the ring reads as empty...
        ring.record(span(123));
        assert_eq!(ring.recorded(), 0);
        assert!(ring.last(8).is_empty());
        // ...and the next record restarts cleanly at ticket 1.
        ring.record(span(7));
        let spans = ring.last(8);
        assert_eq!(
            spans.iter().map(|s| s.trace_id).collect::<Vec<_>>(),
            vec![7]
        );
        for s in &spans {
            assert_consistent(s);
        }
    }

    #[test]
    fn records_retrieve_in_order_oldest_first() {
        let ring = TraceRing::new(8);
        for id in 1..=5 {
            ring.record(span(id));
        }
        assert_eq!(ring.recorded(), 5);
        let spans = ring.last(10);
        assert_eq!(
            spans.iter().map(|s| s.trace_id).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        for s in &spans {
            assert_consistent(s);
        }
        // last(n) bounds the result to the n newest.
        assert_eq!(
            ring.last(2).iter().map(|s| s.trace_id).collect::<Vec<_>>(),
            vec![4, 5]
        );
    }

    #[test]
    fn full_ring_overwrites_oldest() {
        let ring = TraceRing::new(4);
        for id in 1..=10 {
            ring.record(span(id));
        }
        assert_eq!(ring.recorded(), 10);
        let spans = ring.last(10);
        assert_eq!(
            spans.iter().map(|s| s.trace_id).collect::<Vec<_>>(),
            vec![7, 8, 9, 10],
            "only the newest capacity-many spans survive"
        );
    }

    #[test]
    fn stage_sum_tracks_the_five_stages() {
        let s = TraceSpan {
            trace_id: 1,
            encode_ns: 10,
            queue_wait_ns: 20,
            assemble_ns: 30,
            compute_ns: 40,
            write_ns: 50,
            total_ns: 160,
            batch_size: 4,
        };
        assert_eq!(s.stage_sum_ns(), 150);
    }

    #[test]
    fn hash_trace_id_is_stable_and_discriminating() {
        assert_eq!(hash_trace_id("req-a"), hash_trace_id("req-a"));
        assert_ne!(hash_trace_id("req-a"), hash_trace_id("req-b"));
    }

    #[test]
    fn concurrent_recording_never_yields_torn_spans() {
        // The seqlock satellite: N writers hammer a deliberately tiny ring
        // (constant lapping) while a reader snapshots. Every span the
        // reader gets back must be internally consistent — skipped is
        // fine, torn is not.
        let ring = Arc::new(TraceRing::new(8));
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let ring = Arc::clone(&ring);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut id = w as u64 + 1;
                    while !stop.load(Ordering::Relaxed) {
                        ring.record(span(id));
                        id += 4;
                    }
                })
            })
            .collect();
        let mut observed = 0usize;
        for _ in 0..20_000 {
            for s in ring.last(8) {
                assert_consistent(&s);
                observed += 1;
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        assert!(observed > 0, "reader never saw a stable span");
        // Quiescent with a single writer, the ring reads back exactly and
        // in order. (Right after the concurrent phase some slots may hold
        // older tickets — a stalled writer publishing after being lapped —
        // which readers correctly *skip*; eight fresh records repair every
        // slot.)
        let base = ring.recorded() + 1;
        for id in base..base + 8 {
            ring.record(span(id));
        }
        let spans = ring.last(8);
        assert_eq!(
            spans.iter().map(|s| s.trace_id).collect::<Vec<_>>(),
            (base..base + 8).collect::<Vec<_>>()
        );
        for s in &spans {
            assert_consistent(s);
        }
    }
}
