//! Mutation points for the model-check mutation proofs.
//!
//! Each function below pins one deliberately weakenable decision in a
//! concurrent protocol: a memory ordering, a fence, a notify placement.
//! In normal builds they are `const fn`s returning the shipped (correct)
//! choice — the call sites compile to exactly the constants they used
//! before this module existed, so release binaries are unchanged. Under
//! `--cfg quclassi_model` they consult runtime flags set by
//! [`crate::model_support::mutations`], letting the `model_*` tests weaken
//! exactly one site and prove the checker detects the resulting bug
//! (`#[should_panic]` mutation proofs — checker power is demonstrated, not
//! assumed).

#[cfg(not(quclassi_model))]
mod imp {
    use crate::quclassi_sync::atomic::Ordering;

    /// Ordering of the `TraceRing` seqlock publish store (the final ticket
    /// store). Shipped: `Release`.
    #[inline(always)]
    pub(crate) const fn seqlock_publish() -> Ordering {
        Ordering::Release
    }

    /// Whether the `TraceRing` writer issues its release fence between the
    /// ticket invalidation and the field stores. Shipped: yes.
    #[inline(always)]
    pub(crate) const fn seqlock_release_fence() -> bool {
        true
    }

    /// Whether `TraceRing` readers verify the span checksum. Shipped: yes
    /// (the model tests disable it to expose the bare two-ticket seqlock).
    #[inline(always)]
    pub(crate) const fn seqlock_verify_checksum() -> bool {
        true
    }

    /// Ordering of the `LatencyHistogram` nanosecond-sum publish. Shipped:
    /// `Release` (pairs with the snapshot's `Acquire` load).
    #[inline(always)]
    pub(crate) const fn histogram_total() -> Ordering {
        Ordering::Release
    }

    /// Whether `BoundedQueue::try_push` notifies *before* publishing the
    /// item (a lost-wakeup bug). Shipped: no — notify after unlock.
    #[inline(always)]
    pub(crate) const fn queue_notify_early() -> bool {
        false
    }

    /// Whether `ResponseSlot::fulfill` notifies *before* publishing the
    /// result (a lost-wakeup bug). Shipped: no.
    #[inline(always)]
    pub(crate) const fn slot_notify_early() -> bool {
        false
    }

    /// Whether `SwapMap::publish` drops the write lock between version
    /// assignment and insert (a TOCTOU that forges duplicate versions).
    /// Shipped: no — one write-locked critical section.
    #[inline(always)]
    pub(crate) const fn swap_split_publish() -> bool {
        false
    }
}

#[cfg(quclassi_model)]
mod imp {
    use crate::model_support::mutations;
    use crate::quclassi_sync::atomic::Ordering;

    pub(crate) fn seqlock_publish() -> Ordering {
        if mutations::active(mutations::SEQLOCK_PUBLISH_RELAXED) {
            Ordering::Relaxed
        } else {
            Ordering::Release
        }
    }

    pub(crate) fn seqlock_release_fence() -> bool {
        !mutations::active(mutations::SEQLOCK_SKIP_RELEASE_FENCE)
    }

    pub(crate) fn seqlock_verify_checksum() -> bool {
        !mutations::active(mutations::SEQLOCK_SKIP_CHECKSUM)
    }

    pub(crate) fn histogram_total() -> Ordering {
        if mutations::active(mutations::HISTOGRAM_TOTAL_RELAXED) {
            Ordering::Relaxed
        } else {
            Ordering::Release
        }
    }

    pub(crate) fn queue_notify_early() -> bool {
        mutations::active(mutations::QUEUE_NOTIFY_EARLY)
    }

    pub(crate) fn slot_notify_early() -> bool {
        mutations::active(mutations::SLOT_NOTIFY_EARLY)
    }

    pub(crate) fn swap_split_publish() -> bool {
        mutations::active(mutations::SWAP_SPLIT_PUBLISH)
    }
}

pub(crate) use imp::*;
