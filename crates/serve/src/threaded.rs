//! The legacy thread-per-connection TCP frontend.
//!
//! One OS thread per connection, blocking reads with kernel-enforced
//! socket deadlines, strictly in-order responses. This was the original
//! wire server; it is kept — renamed [`ThreadedWireServer`] — as the
//! baseline the event-loop [`WireServer`](crate::eventloop::WireServer)
//! is benchmarked against (`BENCH_serving_latency.json`, `connections`
//! axis), and as the simplest-possible reference implementation of the
//! protocol in [`wire`](crate::wire).
//!
//! Its scaling limit is structural: every open connection pins a thread
//! (stack, scheduler state), so 10k mostly-idle connections cost 10k
//! threads. The event loop serves the same protocol from a handful of
//! shards. Both servers share framing, request interpretation, the
//! [`WireConfig`] knobs, and refusal accounting; this module adds only
//! the accept loop and the per-connection thread.
//!
//! Shutdown is deterministic: the accept loop blocks in an epoll wait on
//! the listener *and* an eventfd waker, and [`ThreadedWireServer::shutdown`]
//! fires the waker. (It used to unblock a blocking `accept` by connecting
//! to itself on loopback — racy against concurrent real connections, and
//! wrong under exotic routing where loopback cannot reach the bound
//! address.)

use crate::error::ServeError;
use crate::runtime::Client;
use crate::wire::{
    error_response, interpret, prediction_to_json, read_frame, refuse_stream, trace_id_for,
    with_id, write_frame, WireAction, WireConfig, ACCEPT_ERROR_BACKOFF,
};
use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A handler thread and the stream it serves. The acceptor and the
/// handler share ONE descriptor through the `Arc` (`&TcpStream`
/// implements `Read`/`Write`) — a `try_clone` here would double the
/// process's fd cost per connection, which is exactly what caps out
/// first at high connection counts.
struct Connection {
    handle: JoinHandle<()>,
    stream: Arc<TcpStream>,
    done: Arc<AtomicBool>,
}

/// The thread-per-connection wire server (see the module docs; prefer
/// [`WireServer`](crate::eventloop::WireServer) for anything beyond a few
/// hundred connections).
#[derive(Debug)]
pub struct ThreadedWireServer {
    local_addr: std::net::SocketAddr,
    running: Arc<AtomicBool>,
    waker: Arc<poll::Waker>,
    acceptor: Option<JoinHandle<()>>,
}

impl ThreadedWireServer {
    /// Binds `addr` and starts serving `client` with default knobs.
    pub fn start(addr: impl ToSocketAddrs, client: Client) -> Result<Self, ServeError> {
        Self::start_with(addr, client, WireConfig::default())
    }

    /// Binds `addr` and starts serving `client` with explicit knobs
    /// (`config.shards` is ignored — this server's unit of concurrency is
    /// the connection thread).
    pub fn start_with(
        addr: impl ToSocketAddrs,
        client: Client,
        config: WireConfig,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let poller = poll::Poller::new()?;
        let waker = Arc::new(poll::Waker::new()?);
        poller.register(waker.as_raw_fd(), TOKEN_WAKER, poll::Interest::READABLE)?;
        // Deepen std's hardcoded 128 backlog so connect storms don't stall
        // on SYN retransmits (best-effort; kernel-capped at somaxconn).
        let _ = poll::set_listener_backlog(listener_fd(&listener), 4096);
        poller.register(
            listener_fd(&listener),
            TOKEN_LISTENER,
            poll::Interest::READABLE,
        )?;
        let running = Arc::new(AtomicBool::new(true));
        let acceptor = {
            let running = Arc::clone(&running);
            let waker = Arc::clone(&waker);
            std::thread::Builder::new()
                .name("quclassi-wire-accept".to_string())
                .spawn(move || accept_loop(listener, poller, waker, client, config, running))
                .map_err(|e| ServeError::Io(format!("failed to spawn acceptor: {e}")))?
        };
        Ok(ThreadedWireServer {
            local_addr,
            running,
            waker,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stops accepting, closes every open connection, and joins all
    /// threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.running.store(false, Ordering::Release);
        // Deterministic: the acceptor is parked in epoll_wait on
        // {listener, waker}; firing the waker returns it immediately.
        self.waker.wake();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadedWireServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

const TOKEN_WAKER: usize = 0;
const TOKEN_LISTENER: usize = 1;

#[cfg(unix)]
fn listener_fd(listener: &TcpListener) -> std::os::fd::RawFd {
    use std::os::fd::AsRawFd;
    listener.as_raw_fd()
}

#[cfg(not(unix))]
fn listener_fd(_listener: &TcpListener) -> std::os::fd::RawFd {
    unreachable!("the poll shim already refused to construct on this target")
}

fn accept_loop(
    listener: TcpListener,
    poller: poll::Poller,
    waker: Arc<poll::Waker>,
    client: Client,
    config: WireConfig,
    running: Arc<AtomicBool>,
) {
    let mut connections: Vec<Connection> = Vec::new();
    let mut events = poll::Events::with_capacity(8);
    while running.load(Ordering::Acquire) {
        if poller.wait(&mut events, None).is_err() {
            break;
        }
        waker.drain();
        if !running.load(Ordering::Acquire) {
            break;
        }
        if !events.iter().any(|e| e.token() == TOKEN_LISTENER) {
            continue;
        }
        loop {
            let (stream, _) = match listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // fd exhaustion (EMFILE/ENFILE) or similar: the
                    // pending connection keeps the listener readable, so
                    // breaking straight back into a level-triggered wait
                    // would spin at 100% CPU. Back off briefly; accepting
                    // resumes when descriptors free up.
                    std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                    break;
                }
            };
            // The listener is nonblocking, so accepted streams inherit
            // nothing useful — restore blocking semantics for the
            // per-connection thread.
            if stream.set_nonblocking(false).is_err() {
                continue;
            }
            // Small response frames + Nagle + delayed ACK = ~40 ms stalls.
            let _ = stream.set_nodelay(true);
            // Reap finished handlers before the cap check, so slots freed
            // by disconnects are reusable.
            let mut i = 0;
            while i < connections.len() {
                if connections[i].done.load(Ordering::Acquire) {
                    let finished = connections.swap_remove(i);
                    let _ = finished.handle.join();
                } else {
                    i += 1;
                }
            }
            client
                .runtime_stats()
                .wire_connections
                .set(connections.len() as u64);
            if connections.len() >= config.max_connections {
                refuse_stream(
                    stream,
                    connections.len(),
                    config.max_connections,
                    config.write_timeout,
                    client.runtime_stats(),
                );
                continue;
            }
            let stream = Arc::new(stream);
            let done = Arc::new(AtomicBool::new(false));
            let handle = {
                let client = client.clone();
                let config = config.clone();
                let done = Arc::clone(&done);
                let stream = Arc::clone(&stream);
                std::thread::Builder::new()
                    .name("quclassi-wire-conn".to_string())
                    // Handlers only frame, parse, and wait on the
                    // scheduler — a small stack keeps 1k threads cheap.
                    .stack_size(256 * 1024)
                    .spawn(move || {
                        serve_connection(&stream, &client, &config);
                        done.store(true, Ordering::Release);
                    })
            };
            match handle {
                Ok(handle) => {
                    connections.push(Connection {
                        handle,
                        stream,
                        done,
                    });
                    client
                        .runtime_stats()
                        .wire_connections
                        .set(connections.len() as u64);
                }
                Err(_) => {
                    // Thread exhaustion is saturation by another name.
                    // (The failed spawn dropped its closure, so this is
                    // the only reference again.)
                    if let Ok(stream) = Arc::try_unwrap(stream) {
                        refuse_stream(
                            stream,
                            connections.len(),
                            config.max_connections,
                            config.write_timeout,
                            client.runtime_stats(),
                        );
                    }
                }
            }
        }
    }
    // Closing the sockets unblocks every handler mid-read; then join.
    for connection in &connections {
        let _ = connection.stream.shutdown(Shutdown::Both);
    }
    for connection in connections {
        let _ = connection.handle.join();
    }
    client.runtime_stats().wire_connections.set(0);
}

fn serve_connection(stream: &TcpStream, client: &Client, config: &WireConfig) {
    if stream.set_read_timeout(config.read_timeout).is_err()
        || stream.set_write_timeout(config.write_timeout).is_err()
    {
        return;
    }
    // `&TcpStream` is `Read + Write`; all I/O goes through the shared
    // descriptor, no `try_clone`.
    let mut stream = stream;
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean disconnect
            Err(e) => {
                if e.kind() == std::io::ErrorKind::InvalidData {
                    // Oversized claim: tell the peer why before closing
                    // (framing cannot be resynchronised afterwards).
                    let response = error_response(&ServeError::Protocol(e.to_string())).to_string();
                    let _ = write_frame(&mut stream, response.as_bytes());
                }
                return; // deadline, reset, or poisoned framing
            }
        };
        let (response, response_slot) = match interpret(&payload, client) {
            WireAction::Respond(json) => (json, None),
            WireAction::Predict {
                model,
                features,
                id,
            } => {
                // Blocking evaluation: this thread *is* the connection,
                // so in-order waiting is the natural (and historical)
                // behaviour even for id-tagged requests.
                match client.submit_wire(&model, &features, None, trace_id_for(id.as_ref())) {
                    Ok(pending) => {
                        let slot = pending.trace_slot();
                        let json = match pending.wait() {
                            Ok(response) => prediction_to_json(&response),
                            Err(e) => error_response(&e),
                        };
                        (with_id(json, id), Some(slot))
                    }
                    Err(e) => (with_id(error_response(&e), id), None),
                }
            }
        };
        let write_started = Instant::now();
        if write_frame(&mut stream, response.to_string().as_bytes()).is_err() {
            return;
        }
        let _ = stream.flush();
        if let Some(slot) = response_slot {
            // The response bytes are in the kernel's hands: stamp the
            // write stage and record the request's completed span.
            client.finish_wire_write(&slot, write_started.elapsed().as_nanos() as u64);
        }
    }
}
