//! The bounded request queue: admission control at the front, micro-batch
//! draining at the back.
//!
//! The queue is the single coordination point between any number of
//! producer threads (client handles) and the one scheduler thread. Its two
//! defining behaviours:
//!
//! * **Backpressure, not buffering.** [`BoundedQueue::try_push`] rejects
//!   immediately when the queue is at capacity. An unbounded queue converts
//!   overload into unbounded latency and memory; a bounded one converts it
//!   into an explicit, retryable [`ServeError::Saturated`] signal at the
//!   edge, while admitted requests keep a predictable worst-case wait.
//! * **Batch-at-once draining.** [`BoundedQueue::pop_batch`] blocks until at
//!   least one item is queued, then keeps collecting until either the batch
//!   size target is met or the batching window expires, and hands the whole
//!   run to the scheduler in arrival order. A zero window means "drain
//!   whatever is there" — natural batching that never idles: under load the
//!   batch is whatever accumulated while the previous one was being
//!   computed.
//!
//! Closing the queue ([`BoundedQueue::close`]) makes every subsequent push
//! fail with [`ServeError::ShutDown`] while `pop_batch` continues to return
//! the already-admitted remainder (flushing immediately, without waiting
//! out the window) until the queue is empty — which is what makes graceful
//! shutdown lossless.

use crate::error::ServeError;
use crate::metrics::{FlushReason, Gauge};
use crate::mutation;
use crate::quclassi_sync::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

struct QueueState<T> {
    /// Queued items, each stamped with its admission time so the batching
    /// window can be measured from when the *oldest* request entered the
    /// queue — not from when the scheduler happened to start waiting.
    items: VecDeque<(Instant, T)>,
    closed: bool,
    peak_depth: usize,
}

/// A bounded MPSC queue with admission control and batched draining.
pub(crate) struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
    /// Mirrors the queue depth into the metrics registry; updated under
    /// the queue lock, so the gauge never drifts from the real depth.
    depth_gauge: Option<Gauge>,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` in-flight items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (validated upstream by `ServeConfig`).
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                peak_depth: 0,
            }),
            not_empty: Condvar::new(),
            capacity,
            depth_gauge: None,
        }
    }

    /// [`BoundedQueue::new`], mirroring the live depth into `gauge`.
    pub(crate) fn with_depth_gauge(capacity: usize, gauge: Gauge) -> Self {
        BoundedQueue {
            depth_gauge: Some(gauge),
            ..BoundedQueue::new(capacity)
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items.
    pub(crate) fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// High-water mark of the queue depth since construction.
    pub(crate) fn peak_depth(&self) -> usize {
        self.lock().peak_depth
    }

    /// Admits `item`, or rejects it when the queue is full (backpressure)
    /// or closed (shutdown). Never blocks.
    pub(crate) fn try_push(&self, item: T) -> Result<(), ServeError> {
        let notify_early = mutation::queue_notify_early();
        if notify_early {
            // Mutation point: notifying before the item is visible is the
            // classic lost wakeup — the consumer can check the queue under
            // the lock, find it empty, and then sleep through the only
            // notification, which already fired into thin air. Manifests
            // as a model-detected deadlock in tests/model_queue.rs.
            self.not_empty.notify_one();
        }
        let mut state = self.lock();
        if state.closed {
            return Err(ServeError::ShutDown);
        }
        if state.items.len() >= self.capacity {
            return Err(ServeError::Saturated {
                depth: state.items.len(),
                capacity: self.capacity,
            });
        }
        state.items.push_back((Instant::now(), item));
        state.peak_depth = state.peak_depth.max(state.items.len());
        if let Some(gauge) = &self.depth_gauge {
            gauge.set(state.items.len() as u64);
        }
        drop(state);
        if !notify_early {
            // One consumer (the scheduler); one wake is enough.
            self.not_empty.notify_one();
        }
        Ok(())
    }

    /// Blocks until at least one item is available, then drains up to
    /// `max_batch` items, waiting until at most `window` **after the
    /// oldest queued item was admitted** for the batch to fill.
    ///
    /// Measuring the window from enqueue time (not from when this call
    /// started waiting) bounds every admitted request's batching delay by
    /// `window` even when the scheduler was busy computing the previous
    /// batch while the request arrived: a request that has already waited
    /// out its window flushes immediately instead of waiting
    /// `window + previous-batch-compute`.
    ///
    /// Returns `None` only when the queue is closed *and* empty — the
    /// scheduler's signal to exit. When the queue is closed with items
    /// remaining, they are returned immediately (no window wait) with
    /// [`FlushReason::Close`].
    pub(crate) fn pop_batch(
        &self,
        max_batch: usize,
        window: Duration,
    ) -> Option<(Vec<T>, FlushReason)> {
        let mut state = self.lock();
        // Phase 1: wait for the first item (or close).
        loop {
            if !state.items.is_empty() {
                break;
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        // Phase 2: let the batch fill until the size target or the oldest
        // item's window deadline, whichever comes first. A deadline already
        // in the past (the request aged while the previous batch computed)
        // flushes at once, as does a closed queue.
        if !window.is_zero() {
            let deadline = state.items.front().expect("phase 1 saw an item").0 + window;
            while state.items.len() < max_batch && !state.closed {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = self
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        let closed = state.closed;
        let n = state.items.len().min(max_batch);
        let batch: Vec<T> = state.items.drain(..n).map(|(_, item)| item).collect();
        if let Some(gauge) = &self.depth_gauge {
            gauge.set(state.items.len() as u64);
        }
        let reason = if batch.len() >= max_batch {
            FlushReason::Size
        } else if closed {
            FlushReason::Close
        } else {
            FlushReason::Deadline
        };
        Some((batch, reason))
    }

    /// Closes the queue: every later `try_push` fails with
    /// [`ServeError::ShutDown`]; `pop_batch` drains the remainder and then
    /// returns `None`.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn saturation_rejects_with_depth_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(ServeError::Saturated { depth, capacity }) => {
                assert_eq!((depth, capacity), (2, 2));
            }
            other => panic!("expected saturation, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
        assert_eq!(q.peak_depth(), 2);
        // Draining frees capacity again.
        let (batch, _) = q.pop_batch(10, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![1, 2]);
        q.try_push(4).unwrap();
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn zero_window_drains_whatever_is_present() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.try_push(3).unwrap();
        let (batch, reason) = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![1, 2, 3]);
        assert_eq!(reason, FlushReason::Deadline);
    }

    #[test]
    fn size_target_flushes_without_waiting_out_the_window() {
        let q = BoundedQueue::new(8);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        let start = Instant::now();
        let (batch, reason) = q.pop_batch(4, Duration::from_secs(5)).unwrap();
        assert!(start.elapsed() < Duration::from_secs(1), "must not wait");
        assert_eq!(batch.len(), 4);
        assert_eq!(reason, FlushReason::Size);
    }

    #[test]
    fn window_collects_late_arrivals() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                q.try_push(1).unwrap();
            })
        };
        // A generous window lets the second item join the first batch.
        let (batch, _) = q.pop_batch(8, Duration::from_millis(500)).unwrap();
        producer.join().unwrap();
        assert_eq!(batch, vec![0, 1]);
    }

    #[test]
    fn close_drains_remainder_then_signals_exit() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(ServeError::ShutDown));
        // Remainder flushes immediately (no window wait), tagged Close.
        let start = Instant::now();
        let (batch, reason) = q.pop_batch(8, Duration::from_secs(5)).unwrap();
        assert!(start.elapsed() < Duration::from_secs(1));
        assert_eq!(batch, vec![1, 2]);
        assert_eq!(reason, FlushReason::Close);
        assert!(q.pop_batch(8, Duration::ZERO).is_none());
    }

    #[test]
    fn close_wakes_a_blocked_consumer() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(4, Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert!(consumer.join().unwrap().is_none());
    }

    #[test]
    fn window_is_measured_from_enqueue_not_from_pop() {
        // Regression: a request admitted while the scheduler was busy
        // computing the previous batch used to wait up to
        // `window + previous-batch-compute` — the deadline was measured
        // from when pop_batch started waiting. It must be measured from
        // the oldest item's admission.
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        // Simulate the scheduler being busy past the whole window.
        std::thread::sleep(Duration::from_millis(250));
        let start = Instant::now();
        let (batch, reason) = q.pop_batch(8, Duration::from_millis(200)).unwrap();
        assert!(
            start.elapsed() < Duration::from_millis(120),
            "expired window must flush immediately, waited {:?}",
            start.elapsed()
        );
        assert_eq!(batch, vec![1]);
        assert_eq!(reason, FlushReason::Deadline);
    }

    #[test]
    fn partially_elapsed_window_only_waits_the_remainder() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        std::thread::sleep(Duration::from_millis(200));
        let start = Instant::now();
        // 300 ms window, ~200 ms already burned while "computing": the
        // wait from here is the ~100 ms remainder, not a fresh 300 ms.
        let (batch, _) = q.pop_batch(8, Duration::from_millis(300)).unwrap();
        let waited = start.elapsed();
        assert!(
            waited < Duration::from_millis(250),
            "must wait only the window remainder, waited {waited:?}"
        );
        assert_eq!(batch, vec![1]);
    }

    #[test]
    fn arrival_order_is_preserved_across_batches() {
        let q = BoundedQueue::new(64);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        let (a, _) = q.pop_batch(4, Duration::ZERO).unwrap();
        let (b, _) = q.pop_batch(4, Duration::ZERO).unwrap();
        let (c, _) = q.pop_batch(4, Duration::ZERO).unwrap();
        assert_eq!(a, vec![0, 1, 2, 3]);
        assert_eq!(b, vec![4, 5, 6, 7]);
        assert_eq!(c, vec![8, 9]);
    }
}
