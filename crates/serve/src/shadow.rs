//! Shadow evaluation: mirror a deterministic fraction of live traffic onto
//! a candidate artifact without touching user-visible responses.
//!
//! A shadow is installed per runtime (at most one at a time — the online
//! learner evaluates one candidate per cycle). When a scheduler flush
//! contains a group for the shadowed model name, the flush *may* fan the
//! group's already-encoded angles out to the candidate a second time —
//! after every user slot has been fulfilled from the live model, on a
//! disjoint RNG stream. Users therefore receive responses that are
//! bit-identical to a shadow-disabled run; the candidate's predictions are
//! folded into the [`ShadowReport`] (volume, failures, label agreement,
//! and separate live/candidate batch-latency histograms) that feeds the
//! promotion gate.
//!
//! Mirroring is governed by a **deterministic rate accumulator**, not a
//! coin flip: with rate `r`, every flush adds `r` to a running credit and
//! mirrors exactly when the credit reaches 1 — so a rate of 0.25 mirrors
//! precisely every 4th eligible flush, and a fault-injection schedule
//! replays identically run after run.

use crate::metrics::{HistogramSnapshot, LatencyHistogram};
use quclassi_infer::CompiledModel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Point-in-time results of a shadow evaluation (see
/// [`crate::ServeRuntime::shadow_report`]).
#[derive(Clone, Debug)]
pub struct ShadowReport {
    /// Registry name whose traffic is mirrored.
    pub model: String,
    /// Caller-chosen tag (the online learner uses its cycle index).
    pub tag: u64,
    /// Requests mirrored onto the candidate.
    pub requests: u64,
    /// Flushed groups mirrored onto the candidate.
    pub batches: u64,
    /// Mirrored requests the candidate failed to evaluate. Any failure
    /// disqualifies a candidate: the same traffic succeeded on the live
    /// model.
    pub failures: u64,
    /// Mirrored requests where the candidate agreed with the live label.
    pub agreements: u64,
    /// Per-request latency of the *live* evaluation of mirrored groups
    /// (each request attributed the group's mean, batch-amortised).
    pub live_latency: HistogramSnapshot,
    /// Per-request latency of the candidate evaluation of the same groups.
    pub candidate_latency: HistogramSnapshot,
}

impl ShadowReport {
    /// Fraction of mirrored requests where candidate and live agreed
    /// (1.0 when nothing was mirrored — no evidence of disagreement).
    pub fn agreement_rate(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.agreements as f64 / self.requests as f64
        }
    }

    /// Candidate p99 over live p99 on the mirrored traffic (1.0 when there
    /// is no data; the live p99 is floored at 1µs so an idle-fast live
    /// model cannot produce an unbounded ratio).
    pub fn p99_ratio(&self) -> f64 {
        if self.requests == 0 {
            return 1.0;
        }
        let live = (self.live_latency.quantile_ns(0.99) as f64).max(1_000.0);
        self.candidate_latency.quantile_ns(0.99) as f64 / live
    }
}

/// Scheduler-facing state of one installed shadow.
#[derive(Debug)]
pub(crate) struct ShadowState {
    model: String,
    tag: u64,
    candidate: Arc<CompiledModel>,
    rate: f64,
    /// Mirroring credit; only the scheduler thread takes this lock.
    credit: Mutex<f64>,
    requests: AtomicU64,
    batches: AtomicU64,
    failures: AtomicU64,
    agreements: AtomicU64,
    live_latency: LatencyHistogram,
    candidate_latency: LatencyHistogram,
}

impl ShadowState {
    pub(crate) fn new(model: &str, candidate: CompiledModel, rate: f64, tag: u64) -> Self {
        ShadowState {
            model: model.to_string(),
            tag,
            candidate: Arc::new(candidate),
            rate,
            credit: Mutex::new(0.0),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            agreements: AtomicU64::new(0),
            live_latency: LatencyHistogram::new(),
            candidate_latency: LatencyHistogram::new(),
        }
    }

    pub(crate) fn model(&self) -> &str {
        &self.model
    }

    pub(crate) fn candidate(&self) -> &Arc<CompiledModel> {
        &self.candidate
    }

    /// Deterministic rate gate: accumulate `rate` per eligible flush and
    /// mirror whenever the credit crosses 1.
    pub(crate) fn should_mirror(&self) -> bool {
        let mut credit = self.credit.lock().unwrap_or_else(|e| e.into_inner());
        *credit += self.rate;
        if *credit >= 1.0 {
            *credit -= 1.0;
            true
        } else {
            false
        }
    }

    /// Records one successfully mirrored group.
    pub(crate) fn record_batch(
        &self,
        requests: u64,
        agreements: u64,
        live_elapsed: Duration,
        candidate_elapsed: Duration,
    ) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.requests.fetch_add(requests, Ordering::Relaxed);
        self.agreements.fetch_add(agreements, Ordering::Relaxed);
        if let (Some(live_ns), Some(cand_ns)) = (
            (live_elapsed.as_nanos() as u64).checked_div(requests),
            (candidate_elapsed.as_nanos() as u64).checked_div(requests),
        ) {
            for _ in 0..requests {
                self.live_latency.record_ns(live_ns);
                self.candidate_latency.record_ns(cand_ns);
            }
        }
    }

    /// Records a mirrored group the candidate failed to evaluate.
    pub(crate) fn record_failure(&self, requests: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.failures.fetch_add(requests, Ordering::Relaxed);
    }

    pub(crate) fn report(&self) -> ShadowReport {
        ShadowReport {
            model: self.model.clone(),
            tag: self.tag,
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            agreements: self.agreements.load(Ordering::Relaxed),
            live_latency: self.live_latency.snapshot(),
            candidate_latency: self.candidate_latency.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quclassi::model::{QuClassiConfig, QuClassiModel};
    use quclassi::swap_test::FidelityEstimator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn candidate() -> CompiledModel {
        let mut rng = StdRng::seed_from_u64(0);
        let model =
            QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
        CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap()
    }

    #[test]
    fn rate_accumulator_is_exact_and_deterministic() {
        let state = ShadowState::new("m", candidate(), 0.25, 0);
        let pattern: Vec<bool> = (0..12).map(|_| state.should_mirror()).collect();
        // Every 4th flush mirrors, starting at the 4th.
        let want: Vec<bool> = (1..=12).map(|i| i % 4 == 0).collect();
        assert_eq!(pattern, want);
        // Rate 1.0 mirrors every flush.
        let state = ShadowState::new("m", candidate(), 1.0, 0);
        assert!((0..8).all(|_| state.should_mirror()));
        // A second identically-configured state replays the same pattern.
        let again = ShadowState::new("m", candidate(), 0.25, 0);
        let replay: Vec<bool> = (0..12).map(|_| again.should_mirror()).collect();
        assert_eq!(replay, pattern);
    }

    #[test]
    fn fractional_rates_mirror_the_right_share() {
        let state = ShadowState::new("m", candidate(), 0.3, 0);
        let mirrored = (0..1000).filter(|_| state.should_mirror()).count() as i64;
        // The credit accumulator sums 0.3 a thousand times, so float
        // rounding may shift one firing across the boundary.
        assert!(
            (mirrored - 300).abs() <= 1,
            "rate 0.3 must mirror ~30%, got {mirrored}"
        );
    }

    #[test]
    fn report_aggregates_batches_and_agreement() {
        let state = ShadowState::new("m", candidate(), 1.0, 7);
        state.record_batch(4, 3, Duration::from_micros(40), Duration::from_micros(120));
        state.record_batch(2, 2, Duration::from_micros(20), Duration::from_micros(20));
        state.record_failure(3);
        let report = state.report();
        assert_eq!(report.tag, 7);
        assert_eq!(report.batches, 3);
        assert_eq!(report.requests, 6);
        assert_eq!(report.agreements, 5);
        assert_eq!(report.failures, 3);
        assert!((report.agreement_rate() - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(report.live_latency.count(), 6);
        assert_eq!(report.candidate_latency.count(), 6);
        // The candidate was slower on the mirrored traffic (30µs vs 10µs
        // per request at the tail), so the p99 ratio exceeds 1.
        assert!(report.p99_ratio() > 1.0);
    }

    #[test]
    fn empty_report_defaults_are_benign() {
        let state = ShadowState::new("m", candidate(), 0.5, 0);
        let report = state.report();
        assert_eq!(report.requests, 0);
        assert_eq!(report.agreement_rate(), 1.0);
        assert_eq!(report.p99_ratio(), 1.0);
    }
}
