//! The wire protocol: length-prefixed JSON over TCP, with request
//! multiplexing.
//!
//! A deliberately minimal, dependency-free protocol for driving a
//! [`ServeRuntime`](crate::runtime::ServeRuntime) from another process:
//!
//! * **Framing** — every message is a 4-byte big-endian length followed by
//!   that many bytes of UTF-8 JSON. Framing is independent of payload
//!   content, so malformed JSON never desynchronises the stream; frames
//!   whose *claimed* length exceeds [`MAX_FRAME_BYTES`] are rejected from
//!   the header alone, and payload buffers grow only as bytes actually
//!   arrive — a peer claiming a 16 MiB frame and then trickling (or
//!   sending nothing) pins at most one read-chunk of memory, not the
//!   claimed size.
//! * **Requests** — objects with an `"op"` field:
//!   `{"op":"predict","model":"iris","features":[0.1,…]}`,
//!   `{"op":"models"}`, `{"op":"metrics"}`, `{"op":"metrics_text"}`
//!   (Prometheus-style text exposition under `"text"`),
//!   `{"op":"trace","last":N}` (the `N` most recent completed request
//!   timelines — see [`crate::trace`]), `{"op":"ping"}`.
//! * **Request ids / multiplexing** — a request may carry an `"id"` field
//!   (any JSON value; clients normally use integers). The response echoes
//!   the same `"id"` verbatim. A connection may have **any number of
//!   requests in flight**, and responses to id-tagged requests may arrive
//!   **in any order** — the id, not arrival order, matches a response to
//!   its request. (In practice control ops answer immediately while
//!   predictions round-trip through the batching scheduler, so a pipelined
//!   burst observably reorders.) Requests without an `"id"` are answered
//!   without one, so a strictly one-at-a-time client — [`WireClient::call`]
//!   — needs no id bookkeeping.
//! * **Responses** — `{"ok":true,…}` on success;
//!   `{"ok":false,"kind":"…","error":"…"}` on failure, where `kind` is the
//!   stable [`ServeError::kind`] discriminator (`"saturated"` is the
//!   wire-level backpressure signal: back off and retry).
//!
//! Numbers are serialised with shortest-round-trip formatting, so the
//! probabilities and fidelities a remote client parses are bit-identical
//! to what an in-process [`Client`] receives.
//!
//! Two servers speak this protocol: the readiness-driven event-loop
//! [`WireServer`](crate::eventloop::WireServer) (the production frontend)
//! and the legacy thread-per-connection
//! [`ThreadedWireServer`](crate::threaded::ThreadedWireServer), kept as
//! the benchmark baseline the event loop is measured against. This module
//! owns everything both share: framing, request interpretation, response
//! construction, the robustness knobs ([`WireConfig`]), and the client.

use crate::error::ServeError;
use crate::json::Json;
use crate::metrics::RuntimeStats;
use crate::runtime::{Client, MetricsSnapshot, ServeResponse};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Upper bound on a single frame's payload, rejected from the length
/// header alone — before any payload is buffered.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Granularity of payload reads: buffers grow by at most this much per
/// read, so memory tracks *received* bytes, never the untrusted claimed
/// length.
pub(crate) const READ_CHUNK_BYTES: usize = 64 * 1024;

/// Pause after a persistent `accept` failure (`EMFILE`/`ENFILE` — the
/// process or system is out of file descriptors). The listener stays
/// readable while connections are pending, so a level-triggered poll
/// would otherwise re-report it instantly and turn the accept loop into
/// a 100%-CPU livelock; backing off keeps the server alive (and every
/// established connection served) until descriptors free up.
pub(crate) const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(10);

/// Robustness knobs of the TCP frontend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireConfig {
    /// Maximum simultaneously open connections; over-cap connections are
    /// answered with a retryable `saturated` error frame and closed.
    pub max_connections: usize,
    /// Idle deadline on the read side: a peer that makes no read progress
    /// for this long — including one that never sends a length header —
    /// is disconnected. `None` disables the deadline (trusted-network use
    /// only).
    pub read_timeout: Option<Duration>,
    /// Deadline for a peer to drain pending responses: a connection with
    /// buffered output that makes no write progress for this long is
    /// disconnected. `None` disables it.
    pub write_timeout: Option<Duration>,
    /// Number of event-loop shards of the
    /// [`WireServer`](crate::eventloop::WireServer): independent epoll
    /// loops, each owning a subset of the connections, all feeding the
    /// same micro-batching scheduler. (Ignored by the legacy
    /// thread-per-connection server.)
    pub shards: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            max_connections: 1024,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            shards: 1,
        }
    }
}

impl WireConfig {
    /// Reads the wire knobs from the environment on top of the defaults:
    /// `QUCLASSI_MAX_CONNECTIONS` (positive integer),
    /// `QUCLASSI_WIRE_TIMEOUT_MS` (milliseconds for both read and write;
    /// `0` disables the deadlines), and `QUCLASSI_WIRE_SHARDS` (positive
    /// integer number of event-loop shards).
    ///
    /// # Errors
    /// A variable that is set but malformed is rejected with
    /// [`ServeError::InvalidConfig`] — the same contract as
    /// `ServeConfig::from_env` and `QUCLASSI_THREADS`.
    pub fn from_env() -> Result<Self, ServeError> {
        let mut config = WireConfig::default();
        if let Some(raw) = std::env::var("QUCLASSI_MAX_CONNECTIONS")
            .ok()
            .filter(|v| !v.trim().is_empty())
        {
            config.max_connections = match raw.trim().parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    return Err(ServeError::InvalidConfig(format!(
                        "QUCLASSI_MAX_CONNECTIONS must be a positive integer, got '{raw}'"
                    )))
                }
            };
        }
        if let Some(raw) = std::env::var("QUCLASSI_WIRE_TIMEOUT_MS")
            .ok()
            .filter(|v| !v.trim().is_empty())
        {
            let ms: u64 = raw.trim().parse().map_err(|_| {
                ServeError::InvalidConfig(format!(
                    "QUCLASSI_WIRE_TIMEOUT_MS must be a non-negative integer \
                     (milliseconds; 0 disables the deadline), got '{raw}'"
                ))
            })?;
            let timeout = (ms > 0).then(|| Duration::from_millis(ms));
            config.read_timeout = timeout;
            config.write_timeout = timeout;
        }
        if let Some(raw) = std::env::var("QUCLASSI_WIRE_SHARDS")
            .ok()
            .filter(|v| !v.trim().is_empty())
        {
            config.shards = match raw.trim().parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    return Err(ServeError::InvalidConfig(format!(
                        "QUCLASSI_WIRE_SHARDS must be a positive integer, got '{raw}'"
                    )))
                }
            };
        }
        config.validate()?;
        Ok(config)
    }

    /// Checks the invariants (`max_connections ≥ 1`, `shards ≥ 1`,
    /// non-zero deadlines).
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_connections == 0 {
            return Err(ServeError::InvalidConfig(
                "max_connections must be at least 1".to_string(),
            ));
        }
        if self.shards == 0 {
            return Err(ServeError::InvalidConfig(
                "shards must be at least 1".to_string(),
            ));
        }
        for (name, timeout) in [
            ("read_timeout", self.read_timeout),
            ("write_timeout", self.write_timeout),
        ] {
            if timeout == Some(Duration::ZERO) {
                // set_read_timeout(Some(ZERO)) is a platform error; the
                // explicit "disabled" spelling is None.
                return Err(ServeError::InvalidConfig(format!(
                    "{name} must be positive (use None to disable the deadline)"
                )));
            }
        }
        Ok(())
    }
}

/// Writes one length-prefixed frame. Header and payload go out in a
/// single write so a request is never split across two TCP segments — a
/// two-segment frame interacts with Nagle's algorithm and delayed ACKs to
/// add ~40 ms per round trip on loopback.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&len.to_be_bytes());
    framed.extend_from_slice(payload);
    writer.write_all(&framed)?;
    writer.flush()
}

/// Appends `payload` as one length-prefixed frame to a byte buffer
/// (the event loop's enqueue path — same bytes as [`write_frame`], no
/// syscall).
pub(crate) fn append_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("serialised responses fit u32");
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(payload);
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer hung up); a mid-frame EOF is an error.
///
/// A frame whose claimed length exceeds [`MAX_FRAME_BYTES`] is rejected
/// from the header alone. The payload buffer grows in
/// `READ_CHUNK_BYTES` (64 KiB) steps *as bytes arrive*: the untrusted length
/// header never drives an allocation, so a peer claiming a maximum-size
/// frame and then stalling pins one read chunk, not 16 MiB. (This used to
/// allocate the full claimed size up front — a handful of idle
/// connections each claiming a max frame could pin gigabytes.)
pub fn read_frame(reader: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match reader.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut payload = Vec::new();
    while payload.len() < len {
        let target = (payload.len() + READ_CHUNK_BYTES).min(len);
        let start = payload.len();
        payload.resize(target, 0);
        let mut at = start;
        while at < target {
            match reader.read(&mut payload[at..target])? {
                0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "EOF inside frame payload",
                    ))
                }
                n => at += n,
            }
        }
    }
    Ok(Some(payload))
}

/// Incremental length-prefixed frame assembly for nonblocking sockets.
///
/// Bytes are [`FrameDecoder::extend`]ed as they arrive (in whatever
/// chunking the network produced — mid-header, mid-payload, several frames
/// at once) and complete frames are popped with
/// [`FrameDecoder::next_frame`]. By construction the decoder buffers only
/// bytes that were actually received: the claimed length in a frame header
/// is *checked* (frames above [`MAX_FRAME_BYTES`] are rejected as soon as
/// the 4 header bytes are in) but never allocated for.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already handed out as frames, compacted lazily.
    pos: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends newly received bytes.
    ///
    /// # Errors
    /// Fails when the pending frame's header claims more than
    /// [`MAX_FRAME_BYTES`]; the connection should be answered with a
    /// protocol error and closed (the stream cannot be resynchronised).
    pub fn extend(&mut self, bytes: &[u8]) -> Result<(), ServeError> {
        self.buf.extend_from_slice(bytes);
        if let Some(claimed) = self.pending_claim() {
            if claimed > MAX_FRAME_BYTES {
                return Err(ServeError::Protocol(format!(
                    "frame of {claimed} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
                )));
            }
        }
        Ok(())
    }

    /// The claimed payload length of the frame currently being assembled,
    /// once its 4 header bytes are in.
    fn pending_claim(&self) -> Option<usize> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return None;
        }
        let header: [u8; 4] = self.buf[self.pos..self.pos + 4]
            .try_into()
            .expect("4 bytes");
        Some(u32::from_be_bytes(header) as usize)
    }

    /// Pops the next complete frame's payload, if one has fully arrived.
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        let len = self.pending_claim()?;
        let avail = self.buf.len() - self.pos;
        if avail < 4 + len {
            return None;
        }
        let frame = self.buf[self.pos + 4..self.pos + 4 + len].to_vec();
        self.pos += 4 + len;
        // Compact once the dead prefix dominates, so the buffer cannot
        // creep upward across many frames.
        if self.pos >= READ_CHUNK_BYTES || self.pos == self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Some(frame)
    }

    /// Number of received-but-unconsumed bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Capacity of the internal buffer — what the decoder actually pins.
    /// Tracks received bytes (plus amortised growth slack), never the
    /// claimed frame length; the trickle-attack regression test pins this.
    pub fn buffer_capacity(&self) -> usize {
        self.buf.capacity()
    }
}

/// What a received frame asks the server to do: answer immediately
/// (control ops, malformed requests), or submit a prediction whose
/// response arrives asynchronously from the scheduler.
pub(crate) enum WireAction {
    /// A complete response, ready to send (already id-tagged).
    Respond(Json),
    /// A well-formed predict request: submit it, echo `id` on completion.
    Predict {
        /// Registry model name.
        model: String,
        /// Raw feature vector (validated at admission).
        features: Vec<f64>,
        /// The request's `"id"` value, echoed verbatim on the response.
        id: Option<Json>,
    },
}

/// Interprets one frame payload. Control ops (`ping`/`models`/`metrics`/
/// `metrics_text`/`trace`) and every error path produce an immediate
/// [`WireAction::Respond`];
/// well-formed predict requests become [`WireAction::Predict`] so the
/// caller chooses between blocking evaluation (threaded server) and
/// submit-and-multiplex (event loop).
pub(crate) fn interpret(payload: &[u8], client: &Client) -> WireAction {
    let request = match std::str::from_utf8(payload)
        .map_err(|_| ServeError::Protocol("frame is not UTF-8".to_string()))
        .and_then(Json::parse)
    {
        Ok(v) => v,
        // The id cannot be recovered from an unparsable frame.
        Err(e) => return WireAction::Respond(error_response(&e)),
    };
    let id = request.get("id").cloned();
    let respond = |json: Json| WireAction::Respond(with_id(json, id.clone()));
    let Some(op) = request.get("op").and_then(Json::as_str) else {
        return respond(error_response(&ServeError::Protocol(
            "request must be an object with a string 'op' field".to_string(),
        )));
    };
    match op {
        "ping" => respond(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("op", Json::str("ping")),
        ])),
        "models" => {
            let models = client
                .models()
                .into_iter()
                .map(|(name, version)| {
                    Json::obj(vec![
                        ("name", Json::str(name)),
                        ("version", Json::Num(version as f64)),
                    ])
                })
                .collect();
            respond(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("models", Json::Arr(models)),
            ]))
        }
        "metrics" => respond(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("metrics", metrics_to_json(&client.metrics())),
        ])),
        "metrics_text" => respond(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("text", Json::str(client.exposition())),
        ])),
        "trace" => {
            let last = request
                .get("last")
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .unwrap_or_else(|| client.trace_capacity());
            let spans = client
                .traces(last)
                .into_iter()
                .map(|s| span_to_json(&s))
                .collect();
            respond(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("capacity", Json::Num(client.trace_capacity() as f64)),
                ("recorded", Json::Num(client.traces_recorded() as f64)),
                ("spans", Json::Arr(spans)),
            ]))
        }
        "predict" => {
            let Some(model) = request.get("model").and_then(Json::as_str) else {
                return respond(error_response(&ServeError::Protocol(
                    "predict needs a string 'model' field".to_string(),
                )));
            };
            let Some(features) = request.get("features").and_then(Json::as_arr) else {
                return respond(error_response(&ServeError::Protocol(
                    "predict needs a 'features' array".to_string(),
                )));
            };
            let mut x = Vec::with_capacity(features.len());
            for item in features {
                match item.as_f64() {
                    Some(v) => x.push(v),
                    None => {
                        return respond(error_response(&ServeError::Protocol(
                            "'features' must contain only numbers".to_string(),
                        )))
                    }
                }
            }
            WireAction::Predict {
                model: model.to_string(),
                features: x,
                id,
            }
        }
        other => respond(error_response(&ServeError::Protocol(format!(
            "unknown op '{other}'"
        )))),
    }
}

/// Derives a trace id from a request's `"id"`: a non-negative integral
/// number is used verbatim (so a client can look up its own request in the
/// trace output directly); anything else hashes stably; an untagged
/// request gets `None` (the runtime auto-assigns).
pub(crate) fn trace_id_for(id: Option<&Json>) -> Option<u64> {
    let id = id?;
    match id.as_u64() {
        Some(n) => Some(n),
        None => Some(crate::trace::hash_trace_id(&id.to_string())),
    }
}

/// Renders one trace span for the wire `trace` op.
fn span_to_json(s: &crate::trace::TraceSpan) -> Json {
    Json::obj(vec![
        ("trace_id", Json::Num(s.trace_id as f64)),
        ("encode_ns", Json::Num(s.encode_ns as f64)),
        ("queue_wait_ns", Json::Num(s.queue_wait_ns as f64)),
        ("assemble_ns", Json::Num(s.assemble_ns as f64)),
        ("compute_ns", Json::Num(s.compute_ns as f64)),
        ("write_ns", Json::Num(s.write_ns as f64)),
        ("total_ns", Json::Num(s.total_ns as f64)),
        ("batch_size", Json::Num(s.batch_size as f64)),
    ])
}

/// Echoes a request's `"id"` onto a response object (the multiplexing
/// contract: responses are matched by id, not arrival order).
pub(crate) fn with_id(mut response: Json, id: Option<Json>) -> Json {
    if let (Json::Obj(fields), Some(id)) = (&mut response, id) {
        fields.push(("id".to_string(), id));
    }
    response
}

pub(crate) fn error_response(e: &ServeError) -> Json {
    let mut fields = vec![
        ("ok", Json::Bool(false)),
        ("kind", Json::str(e.kind())),
        ("error", Json::str(e.to_string())),
    ];
    if let ServeError::Saturated { depth, capacity } = e {
        // Carry the backpressure detail so remote clients reconstruct the
        // exact error (and its retryability) a local client would see.
        fields.push(("depth", Json::Num(*depth as f64)));
        fields.push(("capacity", Json::Num(*capacity as f64)));
    }
    Json::obj(fields)
}

/// Answers an over-cap connection with a retryable `saturated` error frame
/// and closes it, counting the refusal — and, separately, a refusal whose
/// error frame could not be delivered: a peer that never saw the
/// backpressure signal is operationally different from a served refusal,
/// so the failure is counted in [`RuntimeStats`] rather than silently
/// discarded (it used to be dropped on the floor).
pub(crate) fn refuse_stream(
    mut stream: TcpStream,
    open: usize,
    capacity: usize,
    write_timeout: Option<Duration>,
    stats: &RuntimeStats,
) {
    stats.wire_refusals.inc();
    let response = error_response(&ServeError::Saturated {
        depth: open,
        capacity,
    });
    let delivered = stream.set_write_timeout(write_timeout).is_ok()
        && write_frame(&mut stream, response.to_string().as_bytes()).is_ok();
    if !delivered {
        stats.refusal_write_failures.inc();
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Reconstructs a [`ServeError`] from a wire error response, preserving
/// the `kind` contract: `"saturated"` maps back to a retryable
/// [`ServeError::Saturated`], `"bad_request"` to a client-attributable
/// model error, and so on. Only `"model_error"` (a server-internal model
/// failure whose concrete cause cannot cross the wire) degrades to
/// [`ServeError::Io`].
pub(crate) fn error_from_wire(response: &Json, fallback_model: &str) -> ServeError {
    let message = response
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or("malformed error response")
        .to_string();
    let kind = response.get("kind").and_then(Json::as_str).unwrap_or("");
    match kind {
        "saturated" => ServeError::Saturated {
            depth: response.get("depth").and_then(Json::as_u64).unwrap_or(0) as usize,
            capacity: response.get("capacity").and_then(Json::as_u64).unwrap_or(0) as usize,
        },
        "shutdown" => ServeError::ShutDown,
        "unknown_model" => ServeError::UnknownModel(fallback_model.to_string()),
        "invalid_config" => ServeError::InvalidConfig(message),
        "protocol" => ServeError::Protocol(message),
        "bad_request" => ServeError::Model(quclassi::error::QuClassiError::InvalidData(message)),
        other => ServeError::Io(format!("server error ({other}): {message}")),
    }
}

pub(crate) fn prediction_to_json(response: &ServeResponse) -> Json {
    let p = &response.prediction;
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("model", Json::str(response.model.clone())),
        ("version", Json::Num(response.version as f64)),
        ("label", Json::Num(p.label as f64)),
        ("probabilities", Json::nums(&p.probabilities)),
        ("fidelities", Json::nums(&p.fidelities)),
        ("confidence", Json::Num(p.confidence())),
        ("margin", Json::Num(p.margin())),
    ])
}

fn metrics_to_json(m: &MetricsSnapshot) -> Json {
    let models = m
        .models
        .iter()
        .map(|mm| {
            Json::obj(vec![
                ("name", Json::str(mm.name.clone())),
                ("version", Json::Num(mm.version as f64)),
                ("admitted", Json::Num(mm.stats.admitted as f64)),
                ("completed", Json::Num(mm.stats.completed as f64)),
                ("failed", Json::Num(mm.stats.failed as f64)),
                ("rejected", Json::Num(mm.stats.rejected as f64)),
                ("p50_us", Json::Num(mm.stats.latency.p50_us())),
                ("p99_us", Json::Num(mm.stats.latency.p99_us())),
                ("cache_hit_rate", Json::Num(mm.cache.hit_rate())),
                ("cache_entries", Json::Num(mm.cache.entries as f64)),
                ("cache_evictions", Json::Num(mm.cache.evictions as f64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("uptime_us", Json::Num(m.uptime.as_micros() as f64)),
        ("queue_depth", Json::Num(m.queue_depth as f64)),
        ("queue_capacity", Json::Num(m.queue_capacity as f64)),
        ("peak_queue_depth", Json::Num(m.peak_queue_depth as f64)),
        ("admitted", Json::Num(m.admitted as f64)),
        ("rejected", Json::Num(m.rejected as f64)),
        ("completed", Json::Num(m.completed as f64)),
        ("failed", Json::Num(m.failed as f64)),
        ("batches", Json::Num(m.batches as f64)),
        ("mean_batch_occupancy", Json::Num(m.mean_batch_occupancy())),
        ("flush_on_size", Json::Num(m.flush_on_size as f64)),
        ("flush_on_deadline", Json::Num(m.flush_on_deadline as f64)),
        ("flush_on_close", Json::Num(m.flush_on_close as f64)),
        ("wire_refusals", Json::Num(m.wire_refusals as f64)),
        (
            "refusal_write_failures",
            Json::Num(m.refusal_write_failures as f64),
        ),
        ("draining_models", Json::Num(m.draining_models as f64)),
        ("promotions", Json::Num(m.promotions as f64)),
        ("rollbacks", Json::Num(m.rollbacks as f64)),
        (
            "candidates_rejected",
            Json::Num(m.candidates_rejected as f64),
        ),
        ("train_cycles", Json::Num(m.train_cycles as f64)),
        ("learner_panics", Json::Num(m.learner_panics as f64)),
        ("shadow_batches", Json::Num(m.shadow_batches as f64)),
        ("shadow_requests", Json::Num(m.shadow_requests as f64)),
        ("throughput_rps", Json::Num(m.throughput_rps())),
        ("in_flight", Json::Num(m.in_flight as f64)),
        ("p50_us", Json::Num(m.latency.p50_us())),
        ("p90_us", Json::Num(m.latency.p90_us())),
        ("p99_us", Json::Num(m.latency.p99_us())),
        ("min_us", Json::Num(m.latency.min_ns() as f64 / 1_000.0)),
        ("max_us", Json::Num(m.latency.max_ns() as f64 / 1_000.0)),
        ("stages", stages_to_json(&m.stages)),
        ("models", Json::Arr(models)),
    ])
}

/// Renders the per-stage latency breakdown for the `metrics` op.
fn stages_to_json(stages: &crate::metrics::StageLatencies) -> Json {
    let stage = |snap: &crate::metrics::HistogramSnapshot| {
        Json::obj(vec![
            ("count", Json::Num(snap.count() as f64)),
            ("mean_us", Json::Num(snap.mean_ns() / 1_000.0)),
            ("p50_us", Json::Num(snap.p50_us())),
            ("p99_us", Json::Num(snap.p99_us())),
        ])
    };
    Json::obj(vec![
        ("encode", stage(&stages.encode)),
        ("queue_wait", stage(&stages.queue_wait)),
        ("assemble", stage(&stages.assemble)),
        ("compute", stage(&stages.compute)),
        ("write", stage(&stages.write)),
    ])
}

/// A prediction parsed back from the wire (see [`WireClient::predict`]).
#[derive(Clone, Debug, PartialEq)]
pub struct WirePrediction {
    /// Model name echoed by the server.
    pub model: String,
    /// Version that served the request.
    pub version: u64,
    /// Predicted label.
    pub label: usize,
    /// Softmax probabilities (bit-identical to in-process serving).
    pub probabilities: Vec<f64>,
    /// Raw per-class fidelities (bit-identical to in-process serving).
    pub fidelities: Vec<f64>,
}

impl WirePrediction {
    /// Parses a successful predict response; errors reconstruct their
    /// [`ServeError`] kinds via the wire `kind` contract.
    pub fn from_response(response: &Json, fallback_model: &str) -> Result<Self, ServeError> {
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(error_from_wire(response, fallback_model));
        }
        let parse = || -> Option<WirePrediction> {
            Some(WirePrediction {
                model: response.get("model")?.as_str()?.to_string(),
                version: response.get("version")?.as_u64()?,
                label: response.get("label")?.as_u64()? as usize,
                probabilities: response
                    .get("probabilities")?
                    .as_arr()?
                    .iter()
                    .map(Json::as_f64)
                    .collect::<Option<Vec<f64>>>()?,
                fidelities: response
                    .get("fidelities")?
                    .as_arr()?
                    .iter()
                    .map(Json::as_f64)
                    .collect::<Option<Vec<f64>>>()?,
            })
        };
        parse()
            .ok_or_else(|| ServeError::Protocol(format!("malformed predict response: {response}")))
    }
}

/// A minimal blocking client for the wire protocol (used by tests, the
/// serving example, and as a reference implementation for other
/// languages). Supports both one-at-a-time calls ([`WireClient::call`],
/// [`WireClient::predict`]) and id-tagged pipelining
/// ([`WireClient::send_predict`] / [`WireClient::recv_response`]): send
/// any number of requests without waiting, then match responses by id in
/// whatever order the server delivers them.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    next_id: u64,
}

impl WireClient {
    /// Connects to a wire server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        // Request/response over small frames is exactly the shape Nagle's
        // algorithm penalises.
        stream.set_nodelay(true)?;
        Ok(WireClient { stream, next_id: 1 })
    }

    /// Sends one request object and reads one response object (no id;
    /// strictly one request in flight).
    pub fn call(&mut self, request: &Json) -> Result<Json, ServeError> {
        write_frame(&mut self.stream, request.to_string().as_bytes())?;
        let (_, response) = self.recv_response()?;
        Ok(response)
    }

    /// Pipelines a predict request: writes the frame tagged with a fresh
    /// id and returns immediately — match the response by id via
    /// [`WireClient::recv_response`].
    pub fn send_predict(&mut self, model: &str, x: &[f64]) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Json::obj(vec![
            ("op", Json::str("predict")),
            ("model", Json::str(model)),
            ("features", Json::nums(x)),
            ("id", Json::Num(id as f64)),
        ]);
        write_frame(&mut self.stream, request.to_string().as_bytes())?;
        Ok(id)
    }

    /// Pipelines an arbitrary request object, tagging it with a fresh id.
    pub fn send_request(&mut self, request: &Json) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let tagged = with_id(request.clone(), Some(Json::Num(id as f64)));
        write_frame(&mut self.stream, tagged.to_string().as_bytes())?;
        Ok(id)
    }

    /// Blocks for the next response frame, returning its echoed id (if
    /// any) and the parsed response object.
    pub fn recv_response(&mut self) -> Result<(Option<u64>, Json), ServeError> {
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| ServeError::Io("server closed the connection".to_string()))?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| ServeError::Protocol("response is not UTF-8".to_string()))?;
        let response = Json::parse(text)?;
        let id = response.get("id").and_then(Json::as_u64);
        Ok((id, response))
    }

    /// Round-trips a ping.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        let response = self.call(&Json::obj(vec![("op", Json::str("ping"))]))?;
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(())
        } else {
            Err(ServeError::Protocol(format!("unexpected pong: {response}")))
        }
    }

    /// Requests a prediction, surfacing server-side errors as their
    /// [`ServeError`] kinds.
    pub fn predict(&mut self, model: &str, x: &[f64]) -> Result<WirePrediction, ServeError> {
        let request = Json::obj(vec![
            ("op", Json::str("predict")),
            ("model", Json::str(model)),
            ("features", Json::nums(x)),
        ]);
        let response = self.call(&request)?;
        WirePrediction::from_response(&response, model)
    }

    /// Fetches the server's metrics object.
    pub fn metrics(&mut self) -> Result<Json, ServeError> {
        let response = self.call(&Json::obj(vec![("op", Json::str("metrics"))]))?;
        response
            .get("metrics")
            .cloned()
            .ok_or_else(|| ServeError::Protocol(format!("malformed metrics: {response}")))
    }

    /// Fetches the server's Prometheus-style text exposition.
    pub fn metrics_text(&mut self) -> Result<String, ServeError> {
        let response = self.call(&Json::obj(vec![("op", Json::str("metrics_text"))]))?;
        response
            .get("text")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ServeError::Protocol(format!("malformed metrics_text: {response}")))
    }

    /// Fetches the server's most recent `last` completed request
    /// timelines (the `trace` op), oldest first.
    pub fn trace(&mut self, last: usize) -> Result<Json, ServeError> {
        let response = self.call(&Json::obj(vec![
            ("op", Json::str("trace")),
            ("last", Json::Num(last as f64)),
        ]))?;
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(error_from_wire(&response, ""));
        }
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_error_kinds_reconstruct_their_serve_errors() {
        // The round trip ServeError → error_response → error_from_wire
        // must preserve kind() and is_retryable() — the contract remote
        // clients branch on.
        let cases: Vec<ServeError> = vec![
            ServeError::Saturated {
                depth: 9,
                capacity: 16,
            },
            ServeError::ShutDown,
            ServeError::UnknownModel("m".into()),
            ServeError::InvalidConfig("bad knob".into()),
            ServeError::Protocol("junk".into()),
            ServeError::Model(quclassi::error::QuClassiError::InvalidData("nan".into())),
        ];
        for original in cases {
            let reconstructed = error_from_wire(&error_response(&original), "m");
            assert_eq!(reconstructed.kind(), original.kind());
            assert_eq!(reconstructed.is_retryable(), original.is_retryable());
        }
        // Saturation detail survives the wire.
        let reconstructed = error_from_wire(
            &error_response(&ServeError::Saturated {
                depth: 9,
                capacity: 16,
            }),
            "m",
        );
        assert_eq!(
            reconstructed,
            ServeError::Saturated {
                depth: 9,
                capacity: 16
            }
        );
        // Internal model failures (whose concrete cause cannot cross the
        // wire) degrade to Io, which is still non-retryable.
        let internal = error_from_wire(
            &error_response(&ServeError::Model(
                quclassi::error::QuClassiError::InvalidConfig("c".into()),
            )),
            "m",
        );
        assert!(matches!(internal, ServeError::Io(_)));
        assert!(!internal.is_retryable());
    }

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, "ψ∿".as_bytes()).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), "ψ∿".as_bytes());
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
        // append_frame produces byte-identical framing to write_frame.
        let mut appended = Vec::new();
        append_frame(&mut appended, b"hello");
        append_frame(&mut appended, b"");
        append_frame(&mut appended, "ψ∿".as_bytes());
        assert_eq!(appended, buf);
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors() {
        // EOF inside the header.
        let mut cursor: &[u8] = &[0u8, 0];
        assert!(read_frame(&mut cursor).is_err());
        // EOF inside the payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = &buf[..];
        assert!(read_frame(&mut cursor).is_err());
        // Length prefix above the limit, rejected before allocation.
        let huge = (MAX_FRAME_BYTES as u32 + 1).to_be_bytes();
        let mut cursor = &huge[..];
        assert!(read_frame(&mut cursor).is_err());
    }

    /// A reader that reveals how much `read_frame` asks for at once — the
    /// observable difference between allocate-the-claim-up-front (one
    /// claimed-size read) and incremental growth (chunked reads).
    struct ChunkSpy<'a> {
        data: &'a [u8],
        max_requested: usize,
    }

    impl Read for ChunkSpy<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.max_requested = self.max_requested.max(buf.len());
            let n = buf.len().min(self.data.len());
            buf[..n].copy_from_slice(&self.data[..n]);
            self.data = &self.data[n..];
            Ok(n)
        }
    }

    #[test]
    fn read_frame_grows_with_received_bytes_not_the_claimed_length() {
        // Regression for the trickle attack: the payload buffer used to be
        // allocated at the untrusted claimed length before any payload
        // arrived (16 MiB per idle connection). The incremental reader
        // never requests (= never allocates) more than one chunk at a
        // time.
        let payload = vec![7u8; 1_000_000];
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        let mut spy = ChunkSpy {
            data: &framed,
            max_requested: 0,
        };
        let got = read_frame(&mut spy).unwrap().unwrap();
        assert_eq!(got, payload);
        assert!(
            spy.max_requested <= READ_CHUNK_BYTES,
            "read_frame requested {} bytes at once — buffering is driven \
             by the claimed length again",
            spy.max_requested
        );
    }

    #[test]
    fn frame_decoder_assembles_across_arbitrary_splits() {
        // Three frames, fed at every possible byte boundary: the decoder
        // must produce identical frames regardless of chunking.
        let mut stream_bytes = Vec::new();
        write_frame(&mut stream_bytes, b"alpha").unwrap();
        write_frame(&mut stream_bytes, b"").unwrap();
        write_frame(&mut stream_bytes, "βγ".as_bytes()).unwrap();
        for split in 0..=stream_bytes.len() {
            let mut decoder = FrameDecoder::new();
            let mut frames = Vec::new();
            for part in [&stream_bytes[..split], &stream_bytes[split..]] {
                decoder.extend(part).unwrap();
                while let Some(frame) = decoder.next_frame() {
                    frames.push(frame);
                }
            }
            assert_eq!(
                frames,
                vec![b"alpha".to_vec(), b"".to_vec(), "βγ".as_bytes().to_vec()],
                "split at byte {split}"
            );
        }
        // Byte-at-a-time: the worst chunking the network can produce.
        let mut decoder = FrameDecoder::new();
        let mut frames = Vec::new();
        for byte in &stream_bytes {
            decoder.extend(std::slice::from_ref(byte)).unwrap();
            while let Some(frame) = decoder.next_frame() {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 3);
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn frame_decoder_rejects_oversized_claims_without_buffering_them() {
        let mut decoder = FrameDecoder::new();
        let claim = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes();
        // Header arrives split: no rejection until the claim is complete.
        decoder.extend(&claim[..2]).unwrap();
        let err = decoder.extend(&claim[2..]).unwrap_err();
        assert_eq!(err.kind(), "protocol");
    }

    #[test]
    fn frame_decoder_pins_received_bytes_not_claimed_bytes() {
        // The trickle attack, decoder-shaped: claim MAX_FRAME_BYTES, send
        // a handful of payload bytes, go idle. The decoder must hold the
        // arrived bytes only.
        let mut decoder = FrameDecoder::new();
        let claim = (MAX_FRAME_BYTES as u32).to_be_bytes();
        decoder.extend(&claim).unwrap();
        decoder.extend(&[0u8; 10]).unwrap();
        assert_eq!(decoder.buffered(), 14);
        assert!(
            decoder.buffer_capacity() < 1024 * 1024,
            "decoder pinned {} bytes for a frame of which only 14 arrived",
            decoder.buffer_capacity()
        );
        assert!(decoder.next_frame().is_none());
    }

    #[test]
    fn frame_decoder_compacts_consumed_prefixes() {
        let mut decoder = FrameDecoder::new();
        let mut frame = Vec::new();
        write_frame(&mut frame, &vec![3u8; 32 * 1024]).unwrap();
        for _ in 0..64 {
            decoder.extend(&frame).unwrap();
            assert!(decoder.next_frame().is_some());
        }
        assert_eq!(decoder.buffered(), 0);
        assert!(
            decoder.buffer_capacity() <= 4 * frame.len(),
            "dead prefix never compacted: capacity {}",
            decoder.buffer_capacity()
        );
    }

    #[test]
    fn refusal_write_failures_are_counted_not_discarded() {
        // Regression: handle_saturation used to discard the write_frame
        // error, making a refused client that never received the frame
        // indistinguishable from a served refusal.
        let stats = RuntimeStats::default();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // A healthy peer: refusal delivered, no failure counted.
        let peer = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        refuse_stream(server_side, 3, 2, Some(Duration::from_secs(1)), &stats);
        let mut peer_reader = peer;
        let frame = read_frame(&mut peer_reader).unwrap().unwrap();
        let response = Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
        assert_eq!(
            response.get("kind").and_then(Json::as_str),
            Some("saturated")
        );
        assert_eq!(stats.wire_refusals.get(), 1);
        assert_eq!(stats.refusal_write_failures.get(), 0);

        // A peer whose socket is already dead on the server side: the
        // refusal write fails deterministically (our half is shut down)
        // and must be counted.
        let _peer2 = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.shutdown(std::net::Shutdown::Both).unwrap();
        refuse_stream(server_side, 3, 2, Some(Duration::from_secs(1)), &stats);
        assert_eq!(stats.wire_refusals.get(), 2);
        assert_eq!(stats.refusal_write_failures.get(), 1);
    }

    #[test]
    fn ids_echo_verbatim_on_responses_and_errors() {
        use crate::runtime::{ServeConfig, ServeRuntime};
        use quclassi_sim::batch::BatchExecutor;
        let runtime =
            ServeRuntime::start(ServeConfig::default(), BatchExecutor::single_threaded(0)).unwrap();
        let client = runtime.client();
        // Control op echoes a numeric id.
        let action = interpret(br#"{"op":"ping","id":42}"#, &client);
        let WireAction::Respond(response) = action else {
            panic!("ping is a control op");
        };
        assert_eq!(response.get("id").and_then(Json::as_u64), Some(42));
        // Errors echo the id too (a pipelined client must be able to match
        // failures to requests).
        let action = interpret(br#"{"op":"teleport","id":7}"#, &client);
        let WireAction::Respond(response) = action else {
            panic!("unknown op responds immediately");
        };
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(response.get("id").and_then(Json::as_u64), Some(7));
        // Non-numeric ids are legal and echo verbatim.
        let action = interpret(br#"{"op":"ping","id":"req-a"}"#, &client);
        let WireAction::Respond(response) = action else {
            panic!("ping is a control op");
        };
        assert_eq!(response.get("id").and_then(Json::as_str), Some("req-a"));
        // A predict request carries its id through to the deferred path.
        let action = interpret(
            br#"{"op":"predict","model":"m","features":[0.1],"id":9}"#,
            &client,
        );
        let WireAction::Predict {
            model,
            features,
            id,
        } = action
        else {
            panic!("well-formed predict defers");
        };
        assert_eq!(model, "m");
        assert_eq!(features, vec![0.1]);
        assert_eq!(id.as_ref().and_then(Json::as_u64), Some(9));
        runtime.shutdown();
    }
}
