//! The wire protocol: length-prefixed JSON over TCP.
//!
//! A deliberately minimal, dependency-free protocol for driving a
//! [`ServeRuntime`](crate::runtime::ServeRuntime) from another process:
//!
//! * **Framing** — every message is a 4-byte big-endian length followed by
//!   that many bytes of UTF-8 JSON. Framing is independent of payload
//!   content, so malformed JSON never desynchronises the stream; frames
//!   above [`MAX_FRAME_BYTES`] are rejected before allocation.
//! * **Requests** — objects with an `"op"` field:
//!   `{"op":"predict","model":"iris","features":[0.1,…]}`,
//!   `{"op":"models"}`, `{"op":"metrics"}`, `{"op":"ping"}`.
//! * **Responses** — `{"ok":true,…}` on success;
//!   `{"ok":false,"kind":"…","error":"…"}` on failure, where `kind` is the
//!   stable [`ServeError::kind`] discriminator (`"saturated"` is the
//!   wire-level backpressure signal: back off and retry).
//!
//! Numbers are serialised with shortest-round-trip formatting, so the
//! probabilities and fidelities a remote client parses are bit-identical
//! to what an in-process [`Client`] receives.
//!
//! One OS thread per connection keeps the protocol layer trivial; the
//! concurrency story lives in the runtime's queue, where every connection
//! thread is just another producer. Graceful shutdown closes the listener
//! and joins every connection handler.
//!
//! ## Robustness against adversarial / slow clients
//!
//! The boundary assumes hostile peers ([`WireConfig`]):
//!
//! * **Read/write timeouts** — a client that connects and never sends a
//!   length header (or never drains its responses) cannot pin its
//!   connection thread forever: every socket read and write carries a
//!   deadline, and a timed-out connection is closed.
//! * **Connection cap** — the accept loop refuses connections beyond
//!   `max_connections` with a retryable `saturated` wire error instead of
//!   spawning threads without bound.
//! * **Frame and parse limits** — frames above [`MAX_FRAME_BYTES`] are
//!   rejected before allocation, and JSON nesting beyond
//!   [`crate::json::MAX_PARSE_DEPTH`] is rejected before it can exhaust
//!   the parser's stack.

use crate::error::ServeError;
use crate::json::Json;
use crate::runtime::{Client, MetricsSnapshot, ServeResponse};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on a single frame's payload, rejected before allocation.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Robustness knobs of the TCP frontend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireConfig {
    /// Maximum simultaneously open connections; the acceptor answers
    /// over-cap connections with a retryable `saturated` error frame and
    /// closes them instead of spawning an unbounded number of handler
    /// threads.
    pub max_connections: usize,
    /// Per-read socket deadline. A peer that stays silent longer —
    /// including one that never sends a length header — is disconnected.
    /// `None` disables the deadline (trusted-network use only).
    pub read_timeout: Option<Duration>,
    /// Per-write socket deadline; protects against peers that accept a
    /// request but never drain the response. `None` disables it.
    pub write_timeout: Option<Duration>,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            max_connections: 1024,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl WireConfig {
    /// Reads the wire knobs from the environment on top of the defaults:
    /// `QUCLASSI_MAX_CONNECTIONS` (positive integer) and
    /// `QUCLASSI_WIRE_TIMEOUT_MS` (milliseconds for both read and write;
    /// `0` disables the deadlines).
    ///
    /// # Errors
    /// A variable that is set but malformed is rejected with
    /// [`ServeError::InvalidConfig`] — the same contract as
    /// `ServeConfig::from_env` and `QUCLASSI_THREADS`.
    pub fn from_env() -> Result<Self, ServeError> {
        let mut config = WireConfig::default();
        if let Some(raw) = std::env::var("QUCLASSI_MAX_CONNECTIONS")
            .ok()
            .filter(|v| !v.trim().is_empty())
        {
            config.max_connections = match raw.trim().parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    return Err(ServeError::InvalidConfig(format!(
                        "QUCLASSI_MAX_CONNECTIONS must be a positive integer, got '{raw}'"
                    )))
                }
            };
        }
        if let Some(raw) = std::env::var("QUCLASSI_WIRE_TIMEOUT_MS")
            .ok()
            .filter(|v| !v.trim().is_empty())
        {
            let ms: u64 = raw.trim().parse().map_err(|_| {
                ServeError::InvalidConfig(format!(
                    "QUCLASSI_WIRE_TIMEOUT_MS must be a non-negative integer \
                     (milliseconds; 0 disables the deadline), got '{raw}'"
                ))
            })?;
            let timeout = (ms > 0).then(|| Duration::from_millis(ms));
            config.read_timeout = timeout;
            config.write_timeout = timeout;
        }
        config.validate()?;
        Ok(config)
    }

    /// Checks the invariants (`max_connections ≥ 1`, non-zero deadlines).
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_connections == 0 {
            return Err(ServeError::InvalidConfig(
                "max_connections must be at least 1".to_string(),
            ));
        }
        for (name, timeout) in [
            ("read_timeout", self.read_timeout),
            ("write_timeout", self.write_timeout),
        ] {
            if timeout == Some(Duration::ZERO) {
                // set_read_timeout(Some(ZERO)) is a platform error; the
                // explicit "disabled" spelling is None.
                return Err(ServeError::InvalidConfig(format!(
                    "{name} must be positive (use None to disable the deadline)"
                )));
            }
        }
        Ok(())
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer hung up); a mid-frame EOF is an error.
pub fn read_frame(reader: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match reader.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A TCP frontend serving the wire protocol on top of an in-process
/// [`Client`].
#[derive(Debug)]
pub struct WireServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<Connection>>>,
}

/// An accepted connection: its handler thread plus a handle to the socket
/// so shutdown can unblock a handler parked in `read_frame` on an idle but
/// still-open peer.
#[derive(Debug)]
struct Connection {
    handle: JoinHandle<()>,
    stream: TcpStream,
}

impl WireServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections, each served on its own thread, under
    /// the default [`WireConfig`] (1024-connection cap, 30 s socket
    /// deadlines). Deployments that want the environment knobs
    /// (`QUCLASSI_MAX_CONNECTIONS` / `QUCLASSI_WIRE_TIMEOUT_MS`) should
    /// use [`WireServer::start_with`] with [`WireConfig::from_env`], as
    /// the serving example does.
    pub fn start(addr: impl ToSocketAddrs, client: Client) -> Result<Self, ServeError> {
        Self::start_with(addr, client, WireConfig::default())
    }

    /// [`WireServer::start`] with explicit robustness knobs.
    pub fn start_with(
        addr: impl ToSocketAddrs,
        client: Client,
        config: WireConfig,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<Connection>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("quclassi-serve-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // Arm the per-socket deadlines before the first
                        // read, so even the initial header cannot park a
                        // handler forever.
                        if stream.set_read_timeout(config.read_timeout).is_err()
                            || stream.set_write_timeout(config.write_timeout).is_err()
                        {
                            continue;
                        }
                        let Ok(stream_for_shutdown) = stream.try_clone() else {
                            continue;
                        };
                        let mut conns = connections.lock().unwrap_or_else(|e| e.into_inner());
                        // Reap finished handlers so a long-lived server does
                        // not accumulate them — and so the cap below counts
                        // only genuinely live connections.
                        conns.retain(|c| !c.handle.is_finished());
                        if conns.len() >= config.max_connections {
                            let open = conns.len();
                            drop(conns);
                            refuse_connection(stream, open, config.max_connections);
                            continue;
                        }
                        drop(conns);
                        let client = client.clone();
                        let handle = std::thread::Builder::new()
                            .name("quclassi-serve-conn".to_string())
                            .spawn(move || serve_connection(stream, &client));
                        if let Ok(handle) = handle {
                            let mut conns = connections.lock().unwrap_or_else(|e| e.into_inner());
                            conns.push(Connection {
                                handle,
                                stream: stream_for_shutdown,
                            });
                        }
                    }
                })
                .map_err(|e| ServeError::Io(format!("cannot spawn acceptor: {e}")))?
        };
        Ok(WireServer {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, disconnects every open connection at its next
    /// frame boundary, joins the handlers, and returns once the listener
    /// is fully down. A request already handed to the runtime completes
    /// (the runtime's own graceful shutdown guarantees an answer), but its
    /// reply may no longer reach a disconnecting peer.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let connections: Vec<Connection> =
            std::mem::take(&mut *self.connections.lock().unwrap_or_else(|e| e.into_inner()));
        for connection in connections {
            // Handlers park in `read_frame` on idle-but-open peers; closing
            // the socket turns that into an EOF so the join cannot hang.
            let _ = connection.stream.shutdown(std::net::Shutdown::Both);
            let _ = connection.handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Answers an over-cap connection with a retryable `saturated` error frame
/// and closes it. Best-effort: a peer that cannot even take the error
/// frame is simply dropped.
fn refuse_connection(mut stream: TcpStream, open: usize, capacity: usize) {
    let response = error_response(&ServeError::Saturated {
        depth: open,
        capacity,
    });
    let _ = write_frame(&mut stream, response.to_string().as_bytes());
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn serve_connection(stream: TcpStream, client: &Client) {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            // Peer hung up, stream broken, or the read deadline fired (a
            // silent/slow client). Shut the socket down explicitly: the
            // server's shutdown bookkeeping holds another clone of this
            // stream, so merely dropping ours would leave the peer's
            // connection half-open instead of surfacing the disconnect.
            Ok(None) | Err(_) => {
                let _ = writer.shutdown(std::net::Shutdown::Both);
                return;
            }
        };
        let response = dispatch(&payload, client);
        if write_frame(&mut writer, response.to_string().as_bytes()).is_err() {
            let _ = writer.shutdown(std::net::Shutdown::Both);
            return;
        }
    }
}

fn dispatch(payload: &[u8], client: &Client) -> Json {
    let request = match std::str::from_utf8(payload)
        .map_err(|_| ServeError::Protocol("frame is not UTF-8".to_string()))
        .and_then(Json::parse)
    {
        Ok(v) => v,
        Err(e) => return error_response(&e),
    };
    let Some(op) = request.get("op").and_then(Json::as_str) else {
        return error_response(&ServeError::Protocol(
            "request must be an object with a string 'op' field".to_string(),
        ));
    };
    match op {
        "ping" => Json::obj(vec![("ok", Json::Bool(true)), ("op", Json::str("ping"))]),
        "models" => {
            let models = client
                .models()
                .into_iter()
                .map(|(name, version)| {
                    Json::obj(vec![
                        ("name", Json::str(name)),
                        ("version", Json::Num(version as f64)),
                    ])
                })
                .collect();
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("models", Json::Arr(models)),
            ])
        }
        "metrics" => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("metrics", metrics_to_json(&client.metrics())),
        ]),
        "predict" => {
            let Some(model) = request.get("model").and_then(Json::as_str) else {
                return error_response(&ServeError::Protocol(
                    "predict needs a string 'model' field".to_string(),
                ));
            };
            let Some(features) = request.get("features").and_then(Json::as_arr) else {
                return error_response(&ServeError::Protocol(
                    "predict needs a 'features' array".to_string(),
                ));
            };
            let mut x = Vec::with_capacity(features.len());
            for item in features {
                match item.as_f64() {
                    Some(v) => x.push(v),
                    None => {
                        return error_response(&ServeError::Protocol(
                            "'features' must contain only numbers".to_string(),
                        ))
                    }
                }
            }
            match client.predict(model, &x) {
                Ok(response) => prediction_to_json(&response),
                Err(e) => error_response(&e),
            }
        }
        other => error_response(&ServeError::Protocol(format!("unknown op '{other}'"))),
    }
}

fn error_response(e: &ServeError) -> Json {
    let mut fields = vec![
        ("ok", Json::Bool(false)),
        ("kind", Json::str(e.kind())),
        ("error", Json::str(e.to_string())),
    ];
    if let ServeError::Saturated { depth, capacity } = e {
        // Carry the backpressure detail so remote clients reconstruct the
        // exact error (and its retryability) a local client would see.
        fields.push(("depth", Json::Num(*depth as f64)));
        fields.push(("capacity", Json::Num(*capacity as f64)));
    }
    Json::obj(fields)
}

/// Reconstructs a [`ServeError`] from a wire error response, preserving
/// the `kind` contract: `"saturated"` maps back to a retryable
/// [`ServeError::Saturated`], `"bad_request"` to a client-attributable
/// model error, and so on. Only `"model_error"` (a server-internal model
/// failure whose concrete cause cannot cross the wire) degrades to
/// [`ServeError::Io`].
fn error_from_wire(response: &Json, fallback_model: &str) -> ServeError {
    let message = response
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or("malformed error response")
        .to_string();
    let kind = response.get("kind").and_then(Json::as_str).unwrap_or("");
    match kind {
        "saturated" => ServeError::Saturated {
            depth: response.get("depth").and_then(Json::as_u64).unwrap_or(0) as usize,
            capacity: response.get("capacity").and_then(Json::as_u64).unwrap_or(0) as usize,
        },
        "shutdown" => ServeError::ShutDown,
        "unknown_model" => ServeError::UnknownModel(fallback_model.to_string()),
        "invalid_config" => ServeError::InvalidConfig(message),
        "protocol" => ServeError::Protocol(message),
        "bad_request" => ServeError::Model(quclassi::error::QuClassiError::InvalidData(message)),
        other => ServeError::Io(format!("server error ({other}): {message}")),
    }
}

fn prediction_to_json(response: &ServeResponse) -> Json {
    let p = &response.prediction;
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("model", Json::str(response.model.clone())),
        ("version", Json::Num(response.version as f64)),
        ("label", Json::Num(p.label as f64)),
        ("probabilities", Json::nums(&p.probabilities)),
        ("fidelities", Json::nums(&p.fidelities)),
        ("confidence", Json::Num(p.confidence())),
        ("margin", Json::Num(p.margin())),
    ])
}

fn metrics_to_json(m: &MetricsSnapshot) -> Json {
    let models = m
        .models
        .iter()
        .map(|mm| {
            Json::obj(vec![
                ("name", Json::str(mm.name.clone())),
                ("version", Json::Num(mm.version as f64)),
                ("admitted", Json::Num(mm.stats.admitted as f64)),
                ("completed", Json::Num(mm.stats.completed as f64)),
                ("failed", Json::Num(mm.stats.failed as f64)),
                ("rejected", Json::Num(mm.stats.rejected as f64)),
                ("p50_us", Json::Num(mm.stats.latency.p50_us())),
                ("p99_us", Json::Num(mm.stats.latency.p99_us())),
                ("cache_hit_rate", Json::Num(mm.cache.hit_rate())),
                ("cache_entries", Json::Num(mm.cache.entries as f64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("uptime_us", Json::Num(m.uptime.as_micros() as f64)),
        ("queue_depth", Json::Num(m.queue_depth as f64)),
        ("queue_capacity", Json::Num(m.queue_capacity as f64)),
        ("peak_queue_depth", Json::Num(m.peak_queue_depth as f64)),
        ("admitted", Json::Num(m.admitted as f64)),
        ("rejected", Json::Num(m.rejected as f64)),
        ("completed", Json::Num(m.completed as f64)),
        ("failed", Json::Num(m.failed as f64)),
        ("batches", Json::Num(m.batches as f64)),
        ("mean_batch_occupancy", Json::Num(m.mean_batch_occupancy())),
        ("flush_on_size", Json::Num(m.flush_on_size as f64)),
        ("flush_on_deadline", Json::Num(m.flush_on_deadline as f64)),
        ("flush_on_close", Json::Num(m.flush_on_close as f64)),
        ("draining_models", Json::Num(m.draining_models as f64)),
        ("throughput_rps", Json::Num(m.throughput_rps())),
        ("p50_us", Json::Num(m.latency.p50_us())),
        ("p90_us", Json::Num(m.latency.p90_us())),
        ("p99_us", Json::Num(m.latency.p99_us())),
        ("models", Json::Arr(models)),
    ])
}

/// A prediction parsed back from the wire (see [`WireClient::predict`]).
#[derive(Clone, Debug, PartialEq)]
pub struct WirePrediction {
    /// Model name echoed by the server.
    pub model: String,
    /// Version that served the request.
    pub version: u64,
    /// Predicted label.
    pub label: usize,
    /// Softmax probabilities (bit-identical to in-process serving).
    pub probabilities: Vec<f64>,
    /// Raw per-class fidelities (bit-identical to in-process serving).
    pub fidelities: Vec<f64>,
}

/// A minimal blocking client for the wire protocol (used by tests, the
/// serving example, and as a reference implementation for other
/// languages).
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
}

impl WireClient {
    /// Connects to a [`WireServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        Ok(WireClient {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Sends one request object and reads one response object.
    pub fn call(&mut self, request: &Json) -> Result<Json, ServeError> {
        write_frame(&mut self.stream, request.to_string().as_bytes())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| ServeError::Io("server closed the connection".to_string()))?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| ServeError::Protocol("response is not UTF-8".to_string()))?;
        Json::parse(text)
    }

    /// Round-trips a ping.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        let response = self.call(&Json::obj(vec![("op", Json::str("ping"))]))?;
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(())
        } else {
            Err(ServeError::Protocol(format!("unexpected pong: {response}")))
        }
    }

    /// Requests a prediction, surfacing server-side errors as their
    /// [`ServeError`] kinds.
    pub fn predict(&mut self, model: &str, x: &[f64]) -> Result<WirePrediction, ServeError> {
        let request = Json::obj(vec![
            ("op", Json::str("predict")),
            ("model", Json::str(model)),
            ("features", Json::nums(x)),
        ]);
        let response = self.call(&request)?;
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(error_from_wire(&response, model));
        }
        let parse = || -> Option<WirePrediction> {
            Some(WirePrediction {
                model: response.get("model")?.as_str()?.to_string(),
                version: response.get("version")?.as_u64()?,
                label: response.get("label")?.as_u64()? as usize,
                probabilities: response
                    .get("probabilities")?
                    .as_arr()?
                    .iter()
                    .map(Json::as_f64)
                    .collect::<Option<Vec<f64>>>()?,
                fidelities: response
                    .get("fidelities")?
                    .as_arr()?
                    .iter()
                    .map(Json::as_f64)
                    .collect::<Option<Vec<f64>>>()?,
            })
        };
        parse()
            .ok_or_else(|| ServeError::Protocol(format!("malformed predict response: {response}")))
    }

    /// Fetches the server's metrics object.
    pub fn metrics(&mut self) -> Result<Json, ServeError> {
        let response = self.call(&Json::obj(vec![("op", Json::str("metrics"))]))?;
        response
            .get("metrics")
            .cloned()
            .ok_or_else(|| ServeError::Protocol(format!("malformed metrics: {response}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_error_kinds_reconstruct_their_serve_errors() {
        // The round trip ServeError → error_response → error_from_wire
        // must preserve kind() and is_retryable() — the contract remote
        // clients branch on.
        let cases: Vec<ServeError> = vec![
            ServeError::Saturated {
                depth: 9,
                capacity: 16,
            },
            ServeError::ShutDown,
            ServeError::UnknownModel("m".into()),
            ServeError::InvalidConfig("bad knob".into()),
            ServeError::Protocol("junk".into()),
            ServeError::Model(quclassi::error::QuClassiError::InvalidData("nan".into())),
        ];
        for original in cases {
            let reconstructed = error_from_wire(&error_response(&original), "m");
            assert_eq!(reconstructed.kind(), original.kind());
            assert_eq!(reconstructed.is_retryable(), original.is_retryable());
        }
        // Saturation detail survives the wire.
        let reconstructed = error_from_wire(
            &error_response(&ServeError::Saturated {
                depth: 9,
                capacity: 16,
            }),
            "m",
        );
        assert_eq!(
            reconstructed,
            ServeError::Saturated {
                depth: 9,
                capacity: 16
            }
        );
        // Internal model failures (whose concrete cause cannot cross the
        // wire) degrade to Io, which is still non-retryable.
        let internal = error_from_wire(
            &error_response(&ServeError::Model(
                quclassi::error::QuClassiError::InvalidConfig("c".into()),
            )),
            "m",
        );
        assert!(matches!(internal, ServeError::Io(_)));
        assert!(!internal.is_retryable());
    }

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, "ψ∿".as_bytes()).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), "ψ∿".as_bytes());
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors() {
        // EOF inside the header.
        let mut cursor: &[u8] = &[0u8, 0];
        assert!(read_frame(&mut cursor).is_err());
        // EOF inside the payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = &buf[..];
        assert!(read_frame(&mut cursor).is_err());
        // Length prefix above the limit, rejected before allocation.
        let huge = (MAX_FRAME_BYTES as u32 + 1).to_be_bytes();
        let mut cursor = &huge[..];
        assert!(read_frame(&mut cursor).is_err());
    }
}
