//! Support surface for the `--cfg quclassi_model` model-checking suite.
//!
//! Only compiled when the crate is built with
//! `RUSTFLAGS="--cfg quclassi_model"`, in which case
//! [`crate::quclassi_sync`] resolves to the vendored [`interleave`] model
//! checker instead of `std::sync`. This module gives the `tests/model_*.rs`
//! integration tests three things the crate's normal API hides:
//!
//! 1. **Probes** — thin in-crate wrappers ([`QueueProbe`], [`SlotProbe`],
//!    [`SwapProbe`]) over `pub(crate)` protocol types so the tests can
//!    drive them without widening the crate's public API.
//! 2. **Mutation flags** ([`mutations`]) — process-global switches the
//!    `#[should_panic]` mutation proofs flip to weaken exactly one
//!    ordering / fence / notify placement (see [`crate::mutation`]) and
//!    prove the checker detects the resulting bug.
//! 3. **A serialising harness** ([`check_protocol`]) — sets the requested
//!    mutation flags, runs an exploration with `QUCLASSI_QUICK`-aware
//!    bounds, and restores the flags even when the exploration panics
//!    (which, for mutation proofs, is the point).

use crate::error::ServeError;
use crate::queue::BoundedQueue;
use crate::runtime::ResponseSlot;
use crate::swap::SwapMap;
use std::sync::atomic::Ordering as StdOrdering;
use std::sync::Mutex as StdMutex;
use std::time::Duration;

/// Process-global mutation flags consulted by [`crate::mutation`] under
/// `--cfg quclassi_model`.
///
/// The flags are plain `std` atomics (never the shim — they configure the
/// exploration, they are not part of the explored program) and must only
/// be flipped through [`check_protocol`], which serialises explorations
/// and restores every flag afterwards.
pub mod mutations {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Weakens the `TraceRing` seqlock publish store to `Relaxed`.
    pub const SEQLOCK_PUBLISH_RELAXED: usize = 0;
    /// Removes the `TraceRing` writer's release fence.
    pub const SEQLOCK_SKIP_RELEASE_FENCE: usize = 1;
    /// Disables the reader-side span checksum comparison, exposing the
    /// bare two-ticket seqlock (used by both the positive soundness test
    /// and the mutation proofs — the checksum would otherwise mask any
    /// single-site ordering weakening).
    pub const SEQLOCK_SKIP_CHECKSUM: usize = 2;
    /// Weakens the `LatencyHistogram` nanosecond-sum publish to `Relaxed`.
    pub const HISTOGRAM_TOTAL_RELAXED: usize = 3;
    /// Makes `BoundedQueue::try_push` notify before publishing the item.
    pub const QUEUE_NOTIFY_EARLY: usize = 4;
    /// Makes `ResponseSlot::fulfill` notify before publishing the result.
    pub const SLOT_NOTIFY_EARLY: usize = 5;
    /// Makes `SwapMap::publish` drop the write lock between version
    /// assignment and insert.
    pub const SWAP_SPLIT_PUBLISH: usize = 6;

    pub(super) const COUNT: usize = 7;
    pub(super) static FLAGS: [AtomicBool; COUNT] = [
        AtomicBool::new(false),
        AtomicBool::new(false),
        AtomicBool::new(false),
        AtomicBool::new(false),
        AtomicBool::new(false),
        AtomicBool::new(false),
        AtomicBool::new(false),
    ];

    /// Whether mutation `flag` is currently active.
    pub fn active(flag: usize) -> bool {
        FLAGS[flag].load(Ordering::Relaxed)
    }
}

/// Serialises explorations within one test binary: mutation flags are
/// process-global, so two tests flipping different flags must not overlap.
static GATE: StdMutex<()> = StdMutex::new(());

/// Runs `f` under the model checker with the given mutation flags active,
/// restoring all flags (and releasing the gate) afterwards — including
/// when the exploration panics, which is what `#[should_panic]` mutation
/// proofs expect it to do.
///
/// Bounds honour `QUCLASSI_QUICK`: when set (the CI static-analysis job),
/// the iteration budget shrinks and hitting it counts as a pass
/// (`allow_incomplete`); unset, the exploration must finish exhaustively
/// within the larger budget or the test fails.
pub fn check_protocol<F>(active_mutations: &[usize], f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    /// Holds the gate for the exploration's duration and clears the flags
    /// on drop (normal return *and* should_panic unwinds).
    struct Reset<'a>(
        &'a [usize],
        #[allow(dead_code)] std::sync::MutexGuard<'a, ()>,
    );
    impl Drop for Reset<'_> {
        fn drop(&mut self) {
            for &flag in self.0 {
                mutations::FLAGS[flag].store(false, StdOrdering::Relaxed);
            }
        }
    }

    let gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    for &flag in active_mutations {
        mutations::FLAGS[flag].store(true, StdOrdering::Relaxed);
    }
    let _reset = Reset(active_mutations, gate);

    let quick = std::env::var_os("QUCLASSI_QUICK").is_some();
    let mut builder = interleave::Builder::new();
    if quick {
        builder.max_iterations = 40_000;
        builder.allow_incomplete = true;
    } else {
        builder.max_iterations = 400_000;
    }
    builder.check(f);
}

/// In-crate driver for the `pub(crate)` [`BoundedQueue`] protocol.
pub struct QueueProbe {
    queue: BoundedQueue<u32>,
}

impl QueueProbe {
    /// A queue of the given capacity (must be ≥ 1).
    pub fn new(capacity: usize) -> Self {
        QueueProbe {
            queue: BoundedQueue::new(capacity),
        }
    }

    /// `try_push`; `Ok(())` on admit, `Err(true)` when saturated,
    /// `Err(false)` when shut down.
    pub fn push(&self, value: u32) -> Result<(), bool> {
        match self.queue.try_push(value) {
            Ok(()) => Ok(()),
            Err(ServeError::Saturated { .. }) => Err(true),
            Err(_) => Err(false),
        }
    }

    /// `pop_batch` with a zero window (the model's condvar treats timed
    /// waits as immediate timeouts, so only the zero-window fast path is
    /// meaningfully explorable).
    pub fn pop_batch(&self, max_batch: usize) -> Option<Vec<u32>> {
        self.queue
            .pop_batch(max_batch, Duration::ZERO)
            .map(|(items, _)| items)
    }

    /// Closes the queue.
    pub fn close(&self) {
        self.queue.close();
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.queue.depth()
    }
}

/// In-crate driver for the `pub(crate)` `ResponseSlot` rendezvous.
#[derive(Debug, Clone)]
pub struct SlotProbe {
    slot: crate::quclassi_sync::Arc<ResponseSlot>,
}

impl SlotProbe {
    /// A fresh, unfulfilled slot (no completion notifier).
    pub fn new() -> Self {
        SlotProbe {
            slot: crate::quclassi_sync::Arc::new(ResponseSlot::model_new()),
        }
    }

    /// Fulfils the slot with a `ShutDown` error (the cheapest result to
    /// construct; the rendezvous does not care which result it carries).
    pub fn fulfill(&self) {
        self.slot.model_fulfill(Err(ServeError::ShutDown));
    }

    /// Blocks until fulfilled; `true` iff the carried result was the
    /// `ShutDown` error the probe publishes.
    pub fn wait(&self) -> bool {
        matches!(self.slot.model_wait(), Err(ServeError::ShutDown))
    }

    /// Non-blocking readiness check.
    pub fn is_ready(&self) -> bool {
        self.slot.model_is_ready()
    }
}

impl Default for SlotProbe {
    fn default() -> Self {
        Self::new()
    }
}

/// In-crate driver for the `pub(crate)` [`SwapMap`] publication protocol.
#[derive(Debug, Default)]
pub struct SwapProbe {
    map: SwapMap<u64>,
}

impl SwapProbe {
    /// An empty map.
    pub fn new() -> Self {
        SwapProbe::default()
    }

    /// Publishes `payload` under `name`; returns the assigned version.
    pub fn publish(&self, name: &str, payload: u64) -> u64 {
        self.map.publish(name, |_| payload).0
    }

    /// The current `(version, payload)` for `name`.
    pub fn get(&self, name: &str) -> Option<(u64, u64)> {
        self.map.get(name).map(|(v, e)| (v, *e))
    }

    /// Displaced entries still strongly referenced.
    pub fn draining(&self) -> usize {
        self.map.draining()
    }
}
