//! Deterministic fault injection for the online-learning pipeline.
//!
//! Compiled only under `cfg(any(test, feature = "fault-injection"))`: the
//! hooks cost nothing in production builds, and a release binary cannot be
//! told to sabotage its own trainer.
//!
//! A [`FaultPlan`] maps learner cycle indices to lists of [`Fault`]s.
//! Plans are either hand-built ([`FaultPlan::inject`]) or drawn from a
//! seeded schedule ([`FaultPlan::seeded`]) — in both cases the plan is a
//! pure value: replaying the same plan against the same learner
//! configuration reproduces the same failures on the same cycles, which is
//! what makes the regression tests in `tests/online_learning.rs`
//! deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One injectable failure in the online-learning cycle.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Fault {
    /// The trainer thread panics mid-fit. The learner must catch it,
    /// count it, discard the candidate, and keep cycling.
    TrainerPanic,
    /// `CompiledModel::compile` of the candidate fails. The candidate must
    /// never reach the registry.
    CompileFail,
    /// The trained candidate's parameters are poisoned with a NaN before
    /// validation. Parameter validation must reject it.
    PoisonCandidate,
    /// The candidate's parameters are scrambled to finite garbage: it
    /// compiles and serves, but its accuracy craters. Combined with
    /// [`Fault::BypassGate`] this injects a post-promotion regression that
    /// must trigger an automatic rollback.
    CorruptCandidate,
    /// Compilation stalls for the given number of milliseconds, overlapping
    /// the next traffic the scheduler serves. Serving must be unaffected.
    SlowCompileMs(u64),
    /// The promotion gate reports "pass" regardless of measurements —
    /// the lever that lets a corrupted candidate through so rollback can
    /// be exercised. Never drawn by [`FaultPlan::seeded`].
    BypassGate,
    /// A concurrent operator re-deploys the live artifact right before the
    /// cycle's evaluation — registry-swap-under-load. The learner must
    /// tolerate the version moving underneath it.
    SwapUnderLoad,
}

/// A deterministic schedule of faults, keyed by learner cycle index.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    schedule: BTreeMap<u64, Vec<Fault>>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds `fault` at `cycle` (builder-style; multiple faults may share a
    /// cycle and fire in insertion order).
    pub fn inject(mut self, cycle: u64, fault: Fault) -> Self {
        self.schedule.entry(cycle).or_default().push(fault);
        self
    }

    /// Draws a reproducible random schedule: each of the first `cycles`
    /// cycles independently receives one fault with probability `density`,
    /// chosen uniformly from the recoverable palette (every [`Fault`]
    /// except [`Fault::BypassGate`], which deliberately breaks the safety
    /// gate and is only ever injected explicitly).
    pub fn seeded(seed: u64, cycles: u64, density: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for cycle in 0..cycles {
            if rng.gen::<f64>() < density {
                let fault = match rng.gen_range(0..6) {
                    0 => Fault::TrainerPanic,
                    1 => Fault::CompileFail,
                    2 => Fault::PoisonCandidate,
                    3 => Fault::CorruptCandidate,
                    4 => Fault::SlowCompileMs(rng.gen_range(10..100)),
                    _ => Fault::SwapUnderLoad,
                };
                plan = plan.inject(cycle, fault);
            }
        }
        plan
    }

    /// The faults scheduled for `cycle`, in injection order.
    pub fn faults_at(&self, cycle: u64) -> &[Fault] {
        self.schedule.get(&cycle).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `cycle` has `fault` scheduled.
    pub fn has(&self, cycle: u64, fault: &Fault) -> bool {
        self.faults_at(cycle).contains(fault)
    }

    /// The scheduled slow-compile stall for `cycle`, if any.
    pub fn slow_compile_ms(&self, cycle: u64) -> Option<u64> {
        self.faults_at(cycle).iter().find_map(|f| match f {
            Fault::SlowCompileMs(ms) => Some(*ms),
            _ => None,
        })
    }

    /// Whether the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// Number of cycles with at least one scheduled fault.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_order() {
        let plan = FaultPlan::new()
            .inject(2, Fault::TrainerPanic)
            .inject(0, Fault::CompileFail)
            .inject(2, Fault::SwapUnderLoad);
        assert_eq!(plan.faults_at(0), &[Fault::CompileFail]);
        assert_eq!(plan.faults_at(1), &[] as &[Fault]);
        assert_eq!(
            plan.faults_at(2),
            &[Fault::TrainerPanic, Fault::SwapUnderLoad]
        );
        assert!(plan.has(2, &Fault::TrainerPanic));
        assert!(!plan.has(1, &Fault::TrainerPanic));
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn seeded_schedules_reproduce_exactly() {
        let a = FaultPlan::seeded(99, 50, 0.4);
        let b = FaultPlan::seeded(99, 50, 0.4);
        assert_eq!(a, b, "same seed must reproduce the same schedule");
        let c = FaultPlan::seeded(100, 50, 0.4);
        assert_ne!(a, c, "different seeds should differ");
        // Density 0.4 over 50 cycles lands a plausible number of faults.
        assert!(
            a.len() > 5 && a.len() < 40,
            "got {} faulted cycles",
            a.len()
        );
    }

    #[test]
    fn seeded_never_draws_bypass_gate() {
        for seed in 0..20 {
            let plan = FaultPlan::seeded(seed, 100, 1.0);
            for cycle in 0..100 {
                assert!(
                    !plan.has(cycle, &Fault::BypassGate),
                    "seed {seed} drew BypassGate"
                );
            }
        }
    }

    #[test]
    fn slow_compile_lookup_extracts_the_stall() {
        let plan = FaultPlan::new().inject(3, Fault::SlowCompileMs(75));
        assert_eq!(plan.slow_compile_ms(3), Some(75));
        assert_eq!(plan.slow_compile_ms(2), None);
    }
}
