//! The serving runtime: admission → bounded queue → micro-batch scheduler
//! → batched evaluation → reply.
//!
//! One [`ServeRuntime`] owns the bounded request queue, the model registry,
//! a shared [`BatchExecutor`], and a single scheduler thread. Any number of
//! cloneable [`Client`] handles feed it concurrently.
//!
//! ## Life of a request
//!
//! 1. **Admission** ([`Client::submit`]) — the model name resolves to its
//!    current registry entry and the sample is validated + encoded to its
//!    rotation angles *on the caller's thread*. A bad request is rejected
//!    here, synchronously, and can never poison a batch. If the bounded
//!    queue is full the request is rejected with
//!    [`ServeError::Saturated`] — backpressure, not unbounded buffering.
//! 2. **Batching** — the scheduler blocks for the first queued request,
//!    then drains up to `max_batch` requests, waiting at most
//!    `batch_window` for the batch to fill (a zero window drains whatever
//!    has accumulated — natural batching with no added latency).
//! 3. **Evaluation** — the batch is grouped by model entry (requests keep
//!    the exact version that admitted them, even across a hot-swap) and
//!    each group fans out through
//!    [`CompiledModel::predict_many_from_angles`] on the shared executor.
//!    For analytic artifacts that flush is a samples × classes fidelity
//!    GEMM: every worker encodes its sample rows into a reused scratch
//!    register and sweeps them against the model's packed class-state
//!    matrix (`quclassi_sim::gemm::StateMatrix`), so a steady-state flush
//!    performs no per-sample statevector or gate-list allocations.
//! 4. **Reply** — each request's one-shot slot is fulfilled; blocked
//!    callers wake with a [`ServeResponse`].
//!
//! ## Threading
//!
//! The runtime's evaluation parallelism is entirely the
//! [`BatchExecutor`]'s: the across-circuit worker count
//! (`QUCLASSI_THREADS`) fans batched requests out one job per sample ×
//! class, and the within-circuit budget (`QUCLASSI_INTRA_THREADS`, via
//! [`BatchExecutor::from_env`] / [`BatchExecutor::with_intra`]) lets a
//! single large-register evaluation split its statevector sweeps across
//! additional workers — the axis that helps when traffic is sparse but
//! each request is a 17-qubit SWAP test. Both knobs are pure throughput
//! knobs (see the determinism section below).
//!
//! ## Determinism
//!
//! For deterministic estimators (analytic, exact SWAP test) a response is
//! **bit-identical to a direct [`CompiledModel::predict_one`] call** on the
//! same artifact, regardless of batch window, batch size, thread count, or
//! how requests interleave: per-sample evaluation is independent of batch
//! composition, and the batch executor's results are thread-count
//! invariant. For stochastic estimators each model group in a flush
//! derives its RNG streams from `(base_seed, flush index, group index)`,
//! so results are reproducible for a fixed arrival order but — as in any
//! dynamically batched server — depend on how requests happened to batch.

use crate::error::ServeError;
use crate::metrics::{
    self, HistogramSnapshot, MetricsRegistry, ModelStatsSnapshot, RuntimeStats, StageLatencies,
};
use crate::mutation;
use crate::quclassi_sync::atomic::{AtomicU64, Ordering};
use crate::quclassi_sync::{Arc, Condvar, Mutex, RwLock};
use crate::queue::BoundedQueue;
use crate::registry::{ModelEntry, ModelRegistry};
use crate::shadow::{ShadowReport, ShadowState};
use crate::trace::{TraceRing, TraceSpan, TraceState, DEFAULT_TRACE_CAPACITY};
use quclassi_infer::{CacheStats, CompiledModel, Prediction};
use quclassi_sim::batch::BatchExecutor;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of the serving runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Flush a micro-batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// How long the scheduler waits (from the first queued request) for a
    /// batch to fill before flushing what it has. `Duration::ZERO` flushes
    /// whatever has accumulated without waiting — maximum-throughput
    /// natural batching.
    pub batch_window: Duration,
    /// Bounded queue capacity; admissions beyond it are rejected with
    /// [`ServeError::Saturated`].
    pub queue_capacity: usize,
    /// Base seed for per-flush RNG streams (stochastic estimators only;
    /// deterministic estimators ignore it).
    pub base_seed: u64,
    /// Capacity of the per-request trace ring (most recent completed
    /// request timelines, retrievable via `Client::traces` and the wire
    /// `trace` op). 0 disables tracing entirely.
    pub trace_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            batch_window: Duration::from_micros(200),
            queue_capacity: 1024,
            base_seed: 0,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

impl ServeConfig {
    /// Reads the batching knobs from the environment on top of the
    /// defaults: `QUCLASSI_MAX_BATCH` (positive integer),
    /// `QUCLASSI_BATCH_WINDOW_US` (microseconds, 0 allowed),
    /// `QUCLASSI_QUEUE_CAPACITY` (positive integer), and
    /// `QUCLASSI_TRACE_CAPACITY` (trace-ring capacity; 0 disables
    /// tracing).
    ///
    /// # Errors
    /// A variable that is set but malformed is **rejected** with
    /// [`ServeError::InvalidConfig`] — the same contract as
    /// [`BatchExecutor::from_env`]: a typo in a deployment knob must fail
    /// startup, not silently serve with a default.
    pub fn from_env() -> Result<Self, ServeError> {
        let mut config = ServeConfig::default();
        if let Some(raw) = env_nonempty("QUCLASSI_MAX_BATCH") {
            config.max_batch = parse_positive("QUCLASSI_MAX_BATCH", &raw)?;
        }
        if let Some(raw) = env_nonempty("QUCLASSI_BATCH_WINDOW_US") {
            let us: u64 = raw.trim().parse().map_err(|_| {
                ServeError::InvalidConfig(format!(
                    "QUCLASSI_BATCH_WINDOW_US must be a non-negative integer \
                     (microseconds), got '{raw}'"
                ))
            })?;
            config.batch_window = Duration::from_micros(us);
        }
        if let Some(raw) = env_nonempty("QUCLASSI_QUEUE_CAPACITY") {
            config.queue_capacity = parse_positive("QUCLASSI_QUEUE_CAPACITY", &raw)?;
        }
        if let Some(raw) = env_nonempty("QUCLASSI_TRACE_CAPACITY") {
            config.trace_capacity = raw.trim().parse().map_err(|_| {
                ServeError::InvalidConfig(format!(
                    "QUCLASSI_TRACE_CAPACITY must be a non-negative integer \
                     (0 disables tracing), got '{raw}'"
                ))
            })?;
        }
        config.validate()?;
        Ok(config)
    }

    /// Checks the invariants (`max_batch ≥ 1`, `queue_capacity ≥ 1`).
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig(
                "max_batch must be at least 1".to_string(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_capacity must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

fn env_nonempty(key: &str) -> Option<String> {
    std::env::var(key).ok().filter(|v| !v.trim().is_empty())
}

fn parse_positive(key: &str, raw: &str) -> Result<usize, ServeError> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(ServeError::InvalidConfig(format!(
            "{key} must be a positive integer, got '{raw}'"
        ))),
    }
}

/// One served prediction, tagged with the model (and version) that
/// produced it — under hot-swap, the version that was active when the
/// request was *admitted*.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeResponse {
    /// Registry name the request was addressed to.
    pub model: String,
    /// Version of the entry that served the request.
    pub version: u64,
    /// The prediction (label, probabilities, fidelities, top-k helpers).
    pub prediction: Prediction,
}

/// A callback invoked (from the scheduler thread) the moment a submitted
/// request's response is ready. The event-loop wire frontend registers its
/// shard waker here, so a completion immediately unblocks the shard's
/// `epoll_wait` instead of requiring a blocked thread per in-flight
/// request. Must be cheap and non-blocking — it runs on the scheduler's
/// hot path.
pub type CompletionNotifier = Arc<dyn Fn() + Send + Sync>;

/// One-shot rendezvous between a blocked caller and the scheduler.
pub(crate) struct ResponseSlot {
    cell: Mutex<Option<Result<ServeResponse, ServeError>>>,
    ready: Condvar,
    /// Invoked after the result is published (see [`CompletionNotifier`]).
    notifier: Option<CompletionNotifier>,
    /// Per-request stage timeline, stamped as the request moves through
    /// admission → queue → scheduler (→ wire write) and folded into the
    /// trace ring when the lifecycle ends.
    pub(crate) trace: TraceState,
}

impl std::fmt::Debug for ResponseSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseSlot")
            .field("notified", &self.notifier.is_some())
            .finish_non_exhaustive()
    }
}

impl ResponseSlot {
    fn new(notifier: Option<CompletionNotifier>, trace: TraceState) -> Self {
        ResponseSlot {
            cell: Mutex::new(None),
            ready: Condvar::new(),
            notifier,
            trace,
        }
    }

    fn fulfill(&self, result: Result<ServeResponse, ServeError>) {
        let notify_early = mutation::slot_notify_early();
        if notify_early {
            // Mutation point: notifying before the result is published is
            // the lost-wakeup bug — the waiter can find the cell empty
            // under the lock, then sleep through this already-spent
            // notification forever. tests/model_slot.rs proves the checker
            // reports the resulting deadlock.
            self.ready.notify_all();
        }
        let mut cell = self.cell.lock().unwrap_or_else(|e| e.into_inner());
        *cell = Some(result);
        drop(cell);
        if !notify_early {
            self.ready.notify_all();
        }
        if let Some(notifier) = &self.notifier {
            notifier();
        }
    }
}

#[cfg(quclassi_model)]
impl ResponseSlot {
    /// Model-suite constructor: a bare slot with no notifier and a dummy
    /// trace (the model tests exercise the rendezvous, not the timeline).
    pub(crate) fn model_new() -> Self {
        ResponseSlot::new(None, TraceState::new(0, Instant::now(), false))
    }

    /// Model-suite access to the scheduler-side publish.
    pub(crate) fn model_fulfill(&self, result: Result<ServeResponse, ServeError>) {
        self.fulfill(result);
    }

    /// [`PendingPrediction::wait`]'s loop, callable on a bare slot.
    pub(crate) fn model_wait(&self) -> Result<ServeResponse, ServeError> {
        let mut cell = self.cell.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = cell.take() {
                return result;
            }
            cell = self.ready.wait(cell).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// [`PendingPrediction::is_ready`], callable on a bare slot.
    pub(crate) fn model_is_ready(&self) -> bool {
        self.cell
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }
}

/// A submitted-but-not-yet-answered request (see [`Client::submit`]).
#[derive(Debug)]
pub struct PendingPrediction {
    slot: Arc<ResponseSlot>,
}

impl PendingPrediction {
    /// Blocks until the scheduler answers this request.
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        let mut cell = self.slot.cell.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = cell.take() {
                return result;
            }
            cell = self
                .slot
                .ready
                .wait(cell)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Whether the response has arrived (non-blocking).
    pub fn is_ready(&self) -> bool {
        self.slot
            .cell
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Takes the response if it has arrived (non-blocking); `None` while
    /// the request is still in flight. Once this returns `Some`, the slot
    /// is empty — a later [`PendingPrediction::wait`] would block forever,
    /// so consume the pending through exactly one of the two.
    pub fn take_if_ready(&self) -> Option<Result<ServeResponse, ServeError>> {
        self.slot
            .cell
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    /// The underlying slot, for wire frontends that stamp the write stage
    /// after the response bytes actually drain to the socket.
    pub(crate) fn trace_slot(&self) -> Arc<ResponseSlot> {
        Arc::clone(&self.slot)
    }
}

/// A queued request: everything the scheduler needs, with the per-request
/// work (resolution, validation, encoding) already done at admission.
pub(crate) struct Request {
    entry: Arc<ModelEntry>,
    angles: Vec<f64>,
    slot: Arc<ResponseSlot>,
    admitted: Instant,
}

pub(crate) struct Shared {
    pub(crate) queue: BoundedQueue<Request>,
    pub(crate) registry: ModelRegistry,
    pub(crate) executor: BatchExecutor,
    pub(crate) stats: RuntimeStats,
    /// The registry every runtime counter/gauge/histogram is registered
    /// in; [`Client::exposition`] renders it plus the dynamic per-model,
    /// cache and simulator sections.
    pub(crate) metrics: MetricsRegistry,
    /// Completed-request timelines (capacity [`ServeConfig::trace_capacity`]).
    pub(crate) trace: TraceRing,
    /// Trace ids for requests the wire layer did not tag (in-process
    /// clients); monotonically assigned, disjoint by starting at 1.
    pub(crate) next_trace_id: AtomicU64,
    pub(crate) config: ServeConfig,
    pub(crate) started: Instant,
    /// The installed shadow candidate, if any (see [`crate::shadow`]). The
    /// scheduler reads it once per flush; install/clear replace the whole
    /// `Arc`, so a cycle boundary never tears a report.
    pub(crate) shadow: RwLock<Option<Arc<ShadowState>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("config", &self.config)
            .field("queue_depth", &self.queue.depth())
            .field("models", &self.registry.names())
            .finish_non_exhaustive()
    }
}

/// Point-in-time serving metrics for one deployed model.
#[derive(Clone, Debug)]
pub struct ModelMetrics {
    /// Registry name.
    pub name: String,
    /// Currently active version.
    pub version: u64,
    /// Admission/completion/failure/rejection counters + latency.
    pub stats: ModelStatsSnapshot,
    /// Encoding-fingerprint cache counters of the active artifact.
    pub cache: CacheStats,
}

/// Point-in-time metrics of the whole runtime (see [`Client::metrics`]).
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Time since the runtime started.
    pub uptime: Duration,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Configured queue capacity.
    pub queue_capacity: usize,
    /// High-water mark of the queue depth.
    pub peak_queue_depth: usize,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests rejected at admission (unknown model, invalid input,
    /// saturation, or shutdown): `admitted + rejected` reconstructs the
    /// offered load.
    pub rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests that failed during evaluation.
    pub failed: u64,
    /// Micro-batches flushed.
    pub batches: u64,
    /// Total requests across all flushed batches.
    pub batched_requests: u64,
    /// Batches flushed because the size target was reached.
    pub flush_on_size: u64,
    /// Batches flushed because the batching window expired.
    pub flush_on_deadline: u64,
    /// Batches flushed while draining at shutdown.
    pub flush_on_close: u64,
    /// Connections refused at the wire boundary (over the connection cap)
    /// with a retryable `saturated` error frame.
    pub wire_refusals: u64,
    /// Wire refusals whose `saturated` error frame could not be delivered
    /// to the peer — those clients never saw the backpressure signal.
    pub refusal_write_failures: u64,
    /// Successful deploys through the runtime (initial deploys and online
    /// candidate promotions alike).
    pub promotions: u64,
    /// Rollbacks to a previous artifact (each one a new monotonic version).
    pub rollbacks: u64,
    /// Online-learner candidates rejected before reaching the registry
    /// (validation, compile, gate, or warm-up failures).
    pub candidates_rejected: u64,
    /// Training cycles the online learner has started.
    pub train_cycles: u64,
    /// Trainer panics caught and survived by the online learner.
    pub learner_panics: u64,
    /// Scheduler flushes mirrored to a shadow candidate.
    pub shadow_batches: u64,
    /// Requests duplicated onto a shadow candidate (user responses always
    /// come from the live model only).
    pub shadow_requests: u64,
    /// Retired (hot-swapped-out) versions still serving in-flight requests.
    pub draining_models: usize,
    /// Requests admitted but not yet answered (queued or mid-evaluation).
    pub in_flight: u64,
    /// End-to-end (admission → reply) latency across all models.
    pub latency: HistogramSnapshot,
    /// Per-stage latency breakdown (encode, queue wait, batch assembly,
    /// compute, wire write) across all models.
    pub stages: StageLatencies,
    /// Per-model metrics, sorted by name.
    pub models: Vec<ModelMetrics>,
}

impl MetricsSnapshot {
    /// Completed requests per second of uptime.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// Mean number of requests per flushed micro-batch (0.0 before the
    /// first flush). The headline batching-efficiency number: 1.0 means
    /// the scheduler is degenerating to per-request serving.
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

/// The serving runtime: queue + scheduler + registry + metrics.
///
/// ```
/// use quclassi::prelude::*;
/// use quclassi_infer::CompiledModel;
/// use quclassi_serve::{ServeConfig, ServeRuntime};
/// use quclassi_sim::batch::BatchExecutor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let model =
///     QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
/// let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
///
/// let runtime = ServeRuntime::start(
///     ServeConfig::default(),
///     BatchExecutor::single_threaded(0),
/// )
/// .unwrap();
/// runtime.deploy("demo", compiled).unwrap();
///
/// let client = runtime.client();
/// let reply = client.predict("demo", &[0.1, 0.9, 0.4, 0.3]).unwrap();
/// assert_eq!(reply.model, "demo");
/// assert_eq!(reply.version, 1);
/// assert!(reply.prediction.label < 2);
///
/// let metrics = runtime.shutdown();
/// assert_eq!(metrics.completed, 1);
/// ```
#[derive(Debug)]
pub struct ServeRuntime {
    shared: Arc<Shared>,
    scheduler: Option<JoinHandle<()>>,
}

impl ServeRuntime {
    /// Starts the runtime: validates `config`, then spawns the scheduler
    /// thread on top of `executor`.
    pub fn start(config: ServeConfig, executor: BatchExecutor) -> Result<Self, ServeError> {
        config.validate()?;
        let metrics = MetricsRegistry::new();
        let stats = RuntimeStats::register(&metrics);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::with_depth_gauge(config.queue_capacity, stats.queue_depth.clone()),
            registry: ModelRegistry::new(),
            executor,
            stats,
            metrics,
            trace: TraceRing::new(config.trace_capacity),
            next_trace_id: AtomicU64::new(1),
            config: config.clone(),
            started: Instant::now(),
            shadow: RwLock::new(None),
        });
        let scheduler = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("quclassi-serve-scheduler".to_string())
                .spawn(move || scheduler_loop(&shared))
                .map_err(|e| ServeError::Io(format!("cannot spawn scheduler: {e}")))?
        };
        Ok(ServeRuntime {
            shared,
            scheduler: Some(scheduler),
        })
    }

    /// The model registry (for deploys, version queries, drain tracking).
    pub fn registry(&self) -> &ModelRegistry {
        &self.shared.registry
    }

    /// Convenience for [`ModelRegistry::deploy`] on the runtime's registry.
    /// Every successful deploy counts as a promotion in
    /// [`MetricsSnapshot::promotions`].
    pub fn deploy(&self, name: &str, model: CompiledModel) -> Result<u64, ServeError> {
        self.shared.promote(name, model)
    }

    /// Rolls `name` back to its previous artifact (see
    /// [`ModelRegistry::rollback`]), counting it in
    /// [`MetricsSnapshot::rollbacks`]. Returns the new version serving the
    /// restored artifact.
    pub fn rollback(&self, name: &str) -> Result<u64, ServeError> {
        self.shared.rollback_model(name)
    }

    /// Installs `candidate` as the shadow for `model`: from now on a
    /// deterministic fraction `rate` of scheduler flushes for `model` are
    /// mirrored onto the candidate *after* the live responses are
    /// fulfilled (user-visible output is bit-identical to a shadow-free
    /// run — see [`crate::shadow`]). Replaces any previously installed
    /// shadow, discarding its report.
    ///
    /// # Errors
    /// Rejects a rate outside `(0, 1]`, an unknown model name, or a
    /// candidate whose encoder shape differs from the live model's (its
    /// mirrored angle rows could never evaluate).
    pub fn start_shadow(
        &self,
        model: &str,
        candidate: CompiledModel,
        rate: f64,
        tag: u64,
    ) -> Result<(), ServeError> {
        self.shared.install_shadow(model, candidate, rate, tag)
    }

    /// The report of the currently installed shadow, if any (leaves the
    /// shadow running).
    pub fn shadow_report(&self) -> Option<ShadowReport> {
        self.shared.shadow_report()
    }

    /// Uninstalls the shadow and returns its final report, if one was
    /// installed.
    pub fn clear_shadow(&self) -> Option<ShadowReport> {
        self.shared.take_shadow()
    }

    /// The runtime internals, for in-crate composition (online learner).
    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// A cloneable handle for submitting requests and reading metrics.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Current metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        snapshot(&self.shared)
    }

    /// Gracefully shuts down: stops admitting, drains and answers every
    /// already-admitted request, joins the scheduler, and returns the
    /// final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_in_place();
        snapshot(&self.shared)
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServeRuntime {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// A cloneable, thread-safe handle into a [`ServeRuntime`].
#[derive(Clone, Debug)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Client {
    /// Submits one request and blocks until its response.
    pub fn predict(&self, model: &str, x: &[f64]) -> Result<ServeResponse, ServeError> {
        self.submit(model, x)?.wait()
    }

    /// Submits one request without waiting. Resolution, validation and
    /// encoding run synchronously here (errors surface immediately);
    /// evaluation happens on the scheduler.
    pub fn submit(&self, model: &str, x: &[f64]) -> Result<PendingPrediction, ServeError> {
        self.submit_inner(model, x, None, None, false)
    }

    /// [`Client::submit`] with a [`CompletionNotifier`] invoked the moment
    /// the response is published. This is the non-blocking completion path
    /// the event-loop wire frontend multiplexes on: submit many requests,
    /// get woken once per completion, collect with
    /// [`PendingPrediction::take_if_ready`].
    pub fn submit_with_notifier(
        &self,
        model: &str,
        x: &[f64],
        notifier: CompletionNotifier,
    ) -> Result<PendingPrediction, ServeError> {
        self.submit_inner(model, x, Some(notifier), None, false)
    }

    /// [`Client::submit_with_notifier`] for wire frontends: tags the
    /// request with the caller-derived trace id (or assigns one when the
    /// frame carried no `"id"`) and defers trace-ring recording to
    /// [`Client::finish_wire_write`], so the recorded timeline includes
    /// the socket write stage.
    pub(crate) fn submit_wire(
        &self,
        model: &str,
        x: &[f64],
        notifier: Option<CompletionNotifier>,
        trace_id: Option<u64>,
    ) -> Result<PendingPrediction, ServeError> {
        self.submit_inner(model, x, notifier, trace_id, true)
    }

    fn submit_inner(
        &self,
        model: &str,
        x: &[f64],
        notifier: Option<CompletionNotifier>,
        trace_id: Option<u64>,
        wire_managed: bool,
    ) -> Result<PendingPrediction, ServeError> {
        let received = Instant::now();
        let entry = match self.shared.registry.get(model) {
            Ok(entry) => entry,
            Err(e) => {
                // Counted runtime-wide (admitted + rejected reconstructs
                // offered load) but not per-model: there is no entry.
                self.shared.stats.rejected.inc();
                return Err(e);
            }
        };
        let angles = match entry.model().encoder().encoding_angles(x) {
            Ok(angles) => angles,
            Err(e) => {
                entry.stats().rejected.inc();
                self.shared.stats.rejected.inc();
                return Err(ServeError::Model(e));
            }
        };
        let encode_ns = received.elapsed().as_nanos() as u64;
        self.shared.stats.stage_encode.record_ns(encode_ns);
        let trace_id =
            trace_id.unwrap_or_else(|| self.shared.next_trace_id.fetch_add(1, Ordering::Relaxed));
        let trace = TraceState::new(trace_id, received, wire_managed);
        trace.encode_ns.store(encode_ns, Ordering::Relaxed);
        let slot = Arc::new(ResponseSlot::new(notifier, trace));
        let request = Request {
            entry: Arc::clone(&entry),
            angles,
            slot: Arc::clone(&slot),
            admitted: Instant::now(),
        };
        match self.shared.queue.try_push(request) {
            Ok(()) => {
                self.shared.stats.admitted.inc();
                self.shared.stats.in_flight.add(1);
                entry.stats().admitted.inc();
                Ok(PendingPrediction { slot })
            }
            Err(e) => {
                self.shared.stats.rejected.inc();
                entry.stats().rejected.inc();
                Err(e)
            }
        }
    }

    /// Deployed model names with their active versions, sorted by name.
    pub fn models(&self) -> Vec<(String, u64)> {
        self.shared
            .registry
            .entries()
            .into_iter()
            .map(|e| (e.name().to_string(), e.version()))
            .collect()
    }

    /// Current metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        snapshot(&self.shared)
    }

    /// The runtime-wide counters, for wire-frontend bookkeeping (refusal
    /// accounting happens at the socket boundary, outside admission).
    pub(crate) fn runtime_stats(&self) -> &RuntimeStats {
        &self.shared.stats
    }

    /// The metrics registry, for wire frontends that register their own
    /// gauges (per-shard connection counts) alongside the runtime's.
    pub(crate) fn metrics_registry(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }

    /// The most recent `last` completed request timelines, oldest first
    /// (see [`TraceRing::last`]). Empty when tracing is disabled
    /// (`trace_capacity` 0).
    pub fn traces(&self, last: usize) -> Vec<TraceSpan> {
        self.shared.trace.last(last)
    }

    /// The configured trace-ring capacity.
    pub fn trace_capacity(&self) -> usize {
        self.shared.trace.capacity()
    }

    /// Total spans recorded since the runtime started (not bounded by the
    /// ring capacity).
    pub fn traces_recorded(&self) -> u64 {
        self.shared.trace.recorded()
    }

    /// Prometheus-style text exposition of every runtime metric: the
    /// registered counters/gauges/histograms plus dynamic per-model,
    /// encoding-cache and simulator-profiling sections.
    pub fn exposition(&self) -> String {
        self.shared.exposition()
    }

    /// Stamps the wire-write stage on a completed request and records its
    /// span: called by wire frontends once the response bytes have drained
    /// to the socket (`write_ns` = response enqueued → drained).
    pub(crate) fn finish_wire_write(&self, slot: &ResponseSlot, write_ns: u64) {
        self.shared.stats.stage_write.record_ns(write_ns);
        let total_ns = slot.trace.received.elapsed().as_nanos() as u64;
        self.shared
            .trace
            .record(slot.trace.span(write_ns, total_ns));
    }
}

fn snapshot(shared: &Shared) -> MetricsSnapshot {
    let stats = &shared.stats;
    let models = shared.model_metrics();
    MetricsSnapshot {
        uptime: shared.started.elapsed(),
        queue_depth: shared.queue.depth(),
        queue_capacity: shared.queue.capacity(),
        peak_queue_depth: shared.queue.peak_depth(),
        admitted: stats.admitted.get(),
        rejected: stats.rejected.get(),
        completed: stats.completed.get(),
        failed: stats.failed.get(),
        batches: stats.batches.get(),
        batched_requests: stats.batched_requests.get(),
        flush_on_size: stats.flush_on_size.get(),
        flush_on_deadline: stats.flush_on_deadline.get(),
        flush_on_close: stats.flush_on_close.get(),
        wire_refusals: stats.wire_refusals.get(),
        refusal_write_failures: stats.refusal_write_failures.get(),
        promotions: stats.promotions.get(),
        rollbacks: stats.rollbacks.get(),
        candidates_rejected: stats.candidates_rejected.get(),
        train_cycles: stats.train_cycles.get(),
        learner_panics: stats.learner_panics.get(),
        shadow_batches: stats.shadow_batches.get(),
        shadow_requests: stats.shadow_requests.get(),
        draining_models: shared.registry.draining(),
        in_flight: stats.in_flight.get(),
        latency: stats.latency.snapshot(),
        stages: stats.stage_snapshot(),
        models,
    }
}

/// One per-model counter family of the text exposition: the metric-name
/// suffix and the snapshot field it reads.
type ModelCounterColumn = (&'static str, fn(&ModelStatsSnapshot) -> u64);

/// One per-model cache series of the text exposition: full metric name,
/// `# TYPE` keyword, and the [`CacheStats`] field it reads.
type CacheColumn = (&'static str, &'static str, fn(&CacheStats) -> u64);

impl Shared {
    /// Deploys through the registry and counts the promotion.
    pub(crate) fn promote(&self, name: &str, model: CompiledModel) -> Result<u64, ServeError> {
        let version = self.registry.deploy(name, model)?;
        self.stats.promotions.inc();
        Ok(version)
    }

    /// Rolls back through the registry and counts the rollback.
    pub(crate) fn rollback_model(&self, name: &str) -> Result<u64, ServeError> {
        let version = self.registry.rollback(name)?;
        self.stats.rollbacks.inc();
        Ok(version)
    }

    pub(crate) fn install_shadow(
        &self,
        model: &str,
        candidate: CompiledModel,
        rate: f64,
        tag: u64,
    ) -> Result<(), ServeError> {
        if !(rate > 0.0 && rate <= 1.0) {
            return Err(ServeError::InvalidConfig(format!(
                "shadow rate must be in (0, 1], got {rate}"
            )));
        }
        let live = self.registry.get(model)?;
        let live_angles = live.model().encoder().num_angles();
        let candidate_angles = candidate.encoder().num_angles();
        if candidate_angles != live_angles {
            return Err(ServeError::InvalidConfig(format!(
                "shadow candidate expects {candidate_angles} encoding angles \
                 but live model '{model}' produces {live_angles}"
            )));
        }
        let state = Arc::new(ShadowState::new(model, candidate, rate, tag));
        *self.shadow.write().unwrap_or_else(|e| e.into_inner()) = Some(state);
        Ok(())
    }

    pub(crate) fn shadow_report(&self) -> Option<ShadowReport> {
        self.shadow
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|s| s.report())
    }

    pub(crate) fn take_shadow(&self) -> Option<ShadowReport> {
        self.shadow
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .map(|s| s.report())
    }

    fn model_metrics(&self) -> Vec<ModelMetrics> {
        self.registry
            .entries()
            .into_iter()
            .map(|e| ModelMetrics {
                name: e.name().to_string(),
                version: e.version(),
                stats: e.stats().snapshot(),
                cache: e.model().cache_stats(),
            })
            .collect()
    }

    /// Renders the full text exposition: the registered runtime series
    /// first (registration order), then dynamic per-model, encoding-cache
    /// and simulator-profiling sections built from live snapshots.
    pub(crate) fn exposition(&self) -> String {
        let mut out = self.metrics.expose();
        let models = self.model_metrics();
        if !models.is_empty() {
            let labelled: Vec<(String, ModelMetrics)> = models
                .into_iter()
                .map(|m| {
                    (
                        format!("{{model=\"{}\"}}", metrics::escape_label(&m.name)),
                        m,
                    )
                })
                .collect();
            out.push_str("# TYPE quclassi_model_version gauge\n");
            for (label, m) in &labelled {
                metrics::append_sample(
                    &mut out,
                    &format!("quclassi_model_version{label}"),
                    &metrics::format_f64(m.version as f64),
                );
            }
            let counters: [ModelCounterColumn; 4] = [
                ("admitted", |s| s.admitted),
                ("completed", |s| s.completed),
                ("failed", |s| s.failed),
                ("rejected", |s| s.rejected),
            ];
            for (name, get) in counters {
                out.push_str(&format!("# TYPE quclassi_model_{name}_total counter\n"));
                for (label, m) in &labelled {
                    metrics::append_sample(
                        &mut out,
                        &format!("quclassi_model_{name}_total{label}"),
                        &metrics::format_f64(get(&m.stats) as f64),
                    );
                }
            }
            out.push_str("# TYPE quclassi_model_latency_ns histogram\n");
            for (label, m) in &labelled {
                metrics::expose_histogram(
                    &mut out,
                    &format!("quclassi_model_latency_ns{label}"),
                    &m.stats.latency,
                );
            }
            let caches: [CacheColumn; 5] = [
                ("quclassi_cache_hits_total", "counter", |c| c.hits),
                ("quclassi_cache_misses_total", "counter", |c| c.misses),
                ("quclassi_cache_evictions_total", "counter", |c| c.evictions),
                ("quclassi_cache_entries", "gauge", |c| c.entries as u64),
                ("quclassi_cache_capacity", "gauge", |c| c.capacity as u64),
            ];
            for (name, kind, get) in caches {
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                for (label, m) in &labelled {
                    metrics::append_sample(
                        &mut out,
                        &format!("{name}{label}"),
                        &metrics::format_f64(get(&m.cache) as f64),
                    );
                }
            }
        }
        let profile = quclassi_sim::profile::snapshot();
        out.push_str("# TYPE quclassi_sim_profile_enabled gauge\n");
        metrics::append_sample(
            &mut out,
            "quclassi_sim_profile_enabled",
            if quclassi_sim::profile::enabled() {
                "1"
            } else {
                "0"
            },
        );
        let sim: [(&str, u64); 5] = [
            ("quclassi_sim_fused_groups_total", profile.fused_groups),
            ("quclassi_sim_dense_sweeps_total", profile.dense_sweeps),
            (
                "quclassi_sim_diagonal_sweeps_total",
                profile.diagonal_sweeps,
            ),
            (
                "quclassi_sim_permutation_sweeps_total",
                profile.permutation_sweeps,
            ),
            (
                "quclassi_sim_amplitudes_touched_total",
                profile.amplitudes_touched,
            ),
        ];
        for (name, value) in sim {
            out.push_str(&format!("# TYPE {name} counter\n"));
            metrics::append_sample(&mut out, name, &metrics::format_f64(value as f64));
        }
        out
    }
}

/// The scheduler: drains micro-batches, groups them by model entry, fans
/// each group out through the shared executor, and fulfils the slots.
fn scheduler_loop(shared: &Shared) {
    let mut flush_index: u64 = 0;
    while let Some((requests, reason)) = shared
        .queue
        .pop_batch(shared.config.max_batch, shared.config.batch_window)
    {
        shared.stats.record_flush(requests.len(), reason);
        let assemble_started = Instant::now();
        // Group by registry entry, preserving arrival order within each
        // group. Requests pin the entry that admitted them, so a batch
        // spanning a hot-swap serves each request on its own version.
        let mut groups: Vec<(Arc<ModelEntry>, Vec<Request>)> = Vec::new();
        for request in requests {
            // Queue wait ends at scheduler pickup; stamped per request.
            let queue_wait_ns = assemble_started
                .saturating_duration_since(request.admitted)
                .as_nanos() as u64;
            shared.stats.stage_queue_wait.record_ns(queue_wait_ns);
            request
                .slot
                .trace
                .queue_wait_ns
                .store(queue_wait_ns, Ordering::Relaxed);
            match groups
                .iter_mut()
                .find(|(entry, _)| Arc::ptr_eq(entry, &request.entry))
            {
                Some((_, members)) => members.push(request),
                None => {
                    let entry = Arc::clone(&request.entry);
                    groups.push((entry, vec![request]));
                }
            }
        }
        // One assembly stamp per flush (drain → group → dispatch); requests
        // in later groups also wait behind earlier groups' compute, which
        // stays unattributed — hence stage-sum ≈ total, not ==.
        let assemble_ns = assemble_started.elapsed().as_nanos() as u64;
        // One seed per flush, split again per model group, so stochastic
        // streams are a pure function of (base_seed, flush index, group
        // index) — groups in the same flush never share streams.
        let flush_seed = BatchExecutor::job_seed(shared.config.base_seed, flush_index);
        flush_index += 1;
        // One shadow read per flush: install/clear between flushes, never
        // mid-flush.
        let shadow = shared
            .shadow
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        for (group_index, (entry, mut members)) in groups.into_iter().enumerate() {
            let angles: Vec<Vec<f64>> = members
                .iter_mut()
                .map(|r| std::mem::take(&mut r.angles))
                .collect();
            let seed = BatchExecutor::job_seed(flush_seed, group_index as u64);
            // Decide mirroring before the live evaluation (the angles are
            // consumed by it), but run the candidate only *after* every
            // user slot is fulfilled: live responses, seeds and ordering
            // are untouched by the presence of a shadow.
            let mirror = shadow
                .as_ref()
                .filter(|s| s.model() == entry.name() && s.should_mirror())
                .map(Arc::clone);
            let mirror_angles = mirror.as_ref().map(|_| angles.clone());
            let eval_started = Instant::now();
            match entry
                .model()
                .predict_many_from_angles(angles, &shared.executor, seed)
            {
                Ok(predictions) => {
                    let live_elapsed = eval_started.elapsed();
                    let compute_ns = live_elapsed.as_nanos() as u64;
                    let batch_size = members.len() as u64;
                    let live_labels: Option<Vec<usize>> = mirror
                        .as_ref()
                        .map(|_| predictions.iter().map(|p| p.label).collect());
                    for (request, prediction) in members.into_iter().zip(predictions) {
                        let latency_ns = request.admitted.elapsed().as_nanos() as u64;
                        shared.stats.latency.record_ns(latency_ns);
                        entry.stats().latency.record_ns(latency_ns);
                        shared.stats.completed.inc();
                        entry.stats().completed.inc();
                        finish_request(shared, &request, assemble_ns, compute_ns, batch_size);
                        request.slot.fulfill(Ok(ServeResponse {
                            model: entry.name().to_string(),
                            version: entry.version(),
                            prediction,
                        }));
                    }
                    if let (Some(state), Some(angles), Some(labels)) =
                        (mirror, mirror_angles, live_labels)
                    {
                        shadow_evaluate(shared, &state, angles, &labels, live_elapsed, seed);
                    }
                }
                Err(e) => {
                    // The live evaluation itself failed; the mirrored copy
                    // is dropped — a candidate is never judged on traffic
                    // the live model could not serve either. Failed
                    // requests still get a complete trace lifecycle.
                    let compute_ns = eval_started.elapsed().as_nanos() as u64;
                    let batch_size = members.len() as u64;
                    for request in members {
                        shared.stats.failed.inc();
                        entry.stats().failed.inc();
                        finish_request(shared, &request, assemble_ns, compute_ns, batch_size);
                        request.slot.fulfill(Err(ServeError::Model(e.clone())));
                    }
                }
            }
        }
    }
}

/// Final per-request stage bookkeeping on the scheduler, just before
/// fulfilment: stamps the assemble/compute stages and batch size, records
/// the stage histograms, releases the in-flight gauge, and — for
/// in-process requests, which have no write stage — records the completed
/// span into the trace ring. Wire-managed requests defer recording to
/// [`Client::finish_wire_write`] so the span includes the socket drain.
fn finish_request(
    shared: &Shared,
    request: &Request,
    assemble_ns: u64,
    compute_ns: u64,
    batch_size: u64,
) {
    shared.stats.stage_assemble.record_ns(assemble_ns);
    shared.stats.stage_compute.record_ns(compute_ns);
    let trace = &request.slot.trace;
    trace.assemble_ns.store(assemble_ns, Ordering::Relaxed);
    trace.compute_ns.store(compute_ns, Ordering::Relaxed);
    trace.batch_size.store(batch_size, Ordering::Relaxed);
    shared.stats.in_flight.sub(1);
    if !trace.wire_managed {
        // Record before fulfil: a local waiter that returns from `wait`
        // can immediately find its own lifecycle in the ring.
        let total_ns = trace.received.elapsed().as_nanos() as u64;
        shared.trace.record(trace.span(0, total_ns));
    }
}

/// Runs one mirrored group on the shadow candidate and folds the outcome
/// into its report. Runs on the scheduler thread, strictly after the
/// group's user slots were fulfilled from the live model.
fn shadow_evaluate(
    shared: &Shared,
    state: &ShadowState,
    angles: Vec<Vec<f64>>,
    live_labels: &[usize],
    live_elapsed: Duration,
    live_seed: u64,
) {
    let requests = angles.len() as u64;
    // A seed stream disjoint from every live group's (group indices are
    // tiny; u64::MAX is unreachable), so stochastic candidates cannot
    // consume or perturb live randomness.
    let shadow_seed = BatchExecutor::job_seed(live_seed, u64::MAX);
    let started = Instant::now();
    match state
        .candidate()
        .predict_many_from_angles(angles, &shared.executor, shadow_seed)
    {
        Ok(predictions) => {
            let agreements = live_labels
                .iter()
                .zip(&predictions)
                .filter(|(live, shadow)| **live == shadow.label)
                .count() as u64;
            state.record_batch(requests, agreements, live_elapsed, started.elapsed());
            shared.stats.shadow_batches.inc();
            shared.stats.shadow_requests.add(requests);
        }
        Err(_) => {
            state.record_failure(requests);
            shared.stats.shadow_batches.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quclassi::model::{QuClassiConfig, QuClassiModel};
    use quclassi::swap_test::FidelityEstimator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn compiled(seed: u64) -> CompiledModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let model =
            QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng).unwrap();
        CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap()
    }

    fn runtime(config: ServeConfig) -> ServeRuntime {
        ServeRuntime::start(config, BatchExecutor::single_threaded(0)).unwrap()
    }

    #[test]
    fn config_validation_rejects_degenerate_values() {
        assert!(ServeConfig {
            max_batch: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ServeConfig {
            queue_capacity: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn responses_match_direct_compiled_prediction_bit_for_bit() {
        let artifact = compiled(3);
        let xs: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![0.1 * i as f64, 0.3, 0.5, 0.9 - 0.1 * i as f64])
            .collect();
        let mut rng = StdRng::seed_from_u64(0);
        let direct: Vec<Prediction> = xs
            .iter()
            .map(|x| artifact.predict_one(x, &mut rng).unwrap())
            .collect();
        for window_us in [0u64, 100, 5000] {
            let rt = runtime(ServeConfig {
                batch_window: Duration::from_micros(window_us),
                ..Default::default()
            });
            rt.deploy("m", compiled(3)).unwrap();
            let client = rt.client();
            for (x, want) in xs.iter().zip(direct.iter()) {
                let got = client.predict("m", x).unwrap();
                assert_eq!(&got.prediction, want, "window {window_us}µs");
                assert_eq!(got.version, 1);
            }
            rt.shutdown();
        }
    }

    #[test]
    fn admission_rejects_bad_input_synchronously() {
        let rt = runtime(ServeConfig::default());
        rt.deploy("m", compiled(1)).unwrap();
        let client = rt.client();
        // Unknown model.
        assert!(matches!(
            client.predict("ghost", &[0.1; 4]),
            Err(ServeError::UnknownModel(_))
        ));
        // Wrong dimension and out-of-range features are client errors.
        let err = client.predict("m", &[0.1, 0.2]).unwrap_err();
        assert_eq!(err.kind(), "bad_request");
        let err = client.predict("m", &[0.1, 0.2, 0.3, 7.0]).unwrap_err();
        assert_eq!(err.kind(), "bad_request");
        let metrics = rt.shutdown();
        assert_eq!(metrics.completed, 0);
        assert_eq!(
            metrics.rejected, 3,
            "all three admission failures count toward offered load"
        );
        // The unknown-model rejection has no entry to attribute to; the
        // two bad inputs land on model 'm'.
        assert_eq!(metrics.models[0].stats.rejected, 2);
    }

    #[test]
    fn saturation_applies_backpressure() {
        // A runtime whose scheduler is effectively stalled behind a huge
        // window cannot drain; a capacity-2 queue must reject the third
        // concurrent submission.
        let rt = runtime(ServeConfig {
            queue_capacity: 2,
            max_batch: 64,
            batch_window: Duration::from_secs(5),
            ..Default::default()
        });
        rt.deploy("m", compiled(1)).unwrap();
        let client = rt.client();
        let a = client.submit("m", &[0.1; 4]).unwrap();
        let b = client.submit("m", &[0.2; 4]).unwrap();
        // The scheduler may have already drained 0, 1 or 2 of those into
        // its forming batch; fill whatever queue slack remains, then the
        // next submit must saturate.
        let mut pending = vec![a, b];
        let mut rejected = None;
        for i in 0..4 {
            match client.submit("m", &[0.05 + 0.01 * i as f64; 4]) {
                Ok(p) => pending.push(p),
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        let err = rejected.expect("queue should have saturated");
        assert_eq!(err.kind(), "saturated");
        assert!(err.is_retryable());
        // Shutdown drains the admitted requests; all pending slots resolve.
        let rt_metrics = rt.shutdown();
        for p in pending {
            assert!(p.wait().is_ok());
        }
        assert!(rt_metrics.rejected >= 1);
    }

    #[test]
    fn shutdown_drains_admitted_requests_and_rejects_new_ones() {
        let rt = runtime(ServeConfig {
            batch_window: Duration::from_millis(50),
            ..Default::default()
        });
        rt.deploy("m", compiled(1)).unwrap();
        let client = rt.client();
        let pending: Vec<PendingPrediction> = (0..8)
            .map(|i| client.submit("m", &[0.1 + 0.05 * i as f64; 4]).unwrap())
            .collect();
        let metrics = rt.shutdown();
        assert_eq!(metrics.admitted, 8);
        assert_eq!(metrics.completed, 8, "every admitted request is answered");
        for p in pending {
            assert!(p.wait().is_ok());
        }
        assert!(matches!(
            client.predict("m", &[0.1; 4]),
            Err(ServeError::ShutDown)
        ));
    }

    #[test]
    fn hot_swap_serves_each_request_on_the_version_that_admitted_it() {
        let rt = runtime(ServeConfig::default());
        rt.deploy("m", compiled(1)).unwrap();
        let client = rt.client();
        assert_eq!(client.predict("m", &[0.2; 4]).unwrap().version, 1);
        rt.deploy("m", compiled(2)).unwrap();
        assert_eq!(client.predict("m", &[0.2; 4]).unwrap().version, 2);
        assert_eq!(client.models(), vec![("m".to_string(), 2)]);
        // Old version drains once nothing references it.
        assert_eq!(rt.registry().draining(), 0);
        rt.shutdown();
    }

    #[test]
    fn metrics_reflect_batching_and_latency() {
        let rt = runtime(ServeConfig {
            batch_window: Duration::from_millis(20),
            max_batch: 8,
            ..Default::default()
        });
        rt.deploy("m", compiled(1)).unwrap();
        let client = rt.client();
        // Submit a burst without waiting, so the scheduler can batch them.
        let pending: Vec<PendingPrediction> = (0..8)
            .map(|i| client.submit("m", &[0.05 + 0.1 * i as f64; 4]).unwrap())
            .collect();
        for p in pending {
            p.wait().unwrap();
        }
        let m = rt.shutdown();
        assert_eq!(m.completed, 8);
        assert!(m.batches >= 1 && m.batches <= 8);
        assert_eq!(m.batched_requests, 8);
        assert!(m.mean_batch_occupancy() >= 1.0);
        assert_eq!(m.latency.count(), 8);
        assert!(m.latency.quantile_ns(0.5) > 0);
        assert!(m.throughput_rps() > 0.0);
        assert_eq!(m.models.len(), 1);
        assert_eq!(m.models[0].stats.completed, 8);
        assert_eq!(m.models[0].stats.latency.count(), 8);
    }

    #[test]
    fn per_model_stats_are_attributed_correctly() {
        let rt = runtime(ServeConfig::default());
        rt.deploy("a", compiled(1)).unwrap();
        rt.deploy("b", compiled(2)).unwrap();
        let client = rt.client();
        for _ in 0..3 {
            client.predict("a", &[0.3; 4]).unwrap();
        }
        client.predict("b", &[0.3; 4]).unwrap();
        let m = rt.shutdown();
        let by_name: std::collections::HashMap<&str, &ModelMetrics> =
            m.models.iter().map(|mm| (mm.name.as_str(), mm)).collect();
        assert_eq!(by_name["a"].stats.completed, 3);
        assert_eq!(by_name["b"].stats.completed, 1);
        // Repeated identical inputs on 'a' hit its fingerprint cache.
        assert!(by_name["a"].cache.hits >= 1);
    }
}
