//! # quclassi-serve
//!
//! The serving runtime for compiled QuClassi models: the layer that turns
//! the immutable [`quclassi_infer::CompiledModel`] artifact into a system
//! that accepts concurrent requests, batches them, and answers under load.
//!
//! The QuClassi deployment regime (Stein et al., MLSys 2022) is
//! read-heavy: one trained model, millions of cheap fidelity-based
//! queries. This crate supplies the missing runtime between "an artifact
//! that can score a batch" and "a server":
//!
//! * **Admission control & backpressure** — a bounded request queue that
//!   rejects (with a retryable, explicit error) instead of buffering
//!   without bound when the offered load exceeds capacity.
//! * **Dynamic micro-batching** — a scheduler that drains queued requests
//!   into [`quclassi_infer::CompiledModel::predict_many_from_angles`]
//!   fan-outs over a shared [`quclassi_sim::batch::BatchExecutor`],
//!   flushing on a batch-size target or a deadline window
//!   (`QUCLASSI_MAX_BATCH` / `QUCLASSI_BATCH_WINDOW_US`).
//! * **Multi-model registry** — named models with versioned, zero-downtime
//!   hot-swap (load → warm → atomic switch → drain old) and per-model
//!   stats.
//! * **Metrics** — lock-free p50/p90/p99 latency histograms, queue depth,
//!   batch occupancy, throughput, and per-model cache hit rates.
//! * **Two frontends** — the in-process [`Client`] handle (primary,
//!   test-friendly), and a minimal length-prefixed-JSON TCP protocol
//!   ([`WireServer`] / [`WireClient`]) with graceful shutdown, no
//!   dependencies, and a hardened boundary: read/write idle deadlines, a
//!   connection cap with a retryable `saturated` refusal, frame-size
//!   limits and a JSON nesting cap ([`WireConfig`],
//!   `QUCLASSI_MAX_CONNECTIONS` / `QUCLASSI_WIRE_TIMEOUT_MS` /
//!   `QUCLASSI_WIRE_SHARDS`). The TCP server is a readiness-driven
//!   event loop (sharded epoll, request multiplexing via `"id"` echo —
//!   see [`eventloop`]); the original thread-per-connection server
//!   survives as the benchmark baseline
//!   ([`threaded::ThreadedWireServer`]).
//!
//! ## Determinism
//!
//! Serving never changes answers: for deterministic estimators, a
//! response is bit-identical to calling
//! [`quclassi_infer::CompiledModel::predict_one`] directly on the same
//! artifact — regardless of batch window, batch size, thread count, or
//! how concurrent requests interleave (pinned by the `serving` stress
//! suite in the workspace `tests` crate).
//!
//! ## Quickstart
//!
//! ```
//! use quclassi::prelude::*;
//! use quclassi_infer::CompiledModel;
//! use quclassi_serve::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let model =
//!     QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
//! let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
//!
//! let runtime = ServeRuntime::start(
//!     ServeConfig::default(),
//!     BatchExecutor::single_threaded(0),
//! )
//! .unwrap();
//! runtime.deploy("quickstart", compiled).unwrap();
//!
//! let client = runtime.client();
//! let reply = client.predict("quickstart", &[0.2, 0.8, 0.5, 0.1]).unwrap();
//! assert_eq!((reply.model.as_str(), reply.version), ("quickstart", 1));
//!
//! let metrics = runtime.shutdown();
//! assert_eq!(metrics.completed, 1);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod eventloop;
#[cfg(any(test, feature = "fault-injection"))]
pub mod faults;
pub mod json;
pub mod metrics;
#[cfg(quclassi_model)]
pub mod model_support;
pub(crate) mod mutation;
pub mod online;
pub(crate) mod quclassi_sync;
mod queue;
pub mod registry;
pub mod runtime;
pub mod shadow;
pub(crate) mod swap;
pub mod threaded;
pub mod trace;
pub mod wire;

pub use error::ServeError;
pub use eventloop::WireServer;
#[cfg(any(test, feature = "fault-injection"))]
pub use faults::{Fault, FaultPlan};
pub use metrics::{
    Counter, FloatGauge, FlushReason, Gauge, HistogramSnapshot, LatencyHistogram, MetricsRegistry,
    ModelStatsSnapshot, StageLatencies,
};
pub use online::{CycleOutcome, CycleReport, OnlineConfig, OnlineLearner, OnlineReport};
pub use registry::{ModelEntry, ModelRegistry};
pub use runtime::{
    Client, CompletionNotifier, MetricsSnapshot, ModelMetrics, PendingPrediction, ServeConfig,
    ServeResponse, ServeRuntime,
};
pub use shadow::ShadowReport;
pub use threaded::ThreadedWireServer;
pub use trace::{TraceRing, TraceSpan, DEFAULT_TRACE_CAPACITY};
pub use wire::{FrameDecoder, WireClient, WireConfig, WirePrediction};

/// Re-exports of the most commonly used serving types.
pub mod prelude {
    pub use crate::error::ServeError;
    pub use crate::eventloop::WireServer;
    pub use crate::online::{OnlineConfig, OnlineLearner};
    pub use crate::runtime::{Client, MetricsSnapshot, ServeConfig, ServeResponse, ServeRuntime};
    pub use crate::shadow::ShadowReport;
    pub use crate::wire::{WireClient, WireConfig};
    pub use quclassi_sim::batch::BatchExecutor;
}
