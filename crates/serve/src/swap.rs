//! The hot-swap publication core: named, versioned, atomically replaceable
//! entries with drain tracking.
//!
//! Extracted from [`ModelRegistry`](crate::registry::ModelRegistry) so the
//! publication protocol itself — version assignment and map insert in one
//! write-locked critical section, displaced entries retired behind weak
//! references — is generic over the payload and can be model-checked with a
//! cheap payload (`tests/model_registry.rs`) instead of a compiled quantum
//! model. The registry layers warm-up, rollback history, and the public
//! API on top.

use crate::mutation;
use crate::quclassi_sync::{Arc, Mutex, RwLock, Weak};
use std::collections::HashMap;

/// A map of named entries where replacing an entry atomically publishes a
/// new monotonically-versioned `Arc` and tracks the displaced one until its
/// last in-flight reference drops.
#[derive(Debug)]
pub(crate) struct SwapMap<V> {
    active: RwLock<HashMap<String, (u64, Arc<V>)>>,
    retired: Mutex<Vec<Weak<V>>>,
}

impl<V> Default for SwapMap<V> {
    fn default() -> Self {
        SwapMap {
            active: RwLock::new(HashMap::new()),
            retired: Mutex::new(Vec::new()),
        }
    }
}

impl<V> SwapMap<V> {
    /// Publishes `make(version)` under `name`, where `version` is one more
    /// than the name's current version (1 for a first publish). Version
    /// assignment and map insert share one write-locked critical section —
    /// that single lock hold is what makes concurrent publishes of the same
    /// name linearise with unique, monotonic versions.
    ///
    /// Returns the assigned version and the displaced `(version, entry)`,
    /// if any. The displaced entry is also retired for
    /// [`SwapMap::draining`] accounting.
    pub(crate) fn publish(
        &self,
        name: &str,
        make: impl FnOnce(u64) -> V,
    ) -> (u64, Option<(u64, Arc<V>)>) {
        let mut active = self.active.write().unwrap_or_else(|e| e.into_inner());
        let version = active.get(name).map(|(v, _)| v + 1).unwrap_or(1);
        if mutation::swap_split_publish() {
            // Mutation point: surrendering the lock between version
            // assignment and insert lets two publishers assign the same
            // version — tests/model_registry.rs proves the checker sees it.
            drop(active);
            active = self.active.write().unwrap_or_else(|e| e.into_inner());
        }
        let entry = Arc::new(make(version));
        let displaced = active.insert(name.to_string(), (version, entry));
        drop(active);
        if let Some((_, old)) = &displaced {
            self.retired
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::downgrade(old));
            // The displaced Arc drops with `displaced` unless the caller
            // keeps it; the entry stays alive exactly as long as in-flight
            // references do.
        }
        (version, displaced)
    }

    /// The current `(version, entry)` for `name`, if published.
    pub(crate) fn get(&self, name: &str) -> Option<(u64, Arc<V>)> {
        self.active
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|(v, e)| (*v, Arc::clone(e)))
    }

    /// The current version of `name`, if published.
    pub(crate) fn version_of(&self, name: &str) -> Option<u64> {
        self.active
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|(v, _)| *v)
    }

    /// Published names, sorted.
    pub(crate) fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .active
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Current entries, sorted by name.
    pub(crate) fn entries(&self) -> Vec<Arc<V>> {
        let mut entries: Vec<(String, Arc<V>)> = self
            .active
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, (_, e))| (name.clone(), Arc::clone(e)))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.into_iter().map(|(_, e)| e).collect()
    }

    /// Number of displaced entries still referenced somewhere. Dead weak
    /// references are pruned on each call.
    pub(crate) fn draining(&self) -> usize {
        let mut retired = self.retired.lock().unwrap_or_else(|e| e.into_inner());
        retired.retain(|w| w.strong_count() > 0);
        retired.len()
    }
}
