//! A synthetic MNIST-like handwritten-digit generator (paper Section 5.3).
//!
//! **Substitution note (see DESIGN.md §5):** the original MNIST image files
//! are not bundled. The paper's MNIST experiments only consume PCA-reduced,
//! min–max-normalised feature vectors, so what matters is a 10-class image
//! distribution with (a) 28×28 = 784 raw dimensions, (b) classes that are
//! mostly separable after PCA, and (c) the familiar confusion structure
//! (3 ↔ 8 ↔ 9 hard, 4 ↔ 9 hard, 1 and 0 easy). This module procedurally
//! renders each digit from a 7×7 stroke template upscaled to 28×28, then
//! perturbs every sample with a random translation, per-sample intensity
//! scaling, optional thickening, smoothing and pixel noise.

use crate::dataset::Dataset;
use rand::Rng;
use rand::SeedableRng;

/// Image side length (28 pixels, like MNIST).
pub const IMAGE_SIDE: usize = 28;
/// Number of pixels per image (784, like MNIST).
pub const IMAGE_PIXELS: usize = IMAGE_SIDE * IMAGE_SIDE;
/// Number of digit classes.
pub const NUM_CLASSES: usize = 10;

/// 7×7 stroke templates for the ten digits ('X' = ink).
const TEMPLATES: [[&str; 7]; 10] = [
    // 0
    [
        ".XXXXX.", "X.....X", "X.....X", "X.....X", "X.....X", "X.....X", ".XXXXX.",
    ],
    // 1
    [
        "...X...", "..XX...", "...X...", "...X...", "...X...", "...X...", "..XXX..",
    ],
    // 2
    [
        ".XXXXX.", "X.....X", "......X", ".....X.", "...XX..", ".XX....", "XXXXXXX",
    ],
    // 3
    [
        ".XXXXX.", "......X", "......X", "..XXXX.", "......X", "......X", ".XXXXX.",
    ],
    // 4
    [
        "X....X.", "X....X.", "X....X.", "XXXXXXX", ".....X.", ".....X.", ".....X.",
    ],
    // 5
    [
        "XXXXXXX", "X......", "X......", "XXXXXX.", "......X", "......X", "XXXXXX.",
    ],
    // 6
    [
        ".XXXXX.", "X......", "X......", "XXXXXX.", "X.....X", "X.....X", ".XXXXX.",
    ],
    // 7
    [
        "XXXXXXX", "......X", ".....X.", "....X..", "...X...", "..X....", "..X....",
    ],
    // 8
    [
        ".XXXXX.", "X.....X", "X.....X", ".XXXXX.", "X.....X", "X.....X", ".XXXXX.",
    ],
    // 9
    [
        ".XXXXX.", "X.....X", "X.....X", ".XXXXXX", "......X", "......X", ".XXXXX.",
    ],
];

/// Renders the clean (noise-free, centred) 28×28 prototype of a digit with
/// pixel intensities in [0, 1].
pub fn prototype(digit: usize) -> Vec<f64> {
    assert!(digit < NUM_CLASSES, "digit {digit} out of range");
    let template = &TEMPLATES[digit];
    let mut image = vec![0.0; IMAGE_PIXELS];
    let scale = IMAGE_SIDE / 7; // 4 pixels per template cell
    for (r, row) in template.iter().enumerate() {
        for (c, ch) in row.chars().enumerate() {
            if ch == 'X' {
                for dr in 0..scale {
                    for dc in 0..scale {
                        let rr = r * scale + dr;
                        let cc = c * scale + dc;
                        image[rr * IMAGE_SIDE + cc] = 1.0;
                    }
                }
            }
        }
    }
    image
}

/// One 3×3 box-blur pass (keeps values in [0, 1], softens the block edges so
/// that PCA components are smooth like on real handwriting).
fn smooth(image: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; IMAGE_PIXELS];
    for r in 0..IMAGE_SIDE {
        for c in 0..IMAGE_SIDE {
            let mut acc = 0.0;
            let mut count = 0.0;
            for dr in -1i32..=1 {
                for dc in -1i32..=1 {
                    let rr = r as i32 + dr;
                    let cc = c as i32 + dc;
                    if (0..IMAGE_SIDE as i32).contains(&rr) && (0..IMAGE_SIDE as i32).contains(&cc)
                    {
                        acc += image[rr as usize * IMAGE_SIDE + cc as usize];
                        count += 1.0;
                    }
                }
            }
            out[r * IMAGE_SIDE + c] = acc / count;
        }
    }
    out
}

/// Translates an image by (dr, dc) pixels, filling with zeros.
fn translate(image: &[f64], dr: i32, dc: i32) -> Vec<f64> {
    let mut out = vec![0.0; IMAGE_PIXELS];
    for r in 0..IMAGE_SIDE as i32 {
        for c in 0..IMAGE_SIDE as i32 {
            let sr = r - dr;
            let sc = c - dc;
            if (0..IMAGE_SIDE as i32).contains(&sr) && (0..IMAGE_SIDE as i32).contains(&sc) {
                out[(r as usize) * IMAGE_SIDE + c as usize] =
                    image[(sr as usize) * IMAGE_SIDE + sc as usize];
            }
        }
    }
    out
}

/// Dilates ink by one pixel (simulates a thicker pen stroke).
fn thicken(image: &[f64]) -> Vec<f64> {
    let mut out = image.to_vec();
    for r in 0..IMAGE_SIDE {
        for c in 0..IMAGE_SIDE {
            if image[r * IMAGE_SIDE + c] > 0.5 {
                for (dr, dc) in [(0i32, 1i32), (0, -1), (1, 0), (-1, 0)] {
                    let rr = r as i32 + dr;
                    let cc = c as i32 + dc;
                    if (0..IMAGE_SIDE as i32).contains(&rr) && (0..IMAGE_SIDE as i32).contains(&cc)
                    {
                        let idx = rr as usize * IMAGE_SIDE + cc as usize;
                        out[idx] = out[idx].max(0.8);
                    }
                }
            }
        }
    }
    out
}

/// Renders one randomly perturbed sample of a digit.
pub fn sample_digit<R: Rng + ?Sized>(digit: usize, rng: &mut R) -> Vec<f64> {
    let mut image = prototype(digit);
    if rng.gen_bool(0.4) {
        image = thicken(&image);
    }
    let dr = rng.gen_range(-2i32..=2);
    let dc = rng.gen_range(-2i32..=2);
    image = translate(&image, dr, dc);
    image = smooth(&image);
    let intensity: f64 = rng.gen_range(0.75..1.0);
    let noise_level: f64 = rng.gen_range(0.02..0.08);
    for px in &mut image {
        let noise: f64 = rng.gen_range(-1.0..1.0) * noise_level;
        *px = (*px * intensity + noise).clamp(0.0, 1.0);
    }
    image
}

/// Generates a full synthetic-MNIST dataset with `per_class` samples of every
/// digit, deterministically from `seed`. Pixel values are already in [0, 1].
pub fn generate(per_class: usize, seed: u64) -> Dataset {
    assert!(per_class >= 1, "need at least one sample per class");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut features = Vec::with_capacity(per_class * NUM_CLASSES);
    let mut labels = Vec::with_capacity(per_class * NUM_CLASSES);
    for digit in 0..NUM_CLASSES {
        for _ in 0..per_class {
            features.push(sample_digit(digit, &mut rng));
            labels.push(digit);
        }
    }
    Dataset::new(features, labels, NUM_CLASSES)
        .with_class_names((0..NUM_CLASSES).map(|d| d.to_string()).collect())
}

/// Renders an image as ASCII art (rows of ' ', '.', 'o', '#') for terminal
/// inspection in the examples.
pub fn render_ascii(image: &[f64]) -> String {
    assert_eq!(image.len(), IMAGE_PIXELS, "expected a 28x28 image");
    let mut out = String::with_capacity(IMAGE_PIXELS + IMAGE_SIDE);
    for r in 0..IMAGE_SIDE {
        for c in 0..IMAGE_SIDE {
            let v = image[r * IMAGE_SIDE + c];
            out.push(match v {
                v if v > 0.75 => '#',
                v if v > 0.45 => 'o',
                v if v > 0.15 => '.',
                _ => ' ',
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pixel_distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn prototypes_have_right_shape_and_range() {
        for d in 0..NUM_CLASSES {
            let p = prototype(d);
            assert_eq!(p.len(), IMAGE_PIXELS);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let ink: f64 = p.iter().sum();
            assert!(ink > 50.0, "digit {d} has almost no ink");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_digit_panics() {
        let _ = prototype(10);
    }

    #[test]
    fn generate_shapes_and_determinism() {
        let a = generate(5, 42);
        assert_eq!(a.len(), 50);
        assert_eq!(a.dim(), IMAGE_PIXELS);
        assert_eq!(a.num_classes, NUM_CLASSES);
        assert_eq!(a.class_counts(), vec![5; 10]);
        let b = generate(5, 42);
        assert_eq!(a, b);
        let c = generate(5, 43);
        assert_ne!(a.features, c.features);
    }

    #[test]
    fn pixels_stay_in_unit_interval() {
        let d = generate(3, 7);
        for row in &d.features {
            for &px in row {
                assert!((0.0..=1.0).contains(&px));
            }
        }
    }

    #[test]
    fn samples_of_same_digit_vary_but_stay_close_to_prototype() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let proto = smooth(&prototype(0));
        let s1 = sample_digit(0, &mut rng);
        let s2 = sample_digit(0, &mut rng);
        assert!(pixel_distance(&s1, &s2) > 0.1, "samples should differ");
        // Same-class distance should be smaller than distance to a very
        // different digit (1).
        let other = smooth(&prototype(1));
        assert!(pixel_distance(&s1, &proto) < pixel_distance(&s1, &other));
    }

    #[test]
    fn confusable_pairs_are_closer_than_distinct_pairs() {
        // 3 vs 8 (confusable on MNIST) should be closer in pixel space than
        // 1 vs 0 (easy pair).
        let d = |a: usize, b: usize| pixel_distance(&prototype(a), &prototype(b));
        assert!(d(3, 8) < d(1, 0), "3/8 = {}, 1/0 = {}", d(3, 8), d(1, 0));
        assert!(d(3, 9) < d(1, 0));
        assert!(d(5, 6) < d(1, 0));
    }

    #[test]
    fn ascii_rendering_shape() {
        let art = render_ascii(&prototype(8));
        assert_eq!(art.lines().count(), IMAGE_SIDE);
        assert!(art.contains('#'));
    }

    #[test]
    fn translation_and_thickening_preserve_shape_and_range() {
        let p = prototype(4);
        let t = translate(&p, 2, -1);
        assert_eq!(t.len(), IMAGE_PIXELS);
        let ink_before: f64 = p.iter().sum();
        let ink_after: f64 = t.iter().sum();
        // Translation by ≤2 px may clip a little ink but not much.
        assert!(ink_after > 0.8 * ink_before);
        let thick = thicken(&p);
        let ink_thick: f64 = thick.iter().sum();
        assert!(ink_thick > ink_before);
    }
}
