//! # quclassi-datasets
//!
//! Datasets and preprocessing for the QuClassi reproduction:
//!
//! * [`iris`] — the three-class Iris problem, regenerated from the published
//!   per-class statistics (see DESIGN.md §5 for the substitution rationale);
//! * [`mnist`] — a procedural synthetic MNIST-like digit generator
//!   (28×28 images, 10 classes, the paper's confusion structure);
//! * [`dataset`] — the in-memory [`dataset::Dataset`] container with class
//!   filtering, stratified splitting and per-class subsampling;
//! * [`preprocess`] — min–max normalisation into the `[0, 1]` range the
//!   quantum encoder requires;
//! * [`stream`] — infinite seeded-shuffle replay of a dataset as a labelled
//!   sample stream for the online-learning pipeline.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod iris;
pub mod mnist;
pub mod preprocess;
pub mod stream;

/// Re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::dataset::Dataset;
    pub use crate::preprocess::{normalize_dataset, normalize_split, MinMaxScaler};
    pub use crate::stream::ReplayStream;
}
