//! Feature normalisation (paper Section 4.2 requires every feature in
//! `[0, 1]` before quantum encoding).

use crate::dataset::Dataset;

/// A fitted per-feature min–max scaler mapping features into [0, 1].
#[derive(Clone, Debug, PartialEq)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits the scaler on a dataset's features.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(features: &[Vec<f64>]) -> Self {
        assert!(
            !features.is_empty(),
            "cannot fit a scaler on an empty dataset"
        );
        let dim = features[0].len();
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for row in features {
            assert_eq!(row.len(), dim, "ragged feature rows");
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        MinMaxScaler { mins, maxs }
    }

    /// Transforms one sample, clamping to [0, 1] (values outside the fitted
    /// range — e.g. test samples — are clipped rather than leaking out of the
    /// encoder's valid domain).
    pub fn transform_one(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mins.len(), "scaler dimension mismatch");
        x.iter()
            .enumerate()
            .map(|(j, &v)| {
                let range = self.maxs[j] - self.mins[j];
                if range <= f64::EPSILON {
                    0.5
                } else {
                    ((v - self.mins[j]) / range).clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    /// Transforms a set of samples.
    pub fn transform(&self, features: &[Vec<f64>]) -> Vec<Vec<f64>> {
        features.iter().map(|x| self.transform_one(x)).collect()
    }

    /// Fits on the training features and returns both sets transformed.
    pub fn fit_transform_pair(
        train: &[Vec<f64>],
        test: &[Vec<f64>],
    ) -> (Self, Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let scaler = MinMaxScaler::fit(train);
        let t = scaler.transform(train);
        let e = scaler.transform(test);
        (scaler, t, e)
    }
}

/// Normalises a whole dataset in place with a scaler fitted on itself.
pub fn normalize_dataset(dataset: &Dataset) -> Dataset {
    let scaler = MinMaxScaler::fit(&dataset.features);
    let mut out = dataset.clone();
    out.features = scaler.transform(&dataset.features);
    out
}

/// Normalises a train/test pair with a scaler fitted on the training set
/// only (no information leak from the test set).
pub fn normalize_split(train: &Dataset, test: &Dataset) -> (Dataset, Dataset) {
    let scaler = MinMaxScaler::fit(&train.features);
    let mut tr = train.clone();
    let mut te = test.clone();
    tr.features = scaler.transform(&train.features);
    te.features = scaler.transform(&test.features);
    (tr, te)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_maps_into_unit_interval() {
        let data = vec![vec![-2.0, 10.0], vec![0.0, 20.0], vec![2.0, 30.0]];
        let scaler = MinMaxScaler::fit(&data);
        let t = scaler.transform(&data);
        assert_eq!(t[0], vec![0.0, 0.0]);
        assert_eq!(t[2], vec![1.0, 1.0]);
        assert!((t[1][0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let scaler = MinMaxScaler::fit(&[vec![0.0], vec![1.0]]);
        assert_eq!(scaler.transform_one(&[5.0]), vec![1.0]);
        assert_eq!(scaler.transform_one(&[-5.0]), vec![0.0]);
    }

    #[test]
    fn constant_features_map_to_half() {
        let scaler = MinMaxScaler::fit(&[vec![3.0, 1.0], vec![3.0, 2.0]]);
        let t = scaler.transform_one(&[3.0, 1.5]);
        assert_eq!(t[0], 0.5);
        assert!((t[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_panics() {
        let _ = MinMaxScaler::fit(&[]);
    }

    #[test]
    fn normalize_dataset_and_split() {
        let d = Dataset::new(vec![vec![0.0, 100.0], vec![10.0, 200.0]], vec![0, 1], 2);
        let n = normalize_dataset(&d);
        assert_eq!(n.features[0], vec![0.0, 0.0]);
        assert_eq!(n.features[1], vec![1.0, 1.0]);

        let train = Dataset::new(vec![vec![0.0], vec![10.0]], vec![0, 1], 2);
        let test = Dataset::new(vec![vec![5.0], vec![20.0]], vec![0, 1], 2);
        let (tr, te) = normalize_split(&train, &test);
        assert_eq!(tr.features[1], vec![1.0]);
        assert!((te.features[0][0] - 0.5).abs() < 1e-12);
        // Test value above the training range is clamped.
        assert_eq!(te.features[1], vec![1.0]);
    }

    #[test]
    fn fit_transform_pair_uses_train_statistics() {
        let train = vec![vec![0.0], vec![4.0]];
        let test = vec![vec![2.0]];
        let (_, t, e) = MinMaxScaler::fit_transform_pair(&train, &test);
        assert_eq!(t[1], vec![1.0]);
        assert!((e[0][0] - 0.5).abs() < 1e-12);
    }
}
