//! The Iris dataset (paper Section 5.2).
//!
//! **Substitution note (see DESIGN.md §5):** the original UCI Iris data file
//! is not bundled with this repository. Instead the dataset is regenerated
//! from the published per-class summary statistics (means and standard
//! deviations of the four features for *setosa*, *versicolor* and
//! *virginica*, 50 samples each) with a deterministic Gaussian sampler. The
//! regenerated data preserves the property the paper's experiment relies on:
//! setosa is linearly separable from the other two classes, while versicolor
//! and virginica overlap, so a classifier lands in the mid-90 % accuracy
//! band rather than at 100 %.

use crate::dataset::Dataset;
use rand::Rng;
use rand::SeedableRng;

/// Feature names, in column order.
pub const FEATURE_NAMES: [&str; 4] = [
    "sepal length (cm)",
    "sepal width (cm)",
    "petal length (cm)",
    "petal width (cm)",
];

/// Class names, in label order.
pub const CLASS_NAMES: [&str; 3] = ["setosa", "versicolor", "virginica"];

/// Published per-class feature means (rows: setosa, versicolor, virginica).
const MEANS: [[f64; 4]; 3] = [
    [5.006, 3.428, 1.462, 0.246],
    [5.936, 2.770, 4.260, 1.326],
    [6.588, 2.974, 5.552, 2.026],
];

/// Published per-class feature standard deviations.
const STDS: [[f64; 4]; 3] = [
    [0.352, 0.379, 0.174, 0.105],
    [0.516, 0.314, 0.470, 0.198],
    [0.636, 0.322, 0.552, 0.275],
];

/// Within-class correlation strength between petal length and petal width
/// (the two most correlated features of the real data).
const PETAL_CORRELATION: f64 = 0.45;

/// Samples one standard-normal value via the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates the Iris-statistics dataset: `per_class` samples of each of the
/// three species (the original has 50), deterministically from `seed`.
pub fn load_with(per_class: usize, seed: u64) -> Dataset {
    assert!(per_class >= 1, "need at least one sample per class");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut features = Vec::with_capacity(per_class * 3);
    let mut labels = Vec::with_capacity(per_class * 3);
    for class in 0..3 {
        for _ in 0..per_class {
            let mut row = [0.0f64; 4];
            let shared = standard_normal(&mut rng);
            for j in 0..4 {
                let independent = standard_normal(&mut rng);
                // Correlate the two petal measurements through a shared factor.
                let z = if j >= 2 {
                    PETAL_CORRELATION * shared
                        + (1.0 - PETAL_CORRELATION.powi(2)).sqrt() * independent
                } else {
                    independent
                };
                row[j] = (MEANS[class][j] + STDS[class][j] * z).max(0.05);
            }
            features.push(row.to_vec());
            labels.push(class);
        }
    }
    Dataset::new(features, labels, 3)
        .with_class_names(CLASS_NAMES.iter().map(|s| s.to_string()).collect())
}

/// Generates the standard 150-sample dataset (50 per class) with the default
/// seed used throughout the repository's experiments.
pub fn load() -> Dataset {
    load_with(50, 0x1215)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_load_shape() {
        let d = load();
        assert_eq!(d.len(), 150);
        assert_eq!(d.dim(), 4);
        assert_eq!(d.num_classes, 3);
        assert_eq!(d.class_counts(), vec![50, 50, 50]);
        assert_eq!(d.class_names.len(), 3);
    }

    #[test]
    fn load_is_deterministic() {
        let a = load();
        let b = load();
        assert_eq!(a, b);
        let c = load_with(50, 99);
        assert_ne!(a.features, c.features);
    }

    #[test]
    fn per_class_means_match_published_statistics() {
        let d = load_with(400, 7);
        for (class, class_means) in MEANS.iter().enumerate() {
            for (j, &target) in class_means.iter().enumerate() {
                let values: Vec<f64> = d
                    .features
                    .iter()
                    .zip(d.labels.iter())
                    .filter(|(_, &y)| y == class)
                    .map(|(x, _)| x[j])
                    .collect();
                let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
                assert!(
                    (mean - target).abs() < 0.12,
                    "class {class} feature {j}: mean {mean} vs {target}"
                );
            }
        }
    }

    #[test]
    fn setosa_is_separable_by_petal_length() {
        // The defining property of Iris: setosa petal length < 2.5 < others.
        let d = load();
        for (x, &y) in d.features.iter().zip(d.labels.iter()) {
            if y == 0 {
                assert!(x[2] < 2.6, "setosa sample with petal length {}", x[2]);
            } else {
                assert!(x[2] > 2.6, "non-setosa sample with petal length {}", x[2]);
            }
        }
    }

    #[test]
    fn versicolor_and_virginica_overlap() {
        // The two non-setosa classes should not be trivially separable on any
        // single feature: their min/max ranges overlap for petal length.
        let d = load();
        let values = |class: usize| -> Vec<f64> {
            d.features
                .iter()
                .zip(d.labels.iter())
                .filter(|(_, &y)| y == class)
                .map(|(x, _)| x[2])
                .collect()
        };
        let versicolor = values(1);
        let virginica = values(2);
        let max_versicolor = versicolor.iter().cloned().fold(f64::MIN, f64::max);
        let min_virginica = virginica.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max_versicolor > min_virginica,
            "expected overlap: versicolor max {max_versicolor}, virginica min {min_virginica}"
        );
    }

    #[test]
    fn all_features_positive() {
        let d = load();
        for row in &d.features {
            for &v in row {
                assert!(v > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_per_class_panics() {
        let _ = load_with(0, 1);
    }
}
