//! A small in-memory labelled dataset and the operations the experiments
//! need: class filtering/relabelling, stratified splitting and subsampling.

use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled dataset with dense feature rows.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    /// Feature rows, all of the same length.
    pub features: Vec<Vec<f64>>,
    /// Labels aligned with `features`, in `0..num_classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
    /// Optional human-readable class names (length `num_classes` when set).
    pub class_names: Vec<String>,
}

impl Dataset {
    /// Creates a dataset, validating shapes and label ranges.
    ///
    /// # Panics
    /// Panics on ragged features, mismatched lengths or out-of-range labels.
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(
            features.len(),
            labels.len(),
            "features/labels length mismatch"
        );
        assert!(!features.is_empty(), "a dataset needs at least one sample");
        let dim = features[0].len();
        for row in &features {
            assert_eq!(row.len(), dim, "ragged feature rows");
        }
        for &y in &labels {
            assert!(
                y < num_classes,
                "label {y} out of range for {num_classes} classes"
            );
        }
        Dataset {
            features,
            labels,
            num_classes,
            class_names: Vec::new(),
        }
    }

    /// Attaches class names.
    pub fn with_class_names(mut self, names: Vec<String>) -> Self {
        assert_eq!(names.len(), self.num_classes, "one name per class required");
        self.class_names = names;
        self
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset is empty (never true for constructed datasets).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features[0].len()
    }

    /// Number of samples in each class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &y in &self.labels {
            counts[y] += 1;
        }
        counts
    }

    /// Keeps only the listed classes (in the given order) and relabels them
    /// `0..classes.len()`. Used for the paper's digit-pair and digit-subset
    /// tasks, e.g. `filter_classes(&[3, 6])` builds the (3, 6) binary task.
    pub fn filter_classes(&self, classes: &[usize]) -> Dataset {
        assert!(!classes.is_empty(), "must keep at least one class");
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for (x, &y) in self.features.iter().zip(self.labels.iter()) {
            if let Some(new_label) = classes.iter().position(|&c| c == y) {
                features.push(x.clone());
                labels.push(new_label);
            }
        }
        let class_names = if self.class_names.is_empty() {
            classes.iter().map(|c| c.to_string()).collect()
        } else {
            classes
                .iter()
                .map(|&c| {
                    self.class_names
                        .get(c)
                        .cloned()
                        .unwrap_or_else(|| c.to_string())
                })
                .collect()
        };
        Dataset::new(features, labels, classes.len()).with_class_names(class_names)
    }

    /// Randomly keeps at most `per_class` samples of every class.
    pub fn subsample_per_class<R: Rng + ?Sized>(&self, per_class: usize, rng: &mut R) -> Dataset {
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.num_classes];
        for (i, &y) in self.labels.iter().enumerate() {
            by_class[y].push(i);
        }
        let mut keep = Vec::new();
        for indices in &mut by_class {
            indices.shuffle(rng);
            keep.extend(indices.iter().take(per_class).copied());
        }
        keep.sort_unstable();
        let features = keep.iter().map(|&i| self.features[i].clone()).collect();
        let labels = keep.iter().map(|&i| self.labels[i]).collect();
        let mut out = Dataset::new(features, labels, self.num_classes);
        out.class_names = self.class_names.clone();
        out
    }

    /// Stratified train/test split: `train_fraction` of each class goes to
    /// the training set (at least one sample per class in each side when the
    /// class has ≥ 2 samples).
    pub fn stratified_split<R: Rng + ?Sized>(
        &self,
        train_fraction: f64,
        rng: &mut R,
    ) -> (Dataset, Dataset) {
        assert!(
            (0.0..1.0).contains(&train_fraction) && train_fraction > 0.0,
            "train fraction must be in (0, 1)"
        );
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.num_classes];
        for (i, &y) in self.labels.iter().enumerate() {
            by_class[y].push(i);
        }
        for indices in &mut by_class {
            if indices.is_empty() {
                continue;
            }
            indices.shuffle(rng);
            let mut n_train = (indices.len() as f64 * train_fraction).round() as usize;
            n_train = n_train.clamp(1, indices.len().saturating_sub(1).max(1));
            train_idx.extend(indices.iter().take(n_train).copied());
            test_idx.extend(indices.iter().skip(n_train).copied());
        }
        let build = |idx: &[usize]| -> Dataset {
            let features = idx.iter().map(|&i| self.features[i].clone()).collect();
            let labels = idx.iter().map(|&i| self.labels[i]).collect();
            let mut d = Dataset::new(features, labels, self.num_classes);
            d.class_names = self.class_names.clone();
            d
        };
        (build(&train_idx), build(&test_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            features.push(vec![i as f64, (i % 3) as f64]);
            labels.push(i % 3);
        }
        Dataset::new(features, labels, 3)
    }

    #[test]
    fn construction_and_counts() {
        let d = toy();
        assert_eq!(d.len(), 30);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.class_counts(), vec![10, 10, 10]);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Dataset::new(vec![vec![1.0]], vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let _ = Dataset::new(vec![vec![1.0]], vec![5], 2);
    }

    #[test]
    fn filter_classes_relabels() {
        let d = toy();
        let pair = d.filter_classes(&[2, 0]);
        assert_eq!(pair.num_classes, 2);
        assert_eq!(pair.len(), 20);
        // Old class 2 is new class 0; old class 0 is new class 1.
        for (x, &y) in pair.features.iter().zip(pair.labels.iter()) {
            let old = x[1] as usize;
            let expected = if old == 2 { 0 } else { 1 };
            assert_eq!(y, expected);
        }
        assert_eq!(pair.class_names, vec!["2".to_string(), "0".to_string()]);
    }

    #[test]
    fn subsample_caps_each_class() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(0);
        let s = d.subsample_per_class(3, &mut rng);
        assert_eq!(s.class_counts(), vec![3, 3, 3]);
        // Requesting more than available keeps everything.
        let s = d.subsample_per_class(100, &mut rng);
        assert_eq!(s.len(), 30);
    }

    #[test]
    fn stratified_split_preserves_class_balance() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = d.stratified_split(0.7, &mut rng);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(train.class_counts(), vec![7, 7, 7]);
        assert_eq!(test.class_counts(), vec![3, 3, 3]);
        // No overlap: every feature row appears exactly once across the split.
        let mut all: Vec<f64> = train
            .features
            .iter()
            .chain(test.features.iter())
            .map(|r| r[0])
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f64> = (0..30).map(|i| i as f64).collect();
        assert_eq!(all, expected);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn bad_split_fraction_panics() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(2);
        let _ = d.stratified_split(1.5, &mut rng);
    }

    #[test]
    fn class_names_follow_filtering() {
        let d = toy().with_class_names(vec!["a".into(), "b".into(), "c".into()]);
        let f = d.filter_classes(&[1]);
        assert_eq!(f.class_names, vec!["b".to_string()]);
    }
}
