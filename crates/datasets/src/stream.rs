//! Streaming replay of the bundled datasets for online learning.
//!
//! The serving runtime's `OnlineLearner` consumes labelled samples from an
//! infinite iterator rather than a fixed in-memory split: production traffic
//! never ends, so the training side of a train-while-serve pipeline should
//! not either. [`ReplayStream`] turns any [`Dataset`] into such a stream by
//! replaying it forever with a **seeded shuffle that is re-drawn on every
//! pass**, so (a) two streams built with the same seed yield bit-identical
//! sequences — the determinism contract the fault-injection harness relies
//! on — and (b) consecutive windows do not see the samples in a fixed order.
//!
//! The iterator yields plain `(Vec<f64>, usize)` pairs so downstream crates
//! (notably `quclassi-serve`) can consume labelled samples without depending
//! on this crate's `Dataset` type.

use crate::dataset::Dataset;
use crate::mnist;
use crate::preprocess::normalize_dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Odd multiplier from SplitMix64, used to derive one shuffle seed per pass.
const PASS_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// An infinite, deterministically shuffled replay of a labelled dataset.
///
/// Every pass over the underlying samples uses a fresh permutation derived
/// from `seed` and the pass index, so the stream is reproducible end to end
/// while still decorrelating successive training windows.
///
/// ```
/// use quclassi_datasets::stream::ReplayStream;
///
/// let mut a = ReplayStream::iris(7);
/// let mut b = ReplayStream::iris(7);
/// for _ in 0..300 {
///     assert_eq!(a.next(), b.next()); // same seed ⇒ same stream
/// }
/// ```
#[derive(Clone, Debug)]
pub struct ReplayStream {
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    num_classes: usize,
    seed: u64,
    order: Vec<usize>,
    cursor: usize,
    pass: u64,
}

impl ReplayStream {
    /// Builds a stream replaying `dataset` as-is (no normalisation applied;
    /// use the convenience constructors for encoder-ready features).
    pub fn new(dataset: &Dataset, seed: u64) -> Self {
        let mut stream = ReplayStream {
            features: dataset.features.clone(),
            labels: dataset.labels.clone(),
            num_classes: dataset.num_classes,
            seed,
            order: (0..dataset.len()).collect(),
            cursor: 0,
            pass: 0,
        };
        stream.reshuffle();
        stream
    }

    /// The Iris stream: 150 samples, 4 features min–max normalised into
    /// `[0, 1]`, 3 classes.
    pub fn iris(seed: u64) -> Self {
        ReplayStream::new(&normalize_dataset(&crate::iris::load()), seed)
    }

    /// A binary MNIST-digit stream with images average-pooled down to a
    /// `pool × pool` grid (e.g. `pool = 4` gives the paper's 16-feature
    /// MNIST shape) and min–max normalised into `[0, 1]`.
    ///
    /// # Panics
    /// Panics if the digits are equal or out of range, `per_class` is zero,
    /// or `pool` does not divide evenly into the 28-pixel image side.
    pub fn mnist_pair(
        digit_a: usize,
        digit_b: usize,
        per_class: usize,
        pool: usize,
        seed: u64,
    ) -> Self {
        assert_ne!(digit_a, digit_b, "need two distinct digits");
        let full = mnist::generate(per_class, seed).filter_classes(&[digit_a, digit_b]);
        let pooled = Dataset::new(
            full.features
                .iter()
                .map(|img| pool_image(img, pool))
                .collect(),
            full.labels.clone(),
            full.num_classes,
        )
        .with_class_names(full.class_names.clone());
        ReplayStream::new(&normalize_dataset(&pooled), seed)
    }

    /// Number of distinct samples replayed per pass.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the backing dataset is empty (never true for constructed
    /// datasets).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimensionality of every yielded sample.
    pub fn dim(&self) -> usize {
        self.features[0].len()
    }

    /// Number of classes in the label space.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of completed passes over the backing dataset.
    pub fn passes(&self) -> u64 {
        self.pass
    }

    /// Pulls the next `n` samples into parallel feature/label vectors — the
    /// window shape the trainer consumes.
    pub fn next_window(&mut self, n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut features = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            // The stream is infinite, so this never returns `None`.
            if let Some((x, y)) = self.next() {
                features.push(x);
                labels.push(y);
            }
        }
        (features, labels)
    }

    fn reshuffle(&mut self) {
        let pass_seed = self
            .seed
            .wrapping_add(self.pass.wrapping_mul(PASS_SEED_STRIDE));
        let mut rng = StdRng::seed_from_u64(pass_seed);
        self.order.shuffle(&mut rng);
        self.cursor = 0;
    }
}

impl Iterator for ReplayStream {
    type Item = (Vec<f64>, usize);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            self.pass += 1;
            self.reshuffle();
        }
        let i = self.order[self.cursor];
        self.cursor += 1;
        Some((self.features[i].clone(), self.labels[i]))
    }
}

/// Average-pools a square image down to a `pool × pool` grid.
fn pool_image(image: &[f64], pool: usize) -> Vec<f64> {
    let side = mnist::IMAGE_SIDE;
    assert!(
        pool >= 1 && side.is_multiple_of(pool),
        "pool must divide the {side}-pixel image side"
    );
    let block = side / pool;
    let norm = (block * block) as f64;
    let mut out = Vec::with_capacity(pool * pool);
    for br in 0..pool {
        for bc in 0..pool {
            let mut sum = 0.0;
            for r in 0..block {
                for c in 0..block {
                    sum += image[(br * block + r) * side + (bc * block + c)];
                }
            }
            out.push(sum / norm);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<_> = ReplayStream::iris(42).take(400).collect();
        let b: Vec<_> = ReplayStream::iris(42).take(400).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = ReplayStream::iris(1).take(50).map(|(_, y)| y).collect();
        let b: Vec<_> = ReplayStream::iris(2).take(50).map(|(_, y)| y).collect();
        assert_ne!(a, b, "different seeds should reorder the replay");
    }

    #[test]
    fn each_pass_is_a_permutation() {
        let mut stream = ReplayStream::iris(3);
        let n = stream.len();
        for pass in 0..3 {
            let (features, _) = stream.next_window(n);
            // Every pass must contain each sample exactly once: compare the
            // multiset of first-feature values against the backing data.
            let mut got: Vec<f64> = features.iter().map(|x| x[0] + 10.0 * x[1]).collect();
            let mut want: Vec<f64> = stream.features.iter().map(|x| x[0] + 10.0 * x[1]).collect();
            got.sort_by(|a, b| a.partial_cmp(b).unwrap());
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(got, want, "pass {pass} is not a permutation");
            // The pass counter bumps lazily when the *next* pass starts.
            assert_eq!(stream.passes(), pass);
        }
    }

    #[test]
    fn passes_reorder_relative_to_each_other() {
        let mut stream = ReplayStream::iris(4);
        let n = stream.len();
        let (_, first) = stream.next_window(n);
        let (_, second) = stream.next_window(n);
        assert_ne!(first, second, "per-pass reshuffle should change the order");
    }

    #[test]
    fn iris_stream_is_normalized() {
        let mut stream = ReplayStream::iris(5);
        assert_eq!(stream.dim(), 4);
        assert_eq!(stream.num_classes(), 3);
        for _ in 0..200 {
            let (x, y) = stream.next().unwrap();
            assert!(y < 3);
            assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn mnist_pair_pools_to_requested_grid() {
        let mut stream = ReplayStream::mnist_pair(3, 6, 8, 4, 9);
        assert_eq!(stream.dim(), 16);
        assert_eq!(stream.num_classes(), 2);
        assert_eq!(stream.len(), 16);
        let (x, y) = stream.next().unwrap();
        assert!(y < 2);
        assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn pool_image_averages_blocks() {
        let side = mnist::IMAGE_SIDE;
        let mut image = vec![0.0; side * side];
        // Light up the top-left 14×14 quadrant.
        for r in 0..side / 2 {
            for c in 0..side / 2 {
                image[r * side + c] = 1.0;
            }
        }
        let pooled = pool_image(&image, 2);
        assert_eq!(pooled, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "pool must divide")]
    fn bad_pool_panics() {
        let _ = pool_image(&vec![0.0; 784], 5);
    }
}
