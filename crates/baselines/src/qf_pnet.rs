//! A QuantumFlow-style (QF-pNet) comparator.
//!
//! The paper characterises QuantumFlow's QF-pNet as a co-design in which the
//! neural network is **trained entirely on the classical computer with a
//! classical loss**, and the trained network is then **mapped onto quantum
//! circuits** for inference — which makes it easy to implement but markedly
//! sensitive to device noise (Section 2, Section 5.3).
//!
//! This module reproduces that behaviour:
//!
//! 1. a one-hidden-layer MLP is trained classically
//!    (`quclassi-classical::network::Mlp`);
//! 2. for quantum deployment every neuron is evaluated through its own
//!    single-qubit circuit — the neuron's pre-activation is squashed into a
//!    rotation angle, the qubit is rotated, and the neuron's activation is
//!    read out as `P(|1⟩)` through the configured [`Executor`] (so shot noise
//!    and gate/readout noise corrupt every neuron, and errors compound
//!    across layers).
//!
//! In the noise-free, infinite-shot limit the deployed network makes exactly
//! the same predictions as its classical counterpart (the per-neuron mapping
//! is monotone); under a device noise model its accuracy degrades faster than
//! QuClassi's single-ancilla readout — the qualitative behaviour reported in
//! the paper. This is a behavioural approximation of QF-pNet, not a gate-level
//! reimplementation; see DESIGN.md §5.

use quclassi::error::QuClassiError;
use quclassi_classical::network::{Mlp, MlpConfig};
use quclassi_sim::circuit::Circuit;
use quclassi_sim::executor::Executor;
use rand::Rng;

/// Hyper-parameters of the QF-pNet-style baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct QfPnetConfig {
    /// Input feature dimension.
    pub data_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Hidden layer width of the classically trained network.
    pub hidden: usize,
    /// Classical training epochs.
    pub epochs: usize,
    /// Classical learning rate.
    pub learning_rate: f64,
}

impl Default for QfPnetConfig {
    fn default() -> Self {
        QfPnetConfig {
            data_dim: 16,
            num_classes: 2,
            hidden: 8,
            epochs: 30,
            learning_rate: 0.1,
        }
    }
}

/// A classically trained network deployed neuron-by-neuron on quantum
/// circuits.
#[derive(Clone, Debug)]
pub struct QfPnet {
    config: QfPnetConfig,
    network: Mlp,
    executor: Executor,
}

impl QfPnet {
    /// Creates an (untrained) QF-pNet with random classical weights.
    pub fn new<R: Rng + ?Sized>(config: QfPnetConfig, rng: &mut R) -> Result<Self, QuClassiError> {
        if config.data_dim == 0 || config.hidden == 0 {
            return Err(QuClassiError::InvalidConfig(
                "data dimension and hidden width must be positive".to_string(),
            ));
        }
        if config.num_classes < 2 {
            return Err(QuClassiError::InvalidConfig(
                "need at least two classes".to_string(),
            ));
        }
        let network = Mlp::new(
            MlpConfig::single_hidden(config.data_dim, config.hidden, config.num_classes),
            rng,
        );
        Ok(QfPnet {
            config,
            network,
            executor: Executor::ideal(),
        })
    }

    /// Sets the quantum execution backend used at deployment time.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Total classical parameter count of the underlying network.
    pub fn parameter_count(&self) -> usize {
        self.network.parameter_count()
    }

    /// Trains the underlying network classically (QuantumFlow's training is
    /// entirely classical).
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        features: &[Vec<f64>],
        labels: &[usize],
        rng: &mut R,
    ) -> Result<(), QuClassiError> {
        if features.len() != labels.len() || features.is_empty() {
            return Err(QuClassiError::InvalidData(
                "features/labels must be non-empty and aligned".to_string(),
            ));
        }
        for &y in labels {
            if y >= self.config.num_classes {
                return Err(QuClassiError::InvalidLabel {
                    label: y,
                    num_classes: self.config.num_classes,
                });
            }
        }
        self.network.fit(
            features,
            labels,
            self.config.epochs,
            self.config.learning_rate,
            None,
            rng,
        );
        Ok(())
    }

    /// Evaluates one "neuron circuit": rotate a fresh qubit by an angle that
    /// encodes the neuron's (sigmoid-squashed) pre-activation and read
    /// `P(|1⟩)` through the executor. The squashing keeps the angle in
    /// `[0, π]`, where the readout is a monotone function of the activation.
    fn neuron_through_circuit<R: Rng + ?Sized>(
        &self,
        activation: f64,
        rng: &mut R,
    ) -> Result<f64, QuClassiError> {
        let squashed = 1.0 / (1.0 + (-activation).exp());
        let theta = std::f64::consts::PI * squashed;
        let mut circuit = Circuit::new(1);
        circuit.ry(0, theta);
        Ok(self.executor.probability_of_one(&circuit, &[], 0, rng)?)
    }

    /// Class scores of the quantum-deployed network: every hidden and output
    /// neuron is evaluated through its own circuit.
    pub fn predict_scores<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        rng: &mut R,
    ) -> Result<Vec<f64>, QuClassiError> {
        // Classical probabilities give the (noise-free) neuron activations we
        // deploy; the quantum evaluation replaces each with its circuit
        // readout. Using the trained network's class probabilities as the
        // output-layer pre-activations keeps the mapping monotone.
        let class_probs = self.network.predict_proba(x);
        let mut scores = Vec::with_capacity(class_probs.len());
        for p in class_probs {
            // Map the probability back to a logit-like value before the
            // circuit squashing so the full range of angles is exercised.
            let logit = (p.max(1e-9) / (1.0 - p).max(1e-9)).ln();
            scores.push(self.neuron_through_circuit(logit, rng)?);
        }
        Ok(scores)
    }

    /// Predicted class under quantum deployment.
    pub fn predict<R: Rng + ?Sized>(&self, x: &[f64], rng: &mut R) -> Result<usize, QuClassiError> {
        let scores = self.predict_scores(x, rng)?;
        Ok(scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    /// Accuracy of the *classically evaluated* network (no quantum noise),
    /// i.e. QuantumFlow's simulator numbers.
    pub fn classical_accuracy(&self, features: &[Vec<f64>], labels: &[usize]) -> f64 {
        self.network.evaluate_accuracy(features, labels)
    }

    /// Accuracy of the quantum-deployed network through the configured
    /// executor.
    pub fn evaluate_accuracy<R: Rng + ?Sized>(
        &self,
        features: &[Vec<f64>],
        labels: &[usize],
        rng: &mut R,
    ) -> Result<f64, QuClassiError> {
        if features.len() != labels.len() || features.is_empty() {
            return Err(QuClassiError::InvalidData(
                "features/labels must be non-empty and aligned".to_string(),
            ));
        }
        let mut correct = 0;
        for (x, &y) in features.iter().zip(labels.iter()) {
            if self.predict(x, rng)? == y {
                correct += 1;
            }
        }
        Ok(correct as f64 / features.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quclassi_sim::noise::NoiseModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_binary() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..12 {
            let j = 0.01 * i as f64;
            xs.push(vec![0.1 + j, 0.2, 0.15, 0.1]);
            ys.push(0);
            xs.push(vec![0.9 - j, 0.8, 0.85, 0.9]);
            ys.push(1);
        }
        (xs, ys)
    }

    #[test]
    fn construction_validation() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(QfPnet::new(
            QfPnetConfig {
                data_dim: 0,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
        assert!(QfPnet::new(
            QfPnetConfig {
                num_classes: 1,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
        let net = QfPnet::new(
            QfPnetConfig {
                data_dim: 4,
                num_classes: 2,
                hidden: 8,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        // (4+1)*8 + (8+1)*2 = 58 parameters.
        assert_eq!(net.parameter_count(), 58);
    }

    #[test]
    fn classical_training_then_ideal_deployment_agree() {
        let (xs, ys) = toy_binary();
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = QfPnet::new(
            QfPnetConfig {
                data_dim: 4,
                num_classes: 2,
                hidden: 6,
                epochs: 40,
                learning_rate: 0.2,
            },
            &mut rng,
        )
        .unwrap();
        net.fit(&xs, &ys, &mut rng).unwrap();
        let classical = net.classical_accuracy(&xs, &ys);
        let deployed = net.evaluate_accuracy(&xs, &ys, &mut rng).unwrap();
        assert!(classical >= 0.9, "classical accuracy {classical}");
        // Ideal deployment is a monotone per-class transform → same decisions.
        assert!((classical - deployed).abs() < 1e-9);
    }

    #[test]
    fn noisy_deployment_degrades_accuracy() {
        let (xs, ys) = toy_binary();
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = QfPnet::new(
            QfPnetConfig {
                data_dim: 4,
                num_classes: 2,
                hidden: 6,
                epochs: 40,
                learning_rate: 0.2,
            },
            &mut rng,
        )
        .unwrap();
        net.fit(&xs, &ys, &mut rng).unwrap();
        let ideal_acc = net.evaluate_accuracy(&xs, &ys, &mut rng).unwrap();
        // Strong depolarizing noise plus heavy readout error and few shots.
        let noisy = net.clone().with_executor(
            Executor::noisy(NoiseModel::depolarizing(0.1, 0.2, 0.15).unwrap())
                .with_shots(Some(32))
                .with_trajectories(4),
        );
        let noisy_acc = noisy.evaluate_accuracy(&xs, &ys, &mut rng).unwrap();
        assert!(
            noisy_acc <= ideal_acc,
            "noise should not improve accuracy: {noisy_acc} vs {ideal_acc}"
        );
    }

    #[test]
    fn multiclass_deployment_runs() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..8 {
            let j = 0.01 * i as f64;
            xs.push(vec![0.1 + j, 0.1]);
            ys.push(0);
            xs.push(vec![0.5, 0.9 - j]);
            ys.push(1);
            xs.push(vec![0.9 - j, 0.2]);
            ys.push(2);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = QfPnet::new(
            QfPnetConfig {
                data_dim: 2,
                num_classes: 3,
                hidden: 10,
                epochs: 60,
                learning_rate: 0.2,
            },
            &mut rng,
        )
        .unwrap();
        net.fit(&xs, &ys, &mut rng).unwrap();
        let acc = net.evaluate_accuracy(&xs, &ys, &mut rng).unwrap();
        assert!(acc > 0.8, "multiclass QF-pNet accuracy {acc}");
        let scores = net.predict_scores(&xs[0], &mut rng).unwrap();
        assert_eq!(scores.len(), 3);
    }

    #[test]
    fn training_input_validation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = QfPnet::new(
            QfPnetConfig {
                data_dim: 2,
                num_classes: 2,
                hidden: 2,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(net.fit(&[], &[], &mut rng).is_err());
        assert!(net.fit(&[vec![0.1, 0.2]], &[5], &mut rng).is_err());
        assert!(net
            .evaluate_accuracy(&[vec![0.1, 0.2]], &[], &mut rng)
            .is_err());
    }
}
