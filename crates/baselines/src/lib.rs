//! # quclassi-baselines
//!
//! The two quantum comparators the paper evaluates QuClassi against:
//!
//! * [`tfq`] — a TensorFlow-Quantum-style variational classifier (angle
//!   encoding, hardware-efficient ansatz, Z-expectation readout, classical
//!   cross-entropy loss, fixed parameter-shift training). Binary only, like
//!   the comparator.
//! * [`qf_pnet`] — a QuantumFlow-style classifier: trained classically, then
//!   deployed neuron-by-neuron onto quantum circuits, which makes it
//!   noise-sensitive at inference time.
//!
//! Both are behavioural reimplementations built on the same simulator
//! substrate as QuClassi so that the comparisons in Figs. 9, 10 and 12 are
//! apples-to-apples; DESIGN.md §5 documents the approximations.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod qf_pnet;
pub mod tfq;

/// Re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::qf_pnet::{QfPnet, QfPnetConfig};
    pub use crate::tfq::{TfqClassifier, TfqConfig};
}
