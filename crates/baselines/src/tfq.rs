//! A TensorFlow-Quantum-style variational classifier (the "TFQ" comparator
//! of Figs. 9 and 12).
//!
//! The paper compares QuClassi against the binary MNIST classifier from the
//! TensorFlow-Quantum tutorial: classical data is angle-encoded onto qubits,
//! a hardware-efficient variational ansatz (per-qubit rotations plus a CNOT
//! entangling ladder) is applied, and the class score is the Pauli-Z
//! expectation of a readout qubit fed through a sigmoid. Training minimises
//! binary cross-entropy with the standard (fixed-shift) parameter-shift rule
//! — i.e. a *classical* loss on an expectation value, in contrast to
//! QuClassi's state-fidelity loss. Binary classification only, exactly like
//! the comparator.

use quclassi::encoding::{DataEncoder, EncodingStrategy};
use quclassi::error::QuClassiError;
use quclassi::gradient::parameter_shift_gradient;
use quclassi::loss::{binary_cross_entropy, binary_cross_entropy_grad, clamp_probability};
use quclassi_sim::circuit::Circuit;
use quclassi_sim::executor::Executor;
use quclassi_sim::gate::Gate;
use rand::Rng;
use std::f64::consts::FRAC_PI_2;

/// Hyper-parameters of the TFQ-style classifier.
#[derive(Clone, Debug, PartialEq)]
pub struct TfqConfig {
    /// Input feature dimension (features must be normalised to [0, 1]).
    pub data_dim: usize,
    /// Number of variational layers (rotation + entangling ladder).
    pub num_layers: usize,
    /// Learning rate of the SGD updates.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
}

impl Default for TfqConfig {
    fn default() -> Self {
        TfqConfig {
            data_dim: 16,
            num_layers: 2,
            learning_rate: 0.1,
            epochs: 10,
        }
    }
}

/// A binary variational quantum classifier in the TensorFlow-Quantum style.
#[derive(Clone, Debug)]
pub struct TfqClassifier {
    config: TfqConfig,
    encoder: DataEncoder,
    params: Vec<f64>,
    executor: Executor,
}

impl TfqClassifier {
    /// Creates a classifier with randomly initialised parameters.
    pub fn new<R: Rng + ?Sized>(config: TfqConfig, rng: &mut R) -> Result<Self, QuClassiError> {
        if config.data_dim == 0 {
            return Err(QuClassiError::InvalidConfig(
                "data dimension must be at least 1".to_string(),
            ));
        }
        if config.num_layers == 0 {
            return Err(QuClassiError::InvalidConfig(
                "need at least one variational layer".to_string(),
            ));
        }
        let encoder = DataEncoder::new(EncodingStrategy::DualAngle, config.data_dim)?;
        let num_qubits = encoder.num_qubits();
        // Each layer: RY + RZ per qubit.
        let num_params = config.num_layers * 2 * num_qubits;
        let params = (0..num_params)
            .map(|_| rng.gen::<f64>() * std::f64::consts::PI)
            .collect();
        Ok(TfqClassifier {
            config,
            encoder,
            params,
            executor: Executor::ideal(),
        })
    }

    /// Replaces the execution backend (e.g. a noisy or shot-limited one).
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Number of qubits of the circuit.
    pub fn num_qubits(&self) -> usize {
        self.encoder.num_qubits()
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.params.len()
    }

    /// The readout qubit whose ⟨Z⟩ is the class score.
    fn readout_qubit(&self) -> usize {
        self.num_qubits() - 1
    }

    /// Builds the full circuit (encoding prefix + parametric ansatz) for one
    /// data point.
    fn build_circuit(&self, x: &[f64]) -> Result<Circuit, QuClassiError> {
        let n = self.num_qubits();
        let mut circuit = Circuit::new(n);
        for gate in self.encoder.encoding_gates(x, 0)? {
            circuit.push(gate);
        }
        let mut p = 0;
        for _ in 0..self.config.num_layers {
            for q in 0..n {
                circuit.ry_param(q, p);
                circuit.rz_param(q, p + 1);
                p += 2;
            }
            // Entangling ladder.
            for q in 0..n.saturating_sub(1) {
                circuit.push(Gate::Cnot {
                    control: q,
                    target: q + 1,
                });
            }
        }
        Ok(circuit)
    }

    /// Probability of class 1 for one data point: `σ(⟨Z⟩_readout)` mapped
    /// through a logistic squashing of the expectation.
    pub fn predict_proba<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        rng: &mut R,
    ) -> Result<f64, QuClassiError> {
        self.predict_proba_with_params(x, &self.params, rng)
    }

    fn predict_proba_with_params<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        params: &[f64],
        rng: &mut R,
    ) -> Result<f64, QuClassiError> {
        let circuit = self.build_circuit(x)?;
        let z = self
            .executor
            .expectation_z(&circuit, params, self.readout_qubit(), rng)?;
        // Map ⟨Z⟩ ∈ [-1, 1] through a sigmoid with gain 2 (the TFQ tutorial
        // trains a hinge on the raw expectation; a sigmoid keeps the same
        // decision boundary while exposing a probability).
        Ok(clamp_probability(1.0 / (1.0 + (-2.0 * z).exp())))
    }

    /// Predicted label (0 or 1).
    pub fn predict<R: Rng + ?Sized>(&self, x: &[f64], rng: &mut R) -> Result<usize, QuClassiError> {
        Ok(usize::from(self.predict_proba(x, rng)? >= 0.5))
    }

    /// Accuracy over a labelled binary set.
    pub fn evaluate_accuracy<R: Rng + ?Sized>(
        &self,
        features: &[Vec<f64>],
        labels: &[usize],
        rng: &mut R,
    ) -> Result<f64, QuClassiError> {
        if features.len() != labels.len() || features.is_empty() {
            return Err(QuClassiError::InvalidData(
                "features/labels must be non-empty and aligned".to_string(),
            ));
        }
        let mut correct = 0;
        for (x, &y) in features.iter().zip(labels.iter()) {
            if self.predict(x, rng)? == y {
                correct += 1;
            }
        }
        Ok(correct as f64 / features.len() as f64)
    }

    /// Trains the classifier with per-sample SGD; returns the mean loss per
    /// epoch.
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        features: &[Vec<f64>],
        labels: &[usize],
        rng: &mut R,
    ) -> Result<Vec<f64>, QuClassiError> {
        if features.len() != labels.len() || features.is_empty() {
            return Err(QuClassiError::InvalidData(
                "features/labels must be non-empty and aligned".to_string(),
            ));
        }
        for &y in labels {
            if y > 1 {
                return Err(QuClassiError::InvalidLabel {
                    label: y,
                    num_classes: 2,
                });
            }
        }
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            let mut total = 0.0;
            for (x, &y) in features.iter().zip(labels.iter()) {
                let target = y as f64;
                let p = self.predict_proba(x, rng)?;
                total += binary_cross_entropy(p, target);
                let dloss_dp = binary_cross_entropy_grad(p, target);

                let mut eval_error: Option<QuClassiError> = None;
                let grad = {
                    let mut call = |params: &[f64]| -> f64 {
                        match self.predict_proba_with_params(x, params, rng) {
                            Ok(v) => v,
                            Err(e) => {
                                eval_error = Some(e);
                                0.5
                            }
                        }
                    };
                    parameter_shift_gradient(&mut call, &self.params.clone(), FRAC_PI_2)
                };
                if let Some(e) = eval_error {
                    return Err(e);
                }
                for (p, g) in self.params.iter_mut().zip(grad.iter()) {
                    *p -= self.config.learning_rate * dloss_dp * g;
                }
            }
            epoch_losses.push(total / features.len() as f64);
        }
        Ok(epoch_losses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_binary() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..8 {
            let j = 0.01 * i as f64;
            xs.push(vec![0.1 + j, 0.15, 0.1, 0.2]);
            ys.push(0);
            xs.push(vec![0.9 - j, 0.85, 0.9, 0.8]);
            ys.push(1);
        }
        (xs, ys)
    }

    #[test]
    fn construction_and_parameter_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let clf = TfqClassifier::new(
            TfqConfig {
                data_dim: 4,
                num_layers: 2,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(clf.num_qubits(), 2);
        assert_eq!(clf.parameter_count(), 8);
        assert!(TfqClassifier::new(
            TfqConfig {
                data_dim: 0,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
        assert!(TfqClassifier::new(
            TfqConfig {
                num_layers: 0,
                data_dim: 4,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn probabilities_are_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let clf = TfqClassifier::new(
            TfqConfig {
                data_dim: 4,
                num_layers: 1,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let p = clf.predict_proba(&[0.2, 0.4, 0.6, 0.8], &mut rng).unwrap();
        assert!((0.0..=1.0).contains(&p));
        let label = clf.predict(&[0.2, 0.4, 0.6, 0.8], &mut rng).unwrap();
        assert!(label <= 1);
    }

    #[test]
    fn training_improves_toy_problem() {
        let (xs, ys) = toy_binary();
        let mut rng = StdRng::seed_from_u64(5);
        let mut clf = TfqClassifier::new(
            TfqConfig {
                data_dim: 4,
                num_layers: 2,
                learning_rate: 0.3,
                epochs: 12,
            },
            &mut rng,
        )
        .unwrap();
        let losses = clf.fit(&xs, &ys, &mut rng).unwrap();
        assert_eq!(losses.len(), 12);
        assert!(losses.last().unwrap() < losses.first().unwrap());
        let acc = clf.evaluate_accuracy(&xs, &ys, &mut rng).unwrap();
        assert!(acc >= 0.75, "TFQ-style baseline accuracy {acc}");
    }

    #[test]
    fn rejects_invalid_training_data() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut clf = TfqClassifier::new(
            TfqConfig {
                data_dim: 2,
                num_layers: 1,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(clf.fit(&[], &[], &mut rng).is_err());
        assert!(clf.fit(&[vec![0.1, 0.2]], &[3], &mut rng).is_err());
        assert!(clf
            .evaluate_accuracy(&[vec![0.1, 0.2]], &[], &mut rng)
            .is_err());
    }

    #[test]
    fn noisy_executor_changes_predictions_gracefully() {
        use quclassi_sim::noise::NoiseModel;
        let mut rng = StdRng::seed_from_u64(3);
        let clf = TfqClassifier::new(
            TfqConfig {
                data_dim: 4,
                num_layers: 1,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let noisy = clf.clone().with_executor(Executor::noisy(
            NoiseModel::depolarizing(0.01, 0.05, 0.02).unwrap(),
        ));
        let p = noisy
            .predict_proba(&[0.3, 0.3, 0.3, 0.3], &mut rng)
            .unwrap();
        assert!((0.0..=1.0).contains(&p));
    }
}
