//! The SWAP test and fidelity estimation (paper Sections 3.3 and 4.4).
//!
//! QuClassi scores a data point against a class by the fidelity
//! `F = |⟨φ_x|ω_c⟩|²` between the encoded data state and the class's learned
//! state. Two estimation paths are provided:
//!
//! * **SWAP test** (paper-faithful): build the full `2·m + 1`-qubit circuit
//!   of Fig. 7 — ancilla + learned register + data register — apply a
//!   Hadamard, per-pair CSWAPs, another Hadamard, and measure the ancilla.
//!   `P(ancilla = 0) = ½ + ½·F`, so `F = 2·P(0) − 1`. This path goes through
//!   the [`Executor`], so it supports shots and device noise.
//! * **Analytic**: prepare the two `m`-qubit registers separately and take
//!   the exact inner product. Mathematically identical in the noiseless,
//!   infinite-shot limit, and much cheaper — this is what training uses by
//!   default.

use crate::encoding::DataEncoder;
use crate::error::QuClassiError;
use crate::layers::LayerStack;
use quclassi_sim::batch::BatchExecutor;
use quclassi_sim::circuit::Circuit;
use quclassi_sim::executor::Executor;
use quclassi_sim::fusion::FusedCircuit;
use rand::Rng;

/// Qubit layout of the SWAP-test circuit (matches the paper's Fig. 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwapTestLayout {
    /// The ancilla / control qubit that is measured.
    pub ancilla: usize,
    /// First qubit of the learned-state register.
    pub learned_offset: usize,
    /// First qubit of the data register.
    pub data_offset: usize,
    /// Width of each register (learned and data are the same width).
    pub register_width: usize,
    /// Total number of qubits in the circuit.
    pub total_qubits: usize,
}

/// Computes the layout for a given register width: ancilla on qubit 0,
/// learned state on qubits `1..=m`, data on qubits `m+1..=2m`.
pub fn swap_test_layout(register_width: usize) -> SwapTestLayout {
    SwapTestLayout {
        ancilla: 0,
        learned_offset: 1,
        data_offset: 1 + register_width,
        register_width,
        total_qubits: 2 * register_width + 1,
    }
}

/// Converts the ancilla's probability of measuring |0⟩ into a fidelity,
/// clamped to the physical range [0, 1].
pub fn fidelity_from_p0(p0: f64) -> f64 {
    (2.0 * p0 - 1.0).clamp(0.0, 1.0)
}

/// Builds the full SWAP-test circuit for one data point.
///
/// The learned-state register is parametric (its angles are the trainable
/// parameters, indices `0..stack.parameter_count()`); the data register is
/// fixed to the encoding of `x`.
pub fn build_swap_test_circuit(
    stack: &LayerStack,
    encoder: &DataEncoder,
    x: &[f64],
) -> Result<(Circuit, SwapTestLayout), QuClassiError> {
    if stack.num_qubits() != encoder.num_qubits() {
        return Err(QuClassiError::InvalidConfig(format!(
            "learned-state register has {} qubits but the encoder needs {}",
            stack.num_qubits(),
            encoder.num_qubits()
        )));
    }
    let layout = swap_test_layout(stack.num_qubits());
    let mut circuit = Circuit::new(layout.total_qubits);
    // Ancilla into superposition.
    circuit.h(layout.ancilla);
    // Learned state (parametric).
    stack.append_to(&mut circuit, layout.learned_offset, 0);
    // Data state (fixed).
    for gate in encoder.encoding_gates(x, layout.data_offset)? {
        circuit.push(gate);
    }
    // Pairwise controlled SWAPs.
    for i in 0..layout.register_width {
        circuit.cswap(
            layout.ancilla,
            layout.learned_offset + i,
            layout.data_offset + i,
        );
    }
    // Interfere and (conceptually) measure the ancilla.
    circuit.h(layout.ancilla);
    Ok((circuit, layout))
}

/// Builds the *serving-time* SWAP-test circuit for one trained class.
///
/// The gate sequence is identical to [`build_swap_test_circuit`], but the
/// roles of the two registers are swapped around the parameter axis:
///
/// * the learned register's trained angles (`class_params`) are baked in as
///   **fixed** gates — together with the leading ancilla Hadamard they are
///   parameter-free, so [`quclassi_sim::fusion::FusedCircuit::compile`]
///   hoists the whole class-state preparation into its precomputed static
///   prelude;
/// * the data register is **parametric**: symbolic parameters
///   `0 .. encoder.dim()` stand for the sample's encoding angles (in
///   [`DataEncoder::encoding_angles`] order), so one compiled circuit serves
///   every sample without re-lowering.
///
/// This is the circuit shape `quclassi-infer` compiles once per class.
pub fn build_class_swap_test_circuit(
    stack: &LayerStack,
    class_params: &[f64],
    encoder: &DataEncoder,
) -> Result<(Circuit, SwapTestLayout), QuClassiError> {
    if stack.num_qubits() != encoder.num_qubits() {
        return Err(QuClassiError::InvalidConfig(format!(
            "learned-state register has {} qubits but the encoder needs {}",
            stack.num_qubits(),
            encoder.num_qubits()
        )));
    }
    let layout = swap_test_layout(stack.num_qubits());
    let mut circuit = Circuit::new(layout.total_qubits);
    circuit.h(layout.ancilla);
    // Learned state: trained angles bound in (parameter-free, hoistable).
    stack.append_bound_to(&mut circuit, layout.learned_offset, class_params)?;
    // Data state: symbolic encoding angles 0..dim.
    encoder.append_parametric_to(&mut circuit, layout.data_offset, 0);
    for i in 0..layout.register_width {
        circuit.cswap(
            layout.ancilla,
            layout.learned_offset + i,
            layout.data_offset + i,
        );
    }
    circuit.h(layout.ancilla);
    Ok((circuit, layout))
}

/// How fidelities are computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FidelityMethod {
    /// Exact inner product between separately prepared registers.
    Analytic,
    /// Full SWAP-test circuit through an [`Executor`] (supports noise/shots).
    SwapTest,
}

/// A configured fidelity estimator shared by training and inference.
///
/// ```
/// use quclassi::encoding::{DataEncoder, EncodingStrategy};
/// use quclassi::layers::LayerStack;
/// use quclassi::swap_test::FidelityEstimator;
/// use quclassi_sim::executor::Executor;
/// use rand::SeedableRng;
///
/// let encoder = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
/// let stack = LayerStack::qc_s(encoder.num_qubits()).unwrap();
/// let params = vec![0.4, 1.1, 0.9, 0.2];
/// let x = [0.3, 0.8, 0.2, 0.6];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
///
/// // The analytic path and the full SWAP-test circuit agree exactly.
/// let analytic = FidelityEstimator::analytic()
///     .estimate(&stack, &params, &encoder, &x, &mut rng)
///     .unwrap();
/// let swap = FidelityEstimator::swap_test(Executor::ideal())
///     .estimate(&stack, &params, &encoder, &x, &mut rng)
///     .unwrap();
/// assert!((analytic - swap).abs() < 1e-9);
/// assert!((0.0..=1.0).contains(&analytic));
/// ```
#[derive(Clone, Debug)]
pub struct FidelityEstimator {
    method: FidelityMethod,
    executor: Executor,
}

impl Default for FidelityEstimator {
    fn default() -> Self {
        FidelityEstimator::analytic()
    }
}

impl FidelityEstimator {
    /// Exact analytic estimator (no noise, no shots).
    pub fn analytic() -> Self {
        FidelityEstimator {
            method: FidelityMethod::Analytic,
            executor: Executor::ideal(),
        }
    }

    /// SWAP-test estimator through the given executor (which may be noisy
    /// and/or shot-limited).
    pub fn swap_test(executor: Executor) -> Self {
        FidelityEstimator {
            method: FidelityMethod::SwapTest,
            executor,
        }
    }

    /// Sets the intra-circuit thread budget on the underlying executor:
    /// single-estimate SWAP-test evaluations (and compiled serving built
    /// on this estimator) split large statevector sweeps over the budget's
    /// workers. A pure throughput knob — results are bit-identical for any
    /// value (see [`quclassi_sim::intra::IntraThreads`]).
    pub fn with_intra(mut self, intra: quclassi_sim::intra::IntraThreads) -> Self {
        self.executor = self.executor.with_intra(intra);
        self
    }

    /// The estimation method.
    pub fn method(&self) -> FidelityMethod {
        self.method
    }

    /// The executor used for SWAP-test estimation.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Whether estimates consume randomness (SWAP test through a noisy or
    /// shot-limited executor). Deterministic estimators never touch the
    /// caller's RNG, which is what lets the batched training path stay
    /// bit-identical to the sequential one.
    pub fn is_stochastic(&self) -> bool {
        self.method == FidelityMethod::SwapTest && !self.executor.is_exact()
    }

    fn check_param_len(&self, stack: &LayerStack, params: &[f64]) -> Result<(), QuClassiError> {
        if params.len() != stack.parameter_count() {
            return Err(QuClassiError::InvalidConfig(format!(
                "expected {} parameters, got {}",
                stack.parameter_count(),
                params.len()
            )));
        }
        Ok(())
    }

    /// Estimates `|⟨φ_x|ω(params)⟩|²` for *many* parameter vectors against
    /// one data point, fanning the evaluations out over `batch`.
    ///
    /// This is the training hot path: one parameter-shift step needs
    /// `2·P + 1` fidelity evaluations of the same circuit shape, so the
    /// circuit is built (and, for the SWAP-test method, fused) **once** and
    /// reused by every job instead of being rebuilt per evaluation as
    /// [`FidelityEstimator::estimate`] must.
    ///
    /// Determinism: per-job RNG streams are derived from `base_seed` and the
    /// job index, so results are bit-identical for any thread count. For
    /// deterministic estimators (analytic, or exact SWAP test) the results
    /// are additionally bit-identical to sequential [`FidelityEstimator::estimate`]
    /// calls on the same inputs, and `base_seed` is ignored.
    pub fn estimate_many(
        &self,
        stack: &LayerStack,
        param_sets: &[Vec<f64>],
        encoder: &DataEncoder,
        x: &[f64],
        batch: &BatchExecutor,
        base_seed: u64,
    ) -> Result<Vec<f64>, QuClassiError> {
        for params in param_sets {
            self.check_param_len(stack, params)?;
        }
        match self.method {
            FidelityMethod::Analytic => {
                let circuit = stack.build_circuit();
                let data = encoder.encode_state(x)?;
                if circuit.num_qubits() != data.num_qubits() {
                    return Err(QuClassiError::InvalidConfig(format!(
                        "learned-state register has {} qubits but the encoder needs {}",
                        circuit.num_qubits(),
                        data.num_qubits()
                    )));
                }
                let jobs: Vec<&[f64]> = param_sets.iter().map(Vec::as_slice).collect();
                let intra = batch.intra();
                batch
                    .run_seeded(base_seed, jobs, |_, params, _| {
                        // execute_with/fidelity_with are bit-identical to
                        // the sequential estimate path for any intra thread
                        // count (unfused per-gate application — fusing here
                        // would re-associate floats and break the exact
                        // sequential-equality guarantee this method makes).
                        circuit
                            .execute_with(params, intra)
                            .and_then(|learned| learned.fidelity_with(&data, intra))
                    })
                    .into_iter()
                    .map(|r| r.map_err(QuClassiError::from))
                    .collect()
            }
            FidelityMethod::SwapTest => {
                let (circuit, layout) = build_swap_test_circuit(stack, encoder, x)?;
                let fused = FusedCircuit::compile(&circuit);
                let p1s = batch.probabilities_of_one(
                    &self.executor,
                    &fused,
                    param_sets,
                    layout.ancilla,
                    base_seed,
                )?;
                Ok(p1s
                    .into_iter()
                    .map(|p1| fidelity_from_p0(1.0 - p1))
                    .collect())
            }
        }
    }

    /// Estimates `|⟨φ_x|ω(params)⟩|²`.
    pub fn estimate<R: Rng + ?Sized>(
        &self,
        stack: &LayerStack,
        params: &[f64],
        encoder: &DataEncoder,
        x: &[f64],
        rng: &mut R,
    ) -> Result<f64, QuClassiError> {
        self.check_param_len(stack, params)?;
        match self.method {
            FidelityMethod::Analytic => {
                let learned = stack.build_circuit().execute(params)?;
                let data = encoder.encode_state(x)?;
                if learned.num_qubits() != data.num_qubits() {
                    return Err(QuClassiError::InvalidConfig(format!(
                        "learned-state register has {} qubits but the encoder needs {}",
                        learned.num_qubits(),
                        data.num_qubits()
                    )));
                }
                Ok(learned.fidelity(&data)?)
            }
            FidelityMethod::SwapTest => {
                let (circuit, layout) = build_swap_test_circuit(stack, encoder, x)?;
                let p1 = self
                    .executor
                    .probability_of_one(&circuit, params, layout.ancilla, rng)?;
                Ok(fidelity_from_p0(1.0 - p1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncodingStrategy;
    use quclassi_sim::noise::NoiseModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(dim: usize) -> (LayerStack, DataEncoder) {
        let encoder = DataEncoder::new(EncodingStrategy::DualAngle, dim).unwrap();
        let stack = LayerStack::qc_s(encoder.num_qubits()).unwrap();
        (stack, encoder)
    }

    #[test]
    fn layout_matches_paper_figure_7() {
        // Iris: 4 features → 2-qubit registers → 5-qubit circuit.
        let layout = swap_test_layout(2);
        assert_eq!(layout.total_qubits, 5);
        assert_eq!(layout.ancilla, 0);
        assert_eq!(layout.learned_offset, 1);
        assert_eq!(layout.data_offset, 3);
    }

    #[test]
    fn mnist_layout_uses_17_qubits() {
        // 16 PCA features → 8-qubit registers → 17 qubits (Section 5.3.1).
        assert_eq!(swap_test_layout(8).total_qubits, 17);
    }

    #[test]
    fn fidelity_from_p0_clamps() {
        assert!((fidelity_from_p0(1.0) - 1.0).abs() < 1e-12);
        assert!((fidelity_from_p0(0.5)).abs() < 1e-12);
        assert_eq!(fidelity_from_p0(0.4), 0.0);
        assert_eq!(fidelity_from_p0(1.2), 1.0);
    }

    #[test]
    fn swap_test_matches_analytic_fidelity_exactly() {
        let (stack, encoder) = setup(4);
        let mut rng = StdRng::seed_from_u64(1);
        let x = vec![0.3, 0.8, 0.2, 0.6];
        let params: Vec<f64> = (0..stack.parameter_count())
            .map(|i| 0.4 + 0.3 * i as f64)
            .collect();
        let analytic = FidelityEstimator::analytic()
            .estimate(&stack, &params, &encoder, &x, &mut rng)
            .unwrap();
        let swap = FidelityEstimator::swap_test(Executor::ideal())
            .estimate(&stack, &params, &encoder, &x, &mut rng)
            .unwrap();
        assert!(
            (analytic - swap).abs() < 1e-9,
            "analytic {analytic} vs swap {swap}"
        );
    }

    #[test]
    fn identical_states_give_unit_fidelity_through_swap_test() {
        // If the learned state is exactly the encoding of x, fidelity = 1.
        let encoder = DataEncoder::new(EncodingStrategy::SingleAngle, 2).unwrap();
        let stack = LayerStack::qc_s(2).unwrap();
        let x = vec![0.37, 0.81];
        // QC-S applies RY(θ0) RZ(θ1) per qubit; choose θ's to reproduce the
        // encoding (RZ angle of 0 ≠ encoding's RZ, but SingleAngle encoding has
        // no RZ, so set RZ params to 0).
        let params = vec![
            crate::encoding::feature_to_angle(x[0]),
            0.0,
            crate::encoding::feature_to_angle(x[1]),
            0.0,
        ];
        let mut rng = StdRng::seed_from_u64(2);
        for est in [
            FidelityEstimator::analytic(),
            FidelityEstimator::swap_test(Executor::ideal()),
        ] {
            let f = est
                .estimate(&stack, &params, &encoder, &x, &mut rng)
                .unwrap();
            assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
        }
    }

    #[test]
    fn orthogonal_states_give_zero_fidelity() {
        let encoder = DataEncoder::new(EncodingStrategy::SingleAngle, 1).unwrap();
        let stack = LayerStack::qc_s(1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // Data encodes |1⟩ (x = 1); learned state stays |0⟩ (all params 0).
        let f = FidelityEstimator::analytic()
            .estimate(&stack, &[0.0, 0.0], &encoder, &[1.0], &mut rng)
            .unwrap();
        assert!(f < 1e-12);
        let f = FidelityEstimator::swap_test(Executor::ideal())
            .estimate(&stack, &[0.0, 0.0], &encoder, &[1.0], &mut rng)
            .unwrap();
        assert!(f < 1e-9);
    }

    #[test]
    fn shot_limited_swap_test_is_close_to_exact() {
        let (stack, encoder) = setup(4);
        let mut rng = StdRng::seed_from_u64(4);
        let x = vec![0.5, 0.1, 0.9, 0.4];
        let params: Vec<f64> = vec![0.3, 1.0, 2.0, 0.2];
        let exact = FidelityEstimator::analytic()
            .estimate(&stack, &params, &encoder, &x, &mut rng)
            .unwrap();
        // 8000 shots, the count used on IBM-Q in Section 5.4.
        let sampled = FidelityEstimator::swap_test(Executor::ideal().with_shots(Some(8000)))
            .estimate(&stack, &params, &encoder, &x, &mut rng)
            .unwrap();
        assert!((exact - sampled).abs() < 0.05, "{exact} vs {sampled}");
    }

    #[test]
    fn noisy_swap_test_underestimates_fidelity() {
        // Noise degrades the interference, pulling the measured fidelity
        // towards the orthogonal-state value.
        let (stack, encoder) = setup(4);
        let mut rng = StdRng::seed_from_u64(5);
        let x = vec![0.2, 0.3, 0.4, 0.5];
        // Train-free check: use the exact encoding as the learned state so
        // the ideal fidelity is high.
        let params = vec![
            crate::encoding::feature_to_angle(0.2),
            crate::encoding::feature_to_angle(0.3),
            crate::encoding::feature_to_angle(0.4),
            crate::encoding::feature_to_angle(0.5),
        ];
        let ideal = FidelityEstimator::swap_test(Executor::ideal())
            .estimate(&stack, &params, &encoder, &x, &mut rng)
            .unwrap();
        let noisy_exec = Executor::noisy(NoiseModel::depolarizing(0.002, 0.02, 0.02).unwrap())
            .with_trajectories(40);
        let noisy = FidelityEstimator::swap_test(noisy_exec)
            .estimate(&stack, &params, &encoder, &x, &mut rng)
            .unwrap();
        assert!(ideal > 0.9);
        assert!(noisy < ideal);
    }

    #[test]
    fn mismatched_widths_and_param_counts_error() {
        let encoder = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
        let wrong_stack = LayerStack::qc_s(3).unwrap();
        assert!(build_swap_test_circuit(&wrong_stack, &encoder, &[0.1, 0.2, 0.3, 0.4]).is_err());
        let stack = LayerStack::qc_s(2).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let err = FidelityEstimator::analytic().estimate(
            &stack,
            &[0.0],
            &encoder,
            &[0.1, 0.2, 0.3, 0.4],
            &mut rng,
        );
        assert!(err.is_err());
    }

    #[test]
    fn estimate_many_matches_sequential_estimates_bit_for_bit() {
        // Deterministic estimators: the batched path must reproduce the
        // sequential path exactly, for both methods and any thread count.
        let (stack, encoder) = setup(4);
        let x = vec![0.3, 0.8, 0.2, 0.6];
        let sets: Vec<Vec<f64>> = (0..5)
            .map(|s| {
                (0..stack.parameter_count())
                    .map(|i| 0.1 + 0.2 * s as f64 + 0.05 * i as f64)
                    .collect()
            })
            .collect();
        for est in [
            FidelityEstimator::analytic(),
            FidelityEstimator::swap_test(Executor::ideal()),
        ] {
            assert!(!est.is_stochastic());
            let mut rng = StdRng::seed_from_u64(9);
            let sequential: Vec<u64> = sets
                .iter()
                .map(|p| {
                    est.estimate(&stack, p, &encoder, &x, &mut rng)
                        .unwrap()
                        .to_bits()
                })
                .collect();
            for threads in [1, 2, 8] {
                let batch = BatchExecutor::new(threads, 0);
                let batched: Vec<u64> = est
                    .estimate_many(&stack, &sets, &encoder, &x, &batch, 12345)
                    .unwrap()
                    .into_iter()
                    .map(f64::to_bits)
                    .collect();
                if est.method() == FidelityMethod::Analytic {
                    assert_eq!(sequential, batched, "{threads} threads");
                } else {
                    // The fused SWAP-test path re-associates floating point;
                    // equality holds to fusion tolerance and across threads.
                    for (s, b) in sequential.iter().zip(batched.iter()) {
                        let (s, b) = (f64::from_bits(*s), f64::from_bits(*b));
                        assert!((s - b).abs() < 1e-10, "{s} vs {b}");
                    }
                    let one_thread: Vec<u64> = est
                        .estimate_many(
                            &stack,
                            &sets,
                            &encoder,
                            &x,
                            &BatchExecutor::new(1, 0),
                            12345,
                        )
                        .unwrap()
                        .into_iter()
                        .map(f64::to_bits)
                        .collect();
                    assert_eq!(one_thread, batched, "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn estimate_many_is_bit_identical_under_intra_thread_budgets() {
        // Within-circuit parallelism must not change a single output bit,
        // for either method. Thresholds are forced down so the small test
        // registers genuinely exercise the parallel kernels.
        use quclassi_sim::intra::IntraThreads;
        let (stack, encoder) = setup(4);
        let x = vec![0.3, 0.8, 0.2, 0.6];
        let sets: Vec<Vec<f64>> = (0..4)
            .map(|s| {
                (0..stack.parameter_count())
                    .map(|i| 0.2 + 0.15 * s as f64 + 0.07 * i as f64)
                    .collect()
            })
            .collect();
        for est in [
            FidelityEstimator::analytic(),
            FidelityEstimator::swap_test(Executor::ideal()),
        ] {
            let run = |intra_threads: usize| -> Vec<u64> {
                let batch = BatchExecutor::new(2, 0)
                    .with_intra(IntraThreads::new(intra_threads).with_threshold_qubits(1));
                est.estimate_many(&stack, &sets, &encoder, &x, &batch, 7)
                    .unwrap()
                    .into_iter()
                    .map(f64::to_bits)
                    .collect()
            };
            let sequential = run(1);
            assert_eq!(sequential, run(2), "{:?}", est.method());
            assert_eq!(sequential, run(8), "{:?}", est.method());
            // And the intra-enabled single-estimate path agrees too.
            let with_intra = est
                .clone()
                .with_intra(IntraThreads::new(8).with_threshold_qubits(1));
            let mut rng = StdRng::seed_from_u64(0);
            let direct = est
                .estimate(&stack, &sets[0], &encoder, &x, &mut rng)
                .unwrap();
            let parallel = with_intra
                .estimate(&stack, &sets[0], &encoder, &x, &mut rng)
                .unwrap();
            assert_eq!(direct.to_bits(), parallel.to_bits(), "{:?}", est.method());
        }
    }

    #[test]
    fn stochastic_estimate_many_is_thread_count_invariant() {
        let (stack, encoder) = setup(4);
        let x = vec![0.5, 0.1, 0.9, 0.4];
        let est = FidelityEstimator::swap_test(Executor::ideal().with_shots(Some(512)));
        assert!(est.is_stochastic());
        let sets: Vec<Vec<f64>> = (0..4)
            .map(|s| vec![0.3 + s as f64 * 0.2, 1.0, 2.0, 0.2])
            .collect();
        let run = |threads: usize, seed: u64| -> Vec<u64> {
            est.estimate_many(
                &stack,
                &sets,
                &encoder,
                &x,
                &BatchExecutor::new(threads, 0),
                seed,
            )
            .unwrap()
            .into_iter()
            .map(f64::to_bits)
            .collect()
        };
        assert_eq!(run(1, 7), run(2, 7));
        assert_eq!(run(1, 7), run(8, 7));
        // A different base seed draws different shots.
        assert_ne!(run(1, 7), run(1, 8));
    }

    #[test]
    fn estimate_many_validates_every_parameter_set() {
        let (stack, encoder) = setup(4);
        let good = vec![0.1; stack.parameter_count()];
        let bad = vec![0.1; stack.parameter_count() + 1];
        let err = FidelityEstimator::analytic().estimate_many(
            &stack,
            &[good, bad],
            &encoder,
            &[0.1, 0.2, 0.3, 0.4],
            &BatchExecutor::default(),
            0,
        );
        assert!(err.is_err());
    }

    #[test]
    fn class_swap_test_circuit_matches_training_shape() {
        // Binding a sample's angles into the serving circuit reproduces the
        // training-time circuit (sample baked in, class params symbolic) on
        // the ancilla, for every architecture.
        let encoder = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
        let x = vec![0.25, 0.7, 0.4, 0.9];
        for stack in [LayerStack::qc_s(2).unwrap(), LayerStack::qc_sde(2).unwrap()] {
            let params: Vec<f64> = (0..stack.parameter_count())
                .map(|i| 0.3 + 0.17 * i as f64)
                .collect();
            let (train_circuit, layout) = build_swap_test_circuit(&stack, &encoder, &x).unwrap();
            let (serve_circuit, serve_layout) =
                build_class_swap_test_circuit(&stack, &params, &encoder).unwrap();
            assert_eq!(layout, serve_layout);
            assert_eq!(serve_circuit.num_parameters(), encoder.dim());
            assert_eq!(serve_circuit.gate_count(), train_circuit.gate_count());
            let angles = encoder.encoding_angles(&x).unwrap();
            let a = train_circuit.execute(&params).unwrap();
            let b = serve_circuit.execute(&angles).unwrap();
            // Same gates, different emission order between the registers is
            // impossible by construction — states agree bit-for-bit.
            assert_eq!(a, b, "{}", stack.architecture_name());
        }
    }

    #[test]
    fn class_swap_test_circuit_prelude_covers_class_state() {
        // The whole learned register plus the leading Hadamard must land in
        // the fused static prelude: per-sample work is only the data side.
        use quclassi_sim::fusion::FusedCircuit;
        let encoder = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
        let stack = LayerStack::qc_s(2).unwrap();
        let params = vec![0.4, 1.0, 0.2, 0.8];
        let (circuit, _) = build_class_swap_test_circuit(&stack, &params, &encoder).unwrap();
        let fused = FusedCircuit::compile(&circuit);
        assert!(
            fused.prefix_len() >= 1,
            "expected the class-state preparation to be hoisted"
        );
        assert!(fused.num_static_ops() >= 1);
    }

    #[test]
    fn class_swap_test_circuit_validates_inputs() {
        let encoder = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
        let wrong_stack = LayerStack::qc_s(3).unwrap();
        assert!(build_class_swap_test_circuit(&wrong_stack, &[0.0; 6], &encoder).is_err());
        let stack = LayerStack::qc_s(2).unwrap();
        assert!(build_class_swap_test_circuit(&stack, &[0.0; 3], &encoder).is_err());
    }

    #[test]
    fn swap_test_circuit_structure() {
        let (stack, encoder) = setup(4);
        let (circuit, layout) =
            build_swap_test_circuit(&stack, &encoder, &[0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(circuit.num_qubits(), 5);
        // 2 Hadamards + 4 learned-state rotations + 4 encoding rotations + 2 CSWAPs.
        assert_eq!(circuit.gate_count(), 12);
        assert_eq!(circuit.num_parameters(), stack.parameter_count());
        assert_eq!(layout.register_width, 2);
        let text = circuit.to_text();
        assert!(text.contains("cswap"));
        assert!(text.starts_with("h q[0];"));
    }
}
