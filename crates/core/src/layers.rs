//! The three trainable layer families of QuClassi (paper Section 4.3) and
//! the layer stack that composes them into a learned-state circuit.
//!
//! * [`LayerKind::SingleQubitUnitary`] (QC-S) — an RY followed by an RZ on
//!   every qubit, each with its own parameter (Fig. 2).
//! * [`LayerKind::DualQubitUnitary`] (QC-D) — for every adjacent qubit pair,
//!   an equal RY rotation on both qubits followed by an equal RZ rotation on
//!   both qubits; the pair shares the parameters (Fig. 3).
//! * [`LayerKind::Entanglement`] (QC-E) — for every adjacent qubit pair, a
//!   CRY and a CRZ from the lower-indexed qubit onto the higher one,
//!   providing a learnable amount of entanglement (Fig. 4).
//!
//! A [`LayerStack`] is an ordered list of layers on a fixed register width,
//! giving the architectures the paper calls QC-S, QC-D, QC-E, QC-SD and
//! QC-SDE.

use crate::error::QuClassiError;
use quclassi_sim::circuit::Circuit;
use quclassi_sim::gate::Gate;

/// One of the three QuClassi layer families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerKind {
    /// QC-S: per-qubit RY + RZ rotations.
    SingleQubitUnitary,
    /// QC-D: per-adjacent-pair shared RY + RZ rotations.
    DualQubitUnitary,
    /// QC-E: per-adjacent-pair CRY + CRZ controlled rotations.
    Entanglement,
}

impl LayerKind {
    /// Short code used in the paper's figures (S, D, E).
    pub fn code(&self) -> char {
        match self {
            LayerKind::SingleQubitUnitary => 'S',
            LayerKind::DualQubitUnitary => 'D',
            LayerKind::Entanglement => 'E',
        }
    }

    /// Number of trainable parameters this layer contributes on a register
    /// of `num_qubits` qubits.
    pub fn parameter_count(&self, num_qubits: usize) -> usize {
        match self {
            LayerKind::SingleQubitUnitary => 2 * num_qubits,
            LayerKind::DualQubitUnitary | LayerKind::Entanglement => {
                2 * num_qubits.saturating_sub(1)
            }
        }
    }

    /// Appends this layer's parametric gates to `circuit`, acting on qubits
    /// `qubit_offset .. qubit_offset + num_qubits`, reading parameters
    /// starting at `param_offset`. Returns the number of parameters consumed.
    pub fn append_to(
        &self,
        circuit: &mut Circuit,
        qubit_offset: usize,
        num_qubits: usize,
        param_offset: usize,
    ) -> usize {
        let mut p = param_offset;
        match self {
            LayerKind::SingleQubitUnitary => {
                for q in 0..num_qubits {
                    circuit.ry_param(qubit_offset + q, p);
                    circuit.rz_param(qubit_offset + q, p + 1);
                    p += 2;
                }
            }
            LayerKind::DualQubitUnitary => {
                for q in 0..num_qubits.saturating_sub(1) {
                    let a = qubit_offset + q;
                    let b = qubit_offset + q + 1;
                    // The same parameter drives the rotation on both qubits.
                    circuit.push_parametric(Gate::Ry(a, 0.0), p);
                    circuit.push_parametric(Gate::Ry(b, 0.0), p);
                    circuit.push_parametric(Gate::Rz(a, 0.0), p + 1);
                    circuit.push_parametric(Gate::Rz(b, 0.0), p + 1);
                    p += 2;
                }
            }
            LayerKind::Entanglement => {
                for q in 0..num_qubits.saturating_sub(1) {
                    let control = qubit_offset + q;
                    let target = qubit_offset + q + 1;
                    circuit.cry_param(control, target, p);
                    circuit.crz_param(control, target, p + 1);
                    p += 2;
                }
            }
        }
        p - param_offset
    }
}

impl LayerKind {
    /// Like [`LayerKind::append_to`] but with the trained parameter values
    /// bound in: the layer's gates are emitted as *fixed* (parameter-free)
    /// gates reading their angles from `params` starting at `param_offset`.
    /// Returns the number of parameter values consumed.
    ///
    /// Serving-time compilation uses this to bake a class's trained state
    /// preparation into a circuit as static instructions, which the fusion
    /// engine can then precompute (see `quclassi-infer`).
    ///
    /// # Panics
    /// Panics when `params` holds fewer than `param_offset +
    /// parameter_count(num_qubits)` values. Prefer the validating
    /// [`LayerStack::append_bound_to`], which returns an error instead.
    pub fn append_bound_to(
        &self,
        circuit: &mut Circuit,
        qubit_offset: usize,
        num_qubits: usize,
        params: &[f64],
        param_offset: usize,
    ) -> usize {
        let mut p = param_offset;
        match self {
            LayerKind::SingleQubitUnitary => {
                for q in 0..num_qubits {
                    circuit.ry(qubit_offset + q, params[p]);
                    circuit.rz(qubit_offset + q, params[p + 1]);
                    p += 2;
                }
            }
            LayerKind::DualQubitUnitary => {
                for q in 0..num_qubits.saturating_sub(1) {
                    let a = qubit_offset + q;
                    let b = qubit_offset + q + 1;
                    circuit.ry(a, params[p]);
                    circuit.ry(b, params[p]);
                    circuit.rz(a, params[p + 1]);
                    circuit.rz(b, params[p + 1]);
                    p += 2;
                }
            }
            LayerKind::Entanglement => {
                for q in 0..num_qubits.saturating_sub(1) {
                    let control = qubit_offset + q;
                    let target = qubit_offset + q + 1;
                    circuit.push(Gate::CRy {
                        control,
                        target,
                        theta: params[p],
                    });
                    circuit.push(Gate::CRz {
                        control,
                        target,
                        theta: params[p + 1],
                    });
                    p += 2;
                }
            }
        }
        p - param_offset
    }
}

/// An ordered stack of layers acting on a fixed-width learned-state register.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerStack {
    layers: Vec<LayerKind>,
    num_qubits: usize,
}

impl LayerStack {
    /// Creates a stack of `layers` on `num_qubits` qubits.
    ///
    /// # Errors
    /// Returns an error when the layer list is empty or the register is
    /// zero-width.
    pub fn new(layers: Vec<LayerKind>, num_qubits: usize) -> Result<Self, QuClassiError> {
        if layers.is_empty() {
            return Err(QuClassiError::InvalidConfig(
                "a QuClassi model needs at least one layer".to_string(),
            ));
        }
        if num_qubits == 0 {
            return Err(QuClassiError::InvalidConfig(
                "the learned state needs at least one qubit".to_string(),
            ));
        }
        Ok(LayerStack { layers, num_qubits })
    }

    /// The QC-S architecture: a single [`LayerKind::SingleQubitUnitary`] layer.
    pub fn qc_s(num_qubits: usize) -> Result<Self, QuClassiError> {
        LayerStack::new(vec![LayerKind::SingleQubitUnitary], num_qubits)
    }

    /// The QC-D architecture: a single dual-qubit layer.
    pub fn qc_d(num_qubits: usize) -> Result<Self, QuClassiError> {
        LayerStack::new(vec![LayerKind::DualQubitUnitary], num_qubits)
    }

    /// The QC-E architecture: a single entanglement layer.
    pub fn qc_e(num_qubits: usize) -> Result<Self, QuClassiError> {
        LayerStack::new(vec![LayerKind::Entanglement], num_qubits)
    }

    /// The QC-SD architecture: single-qubit + dual-qubit layers.
    pub fn qc_sd(num_qubits: usize) -> Result<Self, QuClassiError> {
        LayerStack::new(
            vec![LayerKind::SingleQubitUnitary, LayerKind::DualQubitUnitary],
            num_qubits,
        )
    }

    /// The QC-SDE architecture: single + dual + entanglement layers.
    pub fn qc_sde(num_qubits: usize) -> Result<Self, QuClassiError> {
        LayerStack::new(
            vec![
                LayerKind::SingleQubitUnitary,
                LayerKind::DualQubitUnitary,
                LayerKind::Entanglement,
            ],
            num_qubits,
        )
    }

    /// The layers in order.
    pub fn layers(&self) -> &[LayerKind] {
        &self.layers
    }

    /// Width of the learned-state register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Total number of trainable parameters of the stack.
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.parameter_count(self.num_qubits))
            .sum()
    }

    /// Architecture name in the paper's notation ("QC-S", "QC-SDE", …).
    pub fn architecture_name(&self) -> String {
        let mut name = String::from("QC-");
        for l in &self.layers {
            name.push(l.code());
        }
        name
    }

    /// Builds a stand-alone parametric circuit on `num_qubits` qubits that
    /// prepares the learned state from |0…0⟩.
    pub fn build_circuit(&self) -> Circuit {
        let mut c = Circuit::new(self.num_qubits);
        self.append_to(&mut c, 0, 0);
        c
    }

    /// Appends the stack's parametric gates to an existing (wider) circuit
    /// with the learned-state register starting at `qubit_offset` and
    /// parameters starting at `param_offset`. Returns the number of
    /// parameters consumed.
    pub fn append_to(
        &self,
        circuit: &mut Circuit,
        qubit_offset: usize,
        param_offset: usize,
    ) -> usize {
        let mut consumed = 0;
        for layer in &self.layers {
            consumed += layer.append_to(
                circuit,
                qubit_offset,
                self.num_qubits,
                param_offset + consumed,
            );
        }
        consumed
    }

    /// Appends the stack's gates with `params` bound in as fixed angles, in
    /// exactly the gate order of [`LayerStack::append_to`]. Serving-time
    /// compilation uses this to make a trained class state parameter-free
    /// (and therefore fusable into a precomputed static prelude).
    ///
    /// # Errors
    /// Returns an error when `params` does not match
    /// [`LayerStack::parameter_count`].
    pub fn append_bound_to(
        &self,
        circuit: &mut Circuit,
        qubit_offset: usize,
        params: &[f64],
    ) -> Result<(), QuClassiError> {
        if params.len() != self.parameter_count() {
            return Err(QuClassiError::InvalidConfig(format!(
                "expected {} parameters, got {}",
                self.parameter_count(),
                params.len()
            )));
        }
        let mut consumed = 0;
        for layer in &self.layers {
            consumed +=
                layer.append_bound_to(circuit, qubit_offset, self.num_qubits, params, consumed);
        }
        debug_assert_eq!(consumed, self.parameter_count());
        Ok(())
    }

    /// Builds the parameter-free circuit preparing the trained state
    /// `|ω(params)⟩` from |0…0⟩ — [`LayerStack::build_circuit`] with the
    /// parameters already bound.
    pub fn build_bound_circuit(&self, params: &[f64]) -> Result<Circuit, QuClassiError> {
        let mut c = Circuit::new(self.num_qubits);
        self.append_bound_to(&mut c, 0, params)?;
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_match_paper() {
        // Iris: 4 features, dual-angle encoding → 2 learned-state qubits.
        // QC-S has 2·2 = 4 parameters per class; 3 classes → 12 parameters,
        // matching the "12 parameters" network in Section 5.2.
        assert_eq!(LayerStack::qc_s(2).unwrap().parameter_count(), 4);
        // MNIST: 16 features → 8 qubits; QC-S has 16 parameters per class;
        // 2 classes → 32 trainable parameters as stated in Section 5.3.1.
        assert_eq!(LayerStack::qc_s(8).unwrap().parameter_count(), 16);
    }

    #[test]
    fn layer_parameter_counts() {
        assert_eq!(LayerKind::SingleQubitUnitary.parameter_count(4), 8);
        assert_eq!(LayerKind::DualQubitUnitary.parameter_count(4), 6);
        assert_eq!(LayerKind::Entanglement.parameter_count(4), 6);
        assert_eq!(LayerKind::Entanglement.parameter_count(1), 0);
    }

    #[test]
    fn stack_names() {
        assert_eq!(LayerStack::qc_s(2).unwrap().architecture_name(), "QC-S");
        assert_eq!(LayerStack::qc_sd(2).unwrap().architecture_name(), "QC-SD");
        assert_eq!(LayerStack::qc_sde(2).unwrap().architecture_name(), "QC-SDE");
        assert_eq!(LayerStack::qc_d(2).unwrap().architecture_name(), "QC-D");
        assert_eq!(LayerStack::qc_e(2).unwrap().architecture_name(), "QC-E");
    }

    #[test]
    fn invalid_configurations_rejected() {
        assert!(LayerStack::new(vec![], 2).is_err());
        assert!(LayerStack::new(vec![LayerKind::SingleQubitUnitary], 0).is_err());
    }

    #[test]
    fn built_circuit_has_expected_parameter_count() {
        let stack = LayerStack::qc_sde(3).unwrap();
        let circuit = stack.build_circuit();
        assert_eq!(circuit.num_parameters(), stack.parameter_count());
        assert_eq!(circuit.num_qubits(), 3);
    }

    #[test]
    fn single_layer_produces_expected_state() {
        // RY(π) on each qubit flips it to |1…1⟩ when RZ angles are zero.
        let stack = LayerStack::qc_s(2).unwrap();
        let circuit = stack.build_circuit();
        let params = vec![std::f64::consts::PI, 0.0, std::f64::consts::PI, 0.0];
        let sv = circuit.execute(&params).unwrap();
        assert!((sv.probabilities()[3] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn dual_layer_shares_parameters_between_pair() {
        let stack = LayerStack::qc_d(2).unwrap();
        assert_eq!(stack.parameter_count(), 2);
        let circuit = stack.build_circuit();
        // Both qubits get RY(θ0): with θ0 = π both flip.
        let sv = circuit.execute(&[std::f64::consts::PI, 0.0]).unwrap();
        assert!((sv.probabilities()[3] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn entanglement_layer_creates_entanglement() {
        // Put the control qubit in superposition first, then a CRY(π) should
        // correlate the qubits.
        let mut circuit = Circuit::new(2);
        circuit.h(0);
        let stack = LayerStack::qc_e(2).unwrap();
        stack.append_to(&mut circuit, 0, 0);
        let sv = circuit.execute(&[std::f64::consts::PI, 0.0]).unwrap();
        let p = sv.probabilities();
        // Expect weight on |00⟩ and |11⟩ only.
        assert!((p[0] - 0.5).abs() < 1e-10);
        assert!((p[3] - 0.5).abs() < 1e-10);
        assert!(p[1] < 1e-10 && p[2] < 1e-10);
    }

    #[test]
    fn bound_stack_matches_parametric_execution_bit_for_bit() {
        // Binding angles at build time and binding them at execute time must
        // walk the same gates in the same order: the final amplitudes agree
        // to the last bit for every architecture.
        for stack in [
            LayerStack::qc_s(3).unwrap(),
            LayerStack::qc_d(3).unwrap(),
            LayerStack::qc_e(3).unwrap(),
            LayerStack::qc_sde(3).unwrap(),
        ] {
            let params: Vec<f64> = (0..stack.parameter_count())
                .map(|i| 0.21 + 0.37 * i as f64)
                .collect();
            let parametric = stack.build_circuit().execute(&params).unwrap();
            let bound_circuit = stack.build_bound_circuit(&params).unwrap();
            assert_eq!(bound_circuit.num_parameters(), 0);
            let bound = bound_circuit.execute(&[]).unwrap();
            assert_eq!(parametric, bound, "{}", stack.architecture_name());
        }
    }

    #[test]
    fn bound_stack_validates_parameter_count() {
        let stack = LayerStack::qc_s(2).unwrap();
        assert!(stack.build_bound_circuit(&[0.1]).is_err());
        let mut c = Circuit::new(2);
        assert!(stack.append_bound_to(&mut c, 0, &[0.1, 0.2, 0.3]).is_err());
    }

    #[test]
    fn append_to_respects_offsets() {
        let stack = LayerStack::qc_s(2).unwrap();
        let mut circuit = Circuit::new(5);
        let consumed = stack.append_to(&mut circuit, 3, 7);
        assert_eq!(consumed, 4);
        // Parameters 7..=10 must now be referenced.
        assert_eq!(circuit.num_parameters(), 11);
        // All gates act on qubits 3 and 4.
        for op in circuit.operations() {
            for q in op.qubits() {
                assert!(q == 3 || q == 4);
            }
        }
    }

    #[test]
    fn stacked_layers_consume_sequential_parameters() {
        let stack = LayerStack::qc_sde(3).unwrap();
        // QC-S: 6, QC-D: 4, QC-E: 4 → 14 parameters.
        assert_eq!(stack.parameter_count(), 14);
        let circuit = stack.build_circuit();
        assert_eq!(circuit.num_parameters(), 14);
    }
}
