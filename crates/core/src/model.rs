//! The QuClassi model: one learned quantum state per class (paper Section 4).
//!
//! A [`QuClassiModel`] owns a parameter vector for every class. Classifying a
//! data point means estimating the fidelity between the encoded point and
//! each class state, softmaxing the fidelities, and taking the arg-max
//! (Section 4.5, "the quantum network is induced across all trained classes
//! and the fidelity is softmaxed").

use crate::encoding::{DataEncoder, EncodingStrategy};
use crate::error::QuClassiError;
use crate::layers::{LayerKind, LayerStack};
use crate::loss::softmax;
use crate::swap_test::{swap_test_layout, FidelityEstimator};
use quclassi_sim::state::StateVector;
use rand::Rng;

/// Hyper-parameters that define a QuClassi architecture.
#[derive(Clone, Debug, PartialEq)]
pub struct QuClassiConfig {
    /// Dimensionality of the (normalised) input features.
    pub data_dim: usize,
    /// Number of classes (≥ 2).
    pub num_classes: usize,
    /// How features are packed onto qubits.
    pub encoding: EncodingStrategy,
    /// The trainable layer stack applied to every class state.
    pub layers: Vec<LayerKind>,
}

impl QuClassiConfig {
    /// A QC-S model with dual-angle encoding — the paper's default setup.
    pub fn qc_s(data_dim: usize, num_classes: usize) -> Self {
        QuClassiConfig {
            data_dim,
            num_classes,
            encoding: EncodingStrategy::DualAngle,
            layers: vec![LayerKind::SingleQubitUnitary],
        }
    }

    /// A QC-SD model with dual-angle encoding.
    pub fn qc_sd(data_dim: usize, num_classes: usize) -> Self {
        QuClassiConfig {
            layers: vec![LayerKind::SingleQubitUnitary, LayerKind::DualQubitUnitary],
            ..QuClassiConfig::qc_s(data_dim, num_classes)
        }
    }

    /// A QC-SDE model with dual-angle encoding.
    pub fn qc_sde(data_dim: usize, num_classes: usize) -> Self {
        QuClassiConfig {
            layers: vec![
                LayerKind::SingleQubitUnitary,
                LayerKind::DualQubitUnitary,
                LayerKind::Entanglement,
            ],
            ..QuClassiConfig::qc_s(data_dim, num_classes)
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), QuClassiError> {
        if self.data_dim == 0 {
            return Err(QuClassiError::InvalidConfig(
                "data dimension must be at least 1".to_string(),
            ));
        }
        if self.num_classes < 2 {
            return Err(QuClassiError::InvalidConfig(
                "a classifier needs at least 2 classes".to_string(),
            ));
        }
        if self.layers.is_empty() {
            return Err(QuClassiError::InvalidConfig(
                "at least one layer is required".to_string(),
            ));
        }
        Ok(())
    }

    /// Number of qubits in each of the learned-state / data registers.
    pub fn state_qubits(&self) -> usize {
        match self.encoding {
            EncodingStrategy::DualAngle => self.data_dim.div_ceil(2),
            EncodingStrategy::SingleAngle => self.data_dim,
        }
    }

    /// Total qubits of the SWAP-test circuit (ancilla + both registers) —
    /// the paper's "Qubit Channels".
    pub fn total_qubits(&self) -> usize {
        swap_test_layout(self.state_qubits()).total_qubits
    }
}

/// A trained (or trainable) QuClassi classifier.
#[derive(Clone, Debug, PartialEq)]
pub struct QuClassiModel {
    config: QuClassiConfig,
    encoder: DataEncoder,
    stack: LayerStack,
    /// One parameter vector per class.
    class_params: Vec<Vec<f64>>,
}

impl QuClassiModel {
    /// Creates a model with all parameters set to zero.
    pub fn new(config: QuClassiConfig) -> Result<Self, QuClassiError> {
        config.validate()?;
        let encoder = DataEncoder::new(config.encoding, config.data_dim)?;
        let stack = LayerStack::new(config.layers.clone(), config.state_qubits())?;
        let per_class = stack.parameter_count();
        let class_params = vec![vec![0.0; per_class]; config.num_classes];
        Ok(QuClassiModel {
            config,
            encoder,
            stack,
            class_params,
        })
    }

    /// Creates a model with parameters drawn uniformly from `[0, π]`
    /// (Algorithm 1, line 3).
    pub fn with_random_parameters<R: Rng + ?Sized>(
        config: QuClassiConfig,
        rng: &mut R,
    ) -> Result<Self, QuClassiError> {
        let mut model = QuClassiModel::new(config)?;
        for params in &mut model.class_params {
            for p in params.iter_mut() {
                *p = rng.gen::<f64>() * std::f64::consts::PI;
            }
        }
        Ok(model)
    }

    /// The model configuration.
    pub fn config(&self) -> &QuClassiConfig {
        &self.config
    }

    /// The data encoder.
    pub fn encoder(&self) -> &DataEncoder {
        &self.encoder
    }

    /// The layer stack shared by all class states.
    pub fn stack(&self) -> &LayerStack {
        &self.stack
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    /// Trainable parameters per class.
    pub fn parameters_per_class(&self) -> usize {
        self.stack.parameter_count()
    }

    /// Total trainable parameters (all classes).
    pub fn parameter_count(&self) -> usize {
        self.parameters_per_class() * self.num_classes()
    }

    /// The parameter vector of one class.
    pub fn class_params(&self, class: usize) -> Result<&[f64], QuClassiError> {
        self.class_params
            .get(class)
            .map(|v| v.as_slice())
            .ok_or(QuClassiError::InvalidLabel {
                label: class,
                num_classes: self.num_classes(),
            })
    }

    /// Mutable access to one class's parameters (used by the trainer).
    pub fn class_params_mut(&mut self, class: usize) -> Result<&mut Vec<f64>, QuClassiError> {
        let num_classes = self.num_classes();
        self.class_params
            .get_mut(class)
            .ok_or(QuClassiError::InvalidLabel {
                label: class,
                num_classes,
            })
    }

    /// Replaces one class's parameters.
    pub fn set_class_params(
        &mut self,
        class: usize,
        params: Vec<f64>,
    ) -> Result<(), QuClassiError> {
        if params.len() != self.parameters_per_class() {
            return Err(QuClassiError::InvalidConfig(format!(
                "expected {} parameters, got {}",
                self.parameters_per_class(),
                params.len()
            )));
        }
        *self.class_params_mut(class)? = params;
        Ok(())
    }

    /// The learned quantum state |ω_c⟩ of one class, prepared analytically.
    pub fn learned_state(&self, class: usize) -> Result<StateVector, QuClassiError> {
        let params = self.class_params(class)?;
        Ok(self.stack.build_circuit().execute(params)?)
    }

    /// Fidelity between a data point and one class state.
    pub fn class_fidelity<R: Rng + ?Sized>(
        &self,
        class: usize,
        x: &[f64],
        estimator: &FidelityEstimator,
        rng: &mut R,
    ) -> Result<f64, QuClassiError> {
        let params = self.class_params(class)?;
        estimator.estimate(&self.stack, params, &self.encoder, x, rng)
    }

    /// Fidelities between a data point and every class state.
    pub fn class_fidelities<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        estimator: &FidelityEstimator,
        rng: &mut R,
    ) -> Result<Vec<f64>, QuClassiError> {
        (0..self.num_classes())
            .map(|c| self.class_fidelity(c, x, estimator, rng))
            .collect()
    }

    /// Softmaxed class probabilities for a data point (Section 4.5).
    pub fn predict_proba<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        estimator: &FidelityEstimator,
        rng: &mut R,
    ) -> Result<Vec<f64>, QuClassiError> {
        Ok(softmax(&self.class_fidelities(x, estimator, rng)?))
    }

    /// Predicted class label (arg-max of the softmaxed fidelities).
    pub fn predict<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        estimator: &FidelityEstimator,
        rng: &mut R,
    ) -> Result<usize, QuClassiError> {
        let probs = self.predict_proba(x, estimator, rng)?;
        Ok(probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    /// Classification accuracy over a labelled set.
    pub fn evaluate_accuracy<R: Rng + ?Sized>(
        &self,
        features: &[Vec<f64>],
        labels: &[usize],
        estimator: &FidelityEstimator,
        rng: &mut R,
    ) -> Result<f64, QuClassiError> {
        if features.len() != labels.len() {
            return Err(QuClassiError::InvalidData(format!(
                "{} feature rows but {} labels",
                features.len(),
                labels.len()
            )));
        }
        if features.is_empty() {
            return Err(QuClassiError::InvalidData(
                "cannot evaluate accuracy on an empty set".to_string(),
            ));
        }
        let mut correct = 0usize;
        for (x, &y) in features.iter().zip(labels.iter()) {
            if self.predict(x, estimator, rng)? == y {
                correct += 1;
            }
        }
        Ok(correct as f64 / features.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation() {
        assert!(QuClassiConfig::qc_s(4, 3).validate().is_ok());
        assert!(QuClassiConfig::qc_s(0, 3).validate().is_err());
        assert!(QuClassiConfig::qc_s(4, 1).validate().is_err());
        let mut cfg = QuClassiConfig::qc_s(4, 2);
        cfg.layers.clear();
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn qubit_counts_match_paper() {
        // Iris: 4 features, 3 classes → 2 state qubits, 5 total qubits.
        let cfg = QuClassiConfig::qc_s(4, 3);
        assert_eq!(cfg.state_qubits(), 2);
        assert_eq!(cfg.total_qubits(), 5);
        // MNIST 16-dim → 8 state qubits, 17 total qubits.
        let cfg = QuClassiConfig::qc_s(16, 2);
        assert_eq!(cfg.total_qubits(), 17);
        // Single-angle encoding doubles the register width.
        let cfg = QuClassiConfig {
            encoding: EncodingStrategy::SingleAngle,
            ..QuClassiConfig::qc_s(4, 2)
        };
        assert_eq!(cfg.state_qubits(), 4);
        assert_eq!(cfg.total_qubits(), 9);
    }

    #[test]
    fn parameter_counts_match_paper() {
        // Binary MNIST QC-S: 32 trainable parameters (16 per class).
        let model = QuClassiModel::new(QuClassiConfig::qc_s(16, 2)).unwrap();
        assert_eq!(model.parameters_per_class(), 16);
        assert_eq!(model.parameter_count(), 32);
        // Iris QC-S, 3 classes: 12 parameters.
        let model = QuClassiModel::new(QuClassiConfig::qc_s(4, 3)).unwrap();
        assert_eq!(model.parameter_count(), 12);
        // 10-class MNIST QC-S: 160 parameters.
        let model = QuClassiModel::new(QuClassiConfig::qc_s(16, 10)).unwrap();
        assert_eq!(model.parameter_count(), 160);
    }

    #[test]
    fn random_initialisation_within_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let model =
            QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng).unwrap();
        for c in 0..3 {
            for &p in model.class_params(c).unwrap() {
                assert!((0.0..=std::f64::consts::PI).contains(&p));
            }
        }
        // Different classes get different random draws.
        assert_ne!(
            model.class_params(0).unwrap(),
            model.class_params(1).unwrap()
        );
    }

    #[test]
    fn class_params_accessors_validate_labels() {
        let mut model = QuClassiModel::new(QuClassiConfig::qc_s(4, 2)).unwrap();
        assert!(model.class_params(5).is_err());
        assert!(model.class_params_mut(2).is_err());
        assert!(model.set_class_params(0, vec![0.0; 3]).is_err());
        assert!(model.set_class_params(0, vec![0.1; 4]).is_ok());
        assert_eq!(model.class_params(0).unwrap(), &[0.1; 4]);
    }

    #[test]
    fn zero_parameters_give_zero_state() {
        let model = QuClassiModel::new(QuClassiConfig::qc_s(4, 2)).unwrap();
        let state = model.learned_state(0).unwrap();
        assert!((state.probabilities()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn predictions_favour_matching_class_state() {
        // Hand-craft a model whose class-0 state encodes "low" features and
        // class-1 state encodes "high" features; predictions should follow.
        let mut model = QuClassiModel::new(QuClassiConfig::qc_s(4, 2)).unwrap();
        let low = [0.1, 0.1, 0.1, 0.1];
        let high = [0.9, 0.9, 0.9, 0.9];
        let to_params = |x: &[f64]| -> Vec<f64> {
            // QC-S on 2 qubits: RY, RZ per qubit — mirror the dual-angle encoding.
            vec![
                crate::encoding::feature_to_angle(x[0]),
                crate::encoding::feature_to_angle(x[1]),
                crate::encoding::feature_to_angle(x[2]),
                crate::encoding::feature_to_angle(x[3]),
            ]
        };
        model.set_class_params(0, to_params(&low)).unwrap();
        model.set_class_params(1, to_params(&high)).unwrap();
        let estimator = FidelityEstimator::analytic();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            model
                .predict(&[0.15, 0.1, 0.12, 0.08], &estimator, &mut rng)
                .unwrap(),
            0
        );
        assert_eq!(
            model
                .predict(&[0.85, 0.92, 0.88, 0.9], &estimator, &mut rng)
                .unwrap(),
            1
        );
        let probs = model
            .predict_proba(&[0.9, 0.9, 0.9, 0.9], &estimator, &mut rng)
            .unwrap();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs[1] > probs[0]);
    }

    #[test]
    fn accuracy_evaluation_and_validation() {
        let mut model = QuClassiModel::new(QuClassiConfig::qc_s(2, 2)).unwrap();
        model
            .set_class_params(0, vec![crate::encoding::feature_to_angle(0.05), 0.0])
            .unwrap();
        model
            .set_class_params(1, vec![crate::encoding::feature_to_angle(0.95), 0.0])
            .unwrap();
        let estimator = FidelityEstimator::analytic();
        let mut rng = StdRng::seed_from_u64(2);
        let xs = vec![
            vec![0.1, 0.1],
            vec![0.0, 0.2],
            vec![0.9, 0.8],
            vec![1.0, 0.95],
        ];
        let ys = vec![0, 0, 1, 1];
        let acc = model
            .evaluate_accuracy(&xs, &ys, &estimator, &mut rng)
            .unwrap();
        assert!((acc - 1.0).abs() < 1e-12);
        assert!(model
            .evaluate_accuracy(&xs, &ys[..2], &estimator, &mut rng)
            .is_err());
        assert!(model
            .evaluate_accuracy(&[], &[], &estimator, &mut rng)
            .is_err());
    }

    #[test]
    fn fidelities_have_one_entry_per_class() {
        let mut rng = StdRng::seed_from_u64(3);
        let model =
            QuClassiModel::with_random_parameters(QuClassiConfig::qc_sde(4, 3), &mut rng).unwrap();
        let estimator = FidelityEstimator::analytic();
        let f = model
            .class_fidelities(&[0.2, 0.4, 0.6, 0.8], &estimator, &mut rng)
            .unwrap();
        assert_eq!(f.len(), 3);
        for v in f {
            assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
    }
}
