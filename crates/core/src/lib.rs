//! # quclassi
//!
//! A from-scratch Rust reproduction of **QuClassi** (Stein et al.,
//! *"QuClassi: A Hybrid Deep Neural Network Architecture based on Quantum
//! State Fidelity"*, MLSys 2022).
//!
//! QuClassi is a hybrid quantum–classical classifier. For every class it
//! learns a parameterised quantum state; classical data points are encoded
//! into quantum states (two features per qubit via RY + RZ rotations); the
//! classifier's score for a class is the quantum state fidelity between the
//! encoded point and the class state, estimated with a SWAP test on a single
//! ancilla qubit. Training uses a cross-entropy loss on the fidelity and an
//! epoch-scaled parameter-shift rule; inference softmaxes the per-class
//! fidelities.
//!
//! ## Crate layout
//!
//! * [`encoding`] — data qubitization (Section 4.2),
//! * [`layers`] — the QC-S / QC-D / QC-E layer families (Section 4.3),
//! * [`swap_test`] — SWAP-test circuits and fidelity estimators (Sections
//!   3.3 and 4.4),
//! * [`loss`], [`gradient`], [`optimizer`] — the training machinery
//!   (Section 4.4, Eq. 13–15),
//! * [`model`] — the per-class learned states and the inference rule
//!   (Section 4.5),
//! * [`trainer`] — Algorithm 1,
//! * [`metrics`], [`bloch`], [`io`] — evaluation, visualisation and
//!   persistence utilities.
//!
//! [`model::QuClassiModel::predict`] is the convenience inference path: it
//! re-lowers the class circuits on every call. For serving — batches, top-k,
//! caching, and compile-once latency — freeze the trained model into a
//! `CompiledModel` from the `quclassi-infer` crate (the train → compile →
//! serve pipeline is described in `docs/ARCHITECTURE.md`).
//!
//! ## Quickstart
//!
//! ```
//! use quclassi::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//!
//! // A tiny separable binary problem on 4 normalised features.
//! let features: Vec<Vec<f64>> = (0..10)
//!     .flat_map(|i| {
//!         let j = 0.01 * i as f64;
//!         vec![vec![0.1 + j, 0.2, 0.1, 0.15], vec![0.9 - j, 0.8, 0.9, 0.85]]
//!     })
//!     .collect();
//! let labels: Vec<usize> = (0..10).flat_map(|_| vec![0usize, 1usize]).collect();
//!
//! // QC-S architecture, dual-angle encoding, 2 classes.
//! let mut model =
//!     QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
//! let trainer = Trainer::new(
//!     TrainingConfig { epochs: 10, learning_rate: 0.1, ..Default::default() },
//!     FidelityEstimator::analytic(),
//! );
//! trainer.fit(&mut model, &features, &labels, &mut rng).unwrap();
//!
//! let accuracy = model
//!     .evaluate_accuracy(&features, &labels, &FidelityEstimator::analytic(), &mut rng)
//!     .unwrap();
//! assert!(accuracy > 0.9);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bloch;
pub mod encoding;
pub mod error;
pub mod gradient;
pub mod io;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optimizer;
pub mod swap_test;
pub mod trainer;

/// Re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::encoding::{DataEncoder, EncodingStrategy};
    pub use crate::error::QuClassiError;
    pub use crate::gradient::ShiftSchedule;
    pub use crate::layers::{LayerKind, LayerStack};
    pub use crate::metrics::{accuracy, ConfusionMatrix};
    pub use crate::model::{QuClassiConfig, QuClassiModel};
    pub use crate::optimizer::{Adam, Momentum, Optimizer, Sgd};
    pub use crate::swap_test::{FidelityEstimator, FidelityMethod};
    pub use crate::trainer::{EvalSet, Trainer, TrainingConfig, TrainingHistory};
}
