//! Error type for the QuClassi core crate.

use quclassi_sim::error::SimError;
use std::fmt;

/// Errors produced while encoding data, building models, or training.
#[derive(Clone, Debug, PartialEq)]
pub enum QuClassiError {
    /// Input data was invalid (wrong dimension, out of range, NaN, …).
    InvalidData(String),
    /// Model configuration was invalid.
    InvalidConfig(String),
    /// Labels were inconsistent with the configured number of classes.
    InvalidLabel {
        /// The offending label.
        label: usize,
        /// The number of classes the model was built for.
        num_classes: usize,
    },
    /// An underlying simulator error.
    Sim(SimError),
    /// A model file could not be parsed.
    Parse(String),
}

impl QuClassiError {
    /// Whether the failure is attributable to the *request* (malformed or
    /// out-of-range input data, a label outside the configured classes)
    /// rather than to the model or the system serving it.
    ///
    /// Serving frontends use this split to map failures onto their wire
    /// taxonomy: client errors are reported back to the caller as rejected
    /// requests (retrying identical input cannot succeed), everything else
    /// is surfaced as an internal serving failure.
    pub fn is_client_error(&self) -> bool {
        matches!(
            self,
            QuClassiError::InvalidData(_) | QuClassiError::InvalidLabel { .. }
        )
    }
}

impl fmt::Display for QuClassiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuClassiError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
            QuClassiError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            QuClassiError::InvalidLabel { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
            QuClassiError::Sim(e) => write!(f, "simulator error: {e}"),
            QuClassiError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for QuClassiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QuClassiError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for QuClassiError {
    fn from(e: SimError) -> Self {
        QuClassiError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<(QuClassiError, &str)> = vec![
            (QuClassiError::InvalidData("x".into()), "invalid data"),
            (
                QuClassiError::InvalidConfig("y".into()),
                "invalid configuration",
            ),
            (
                QuClassiError::InvalidLabel {
                    label: 5,
                    num_classes: 3,
                },
                "label 5",
            ),
            (
                QuClassiError::Sim(SimError::DuplicateQubit(1)),
                "simulator error",
            ),
            (QuClassiError::Parse("bad".into()), "parse error"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle));
        }
    }

    #[test]
    fn client_errors_are_distinguished_from_system_errors() {
        assert!(QuClassiError::InvalidData("bad".into()).is_client_error());
        assert!(QuClassiError::InvalidLabel {
            label: 9,
            num_classes: 2
        }
        .is_client_error());
        assert!(!QuClassiError::InvalidConfig("x".into()).is_client_error());
        assert!(!QuClassiError::Sim(SimError::DuplicateQubit(0)).is_client_error());
        assert!(!QuClassiError::Parse("x".into()).is_client_error());
    }

    #[test]
    fn sim_error_converts_and_exposes_source() {
        let e: QuClassiError = SimError::DuplicateQubit(2).into();
        assert!(matches!(e, QuClassiError::Sim(_)));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(QuClassiError::Parse("x".into()).source().is_none());
    }
}
