//! Plain-text (de)serialisation of trained models.
//!
//! A deliberately simple, dependency-free, line-oriented format so that
//! trained models can be saved from an experiment binary and reloaded by an
//! example or a test:
//!
//! ```text
//! quclassi-model v1
//! data_dim 4
//! num_classes 3
//! encoding dual
//! layers S,D,E
//! class 0 0.1 0.2 0.3 ...
//! class 1 ...
//! ```

use crate::encoding::EncodingStrategy;
use crate::error::QuClassiError;
use crate::layers::LayerKind;
use crate::model::{QuClassiConfig, QuClassiModel};

const HEADER: &str = "quclassi-model v1";

fn encoding_to_str(e: EncodingStrategy) -> &'static str {
    match e {
        EncodingStrategy::DualAngle => "dual",
        EncodingStrategy::SingleAngle => "single",
    }
}

fn encoding_from_str(s: &str) -> Result<EncodingStrategy, QuClassiError> {
    match s {
        "dual" => Ok(EncodingStrategy::DualAngle),
        "single" => Ok(EncodingStrategy::SingleAngle),
        other => Err(QuClassiError::Parse(format!("unknown encoding '{other}'"))),
    }
}

fn layer_to_char(l: LayerKind) -> char {
    l.code()
}

fn layer_from_char(c: char) -> Result<LayerKind, QuClassiError> {
    match c {
        'S' => Ok(LayerKind::SingleQubitUnitary),
        'D' => Ok(LayerKind::DualQubitUnitary),
        'E' => Ok(LayerKind::Entanglement),
        other => Err(QuClassiError::Parse(format!(
            "unknown layer code '{other}'"
        ))),
    }
}

/// Serialises a model to the text format.
pub fn model_to_string(model: &QuClassiModel) -> String {
    let cfg = model.config();
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("data_dim {}\n", cfg.data_dim));
    out.push_str(&format!("num_classes {}\n", cfg.num_classes));
    out.push_str(&format!("encoding {}\n", encoding_to_str(cfg.encoding)));
    let layer_codes: String = cfg
        .layers
        .iter()
        .map(|&l| layer_to_char(l).to_string())
        .collect::<Vec<_>>()
        .join(",");
    out.push_str(&format!("layers {layer_codes}\n"));
    for c in 0..model.num_classes() {
        let params = model
            .class_params(c)
            .expect("class index within num_classes");
        let values: Vec<String> = params.iter().map(|p| format!("{p:.17e}")).collect();
        out.push_str(&format!("class {c} {}\n", values.join(" ")));
    }
    out
}

fn parse_field<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, QuClassiError> {
    let line = line.ok_or_else(|| QuClassiError::Parse(format!("missing '{key}' line")))?;
    line.strip_prefix(key).map(str::trim).ok_or_else(|| {
        QuClassiError::Parse(format!("expected line starting with '{key}', got '{line}'"))
    })
}

/// Parses a model from the text format produced by [`model_to_string`].
pub fn model_from_string(text: &str) -> Result<QuClassiModel, QuClassiError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| QuClassiError::Parse("empty model file".to_string()))?;
    if header.trim() != HEADER {
        return Err(QuClassiError::Parse(format!(
            "unexpected header '{header}'"
        )));
    }
    let data_dim: usize = parse_field(lines.next(), "data_dim")?
        .parse()
        .map_err(|e| QuClassiError::Parse(format!("bad data_dim: {e}")))?;
    let num_classes: usize = parse_field(lines.next(), "num_classes")?
        .parse()
        .map_err(|e| QuClassiError::Parse(format!("bad num_classes: {e}")))?;
    let encoding = encoding_from_str(parse_field(lines.next(), "encoding")?)?;
    let layers_str = parse_field(lines.next(), "layers")?;
    let mut layers = Vec::new();
    for code in layers_str.split(',') {
        let code = code.trim();
        if code.len() != 1 {
            return Err(QuClassiError::Parse(format!("bad layer code '{code}'")));
        }
        layers.push(layer_from_char(code.chars().next().expect("len checked"))?);
    }

    let config = QuClassiConfig {
        data_dim,
        num_classes,
        encoding,
        layers,
    };
    let mut model = QuClassiModel::new(config)?;

    let mut seen = vec![false; num_classes];
    for line in lines {
        let rest = line
            .strip_prefix("class ")
            .ok_or_else(|| QuClassiError::Parse(format!("unexpected line '{line}'")))?;
        let mut tokens = rest.split_whitespace();
        let class: usize = tokens
            .next()
            .ok_or_else(|| QuClassiError::Parse("missing class index".to_string()))?
            .parse()
            .map_err(|e| QuClassiError::Parse(format!("bad class index: {e}")))?;
        let params: Result<Vec<f64>, _> = tokens.map(str::parse::<f64>).collect();
        let params = params.map_err(|e| QuClassiError::Parse(format!("bad parameter: {e}")))?;
        model.set_class_params(class, params)?;
        if class < seen.len() {
            seen[class] = true;
        }
    }
    if seen.iter().any(|&s| !s) {
        return Err(QuClassiError::Parse(
            "model file does not list parameters for every class".to_string(),
        ));
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_model() -> QuClassiModel {
        let mut rng = StdRng::seed_from_u64(42);
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_sde(6, 3), &mut rng).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let model = random_model();
        let text = model_to_string(&model);
        let restored = model_from_string(&text).unwrap();
        assert_eq!(restored.config(), model.config());
        for c in 0..model.num_classes() {
            let a = model.class_params(c).unwrap();
            let b = restored.class_params(c).unwrap();
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn round_trip_single_angle_encoding() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = QuClassiConfig {
            encoding: EncodingStrategy::SingleAngle,
            ..QuClassiConfig::qc_s(3, 2)
        };
        let model = QuClassiModel::with_random_parameters(config, &mut rng).unwrap();
        let restored = model_from_string(&model_to_string(&model)).unwrap();
        assert_eq!(restored.config(), model.config());
    }

    #[test]
    fn rejects_corrupted_inputs() {
        assert!(model_from_string("").is_err());
        assert!(model_from_string("not a model").is_err());
        let model = random_model();
        let text = model_to_string(&model);
        // Drop the last class line.
        let truncated: Vec<&str> = text.lines().take(text.lines().count() - 1).collect();
        assert!(model_from_string(&truncated.join("\n")).is_err());
        // Corrupt a number.
        let corrupted = text.replace("class 0 ", "class 0 NOT_A_NUMBER ");
        assert!(model_from_string(&corrupted).is_err());
        // Unknown layer code.
        let bad_layers = text.replace("layers S,D,E", "layers S,Q");
        assert!(model_from_string(&bad_layers).is_err());
        // Unknown encoding.
        let bad_encoding = text.replace("encoding dual", "encoding qutrit");
        assert!(model_from_string(&bad_encoding).is_err());
    }

    #[test]
    fn serialised_text_is_human_readable() {
        let text = model_to_string(&random_model());
        assert!(text.starts_with(HEADER));
        assert!(text.contains("data_dim 6"));
        assert!(text.contains("num_classes 3"));
        assert!(text.contains("layers S,D,E"));
        assert!(text.contains("class 2 "));
    }

    #[test]
    fn restored_model_predicts_identically() {
        use crate::swap_test::FidelityEstimator;
        let model = random_model();
        let restored = model_from_string(&model_to_string(&model)).unwrap();
        let estimator = FidelityEstimator::analytic();
        let mut rng = StdRng::seed_from_u64(9);
        let x = vec![0.1, 0.8, 0.3, 0.6, 0.2, 0.9];
        let a = model.predict_proba(&x, &estimator, &mut rng).unwrap();
        let b = restored.predict_proba(&x, &estimator, &mut rng).unwrap();
        for (p, q) in a.iter().zip(b.iter()) {
            assert!((p - q).abs() < 1e-12);
        }
    }
}
