//! Data qubitization: translating classical feature vectors into quantum
//! states (paper Section 4.2).
//!
//! Each feature is first normalised to `[0, 1]` (done upstream, validated
//! here). A feature value `x` is mapped to a rotation angle
//! `θ = 2·asin(√x)` so that the *expectation* of the qubit measured along
//! the Z axis equals `x`.
//!
//! Two strategies are supported:
//!
//! * [`EncodingStrategy::DualAngle`] — the paper's default: two features per
//!   qubit, the first through an `RY` rotation, the second through an `RZ`
//!   rotation on the same qubit (Eq. 12). Halves the qubit count.
//! * [`EncodingStrategy::SingleAngle`] — one feature per qubit through an
//!   `RY` only, the ablation mentioned in Section 4.2.

use crate::error::QuClassiError;
use quclassi_sim::circuit::Circuit;
use quclassi_sim::gate::{matrices, Gate};
use quclassi_sim::state::StateVector;

/// How classical features are packed onto qubits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncodingStrategy {
    /// Two features per qubit: RY for even-indexed features, RZ for odd.
    DualAngle,
    /// One feature per qubit, RY only.
    SingleAngle,
}

/// Converts a normalised feature value in [0, 1] to its rotation angle
/// `2·asin(√x)`.
pub fn feature_to_angle(x: f64) -> f64 {
    2.0 * x.clamp(0.0, 1.0).sqrt().asin()
}

/// Inverse of [`feature_to_angle`]: recovers the feature from the angle.
pub fn angle_to_feature(theta: f64) -> f64 {
    let s = (theta / 2.0).sin();
    s * s
}

/// A configured encoder for feature vectors of a fixed dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct DataEncoder {
    strategy: EncodingStrategy,
    dim: usize,
}

impl DataEncoder {
    /// Creates an encoder for `dim`-dimensional data.
    ///
    /// # Errors
    /// Returns an error when `dim` is zero.
    pub fn new(strategy: EncodingStrategy, dim: usize) -> Result<Self, QuClassiError> {
        if dim == 0 {
            return Err(QuClassiError::InvalidConfig(
                "data dimension must be at least 1".to_string(),
            ));
        }
        Ok(DataEncoder { strategy, dim })
    }

    /// The expected feature-vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The configured strategy.
    pub fn strategy(&self) -> EncodingStrategy {
        self.strategy
    }

    /// Number of qubits needed to encode one data point.
    pub fn num_qubits(&self) -> usize {
        match self.strategy {
            EncodingStrategy::DualAngle => self.dim.div_ceil(2),
            EncodingStrategy::SingleAngle => self.dim,
        }
    }

    /// Validates a feature vector: correct dimension, finite, within [0, 1].
    pub fn validate(&self, x: &[f64]) -> Result<(), QuClassiError> {
        if x.len() != self.dim {
            return Err(QuClassiError::InvalidData(format!(
                "expected {} features, got {}",
                self.dim,
                x.len()
            )));
        }
        for (i, &v) in x.iter().enumerate() {
            if !v.is_finite() {
                return Err(QuClassiError::InvalidData(format!(
                    "feature {i} is not finite ({v})"
                )));
            }
            if !(0.0..=1.0).contains(&v) {
                return Err(QuClassiError::InvalidData(format!(
                    "feature {i} = {v} is outside the normalised range [0, 1]"
                )));
            }
        }
        Ok(())
    }

    /// The encoding gates for one data point, acting on qubits
    /// `qubit_offset .. qubit_offset + num_qubits()`.
    pub fn encoding_gates(
        &self,
        x: &[f64],
        qubit_offset: usize,
    ) -> Result<Vec<Gate>, QuClassiError> {
        self.validate(x)?;
        let mut gates = Vec::new();
        match self.strategy {
            EncodingStrategy::DualAngle => {
                for (i, &v) in x.iter().enumerate() {
                    let qubit = qubit_offset + i / 2;
                    let theta = feature_to_angle(v);
                    if i % 2 == 0 {
                        gates.push(Gate::Ry(qubit, theta));
                    } else {
                        gates.push(Gate::Rz(qubit, theta));
                    }
                }
            }
            EncodingStrategy::SingleAngle => {
                for (i, &v) in x.iter().enumerate() {
                    gates.push(Gate::Ry(qubit_offset + i, feature_to_angle(v)));
                }
            }
        }
        Ok(gates)
    }

    /// The rotation angles the encoder applies for `x`, in gate order (one
    /// angle per feature, `θᵢ = 2·asin(√xᵢ)`). This is the *encoding
    /// fingerprint* of a sample: two inputs with equal angle vectors are
    /// indistinguishable to every downstream circuit, which is what the
    /// serving-side result cache keys on.
    pub fn encoding_angles(&self, x: &[f64]) -> Result<Vec<f64>, QuClassiError> {
        self.validate(x)?;
        Ok(x.iter().map(|&v| feature_to_angle(v)).collect())
    }

    /// Number of rotation angles [`DataEncoder::encoding_angles`] produces:
    /// one per feature, for both strategies.
    pub fn num_angles(&self) -> usize {
        self.dim
    }

    /// Validates a *precomputed* angle vector (count and finiteness) without
    /// touching a state. This is the admission-time check a serving frontend
    /// runs before queueing a request whose angles were computed once at the
    /// edge: by the time the batch scheduler binds them, they are known
    /// good, so a malformed request can never poison a whole micro-batch.
    pub fn validate_angles(&self, angles: &[f64]) -> Result<(), QuClassiError> {
        if angles.len() != self.dim {
            return Err(QuClassiError::InvalidData(format!(
                "expected {} encoding angles, got {}",
                self.dim,
                angles.len()
            )));
        }
        for (i, &theta) in angles.iter().enumerate() {
            if !theta.is_finite() {
                return Err(QuClassiError::InvalidData(format!(
                    "encoding angle {i} is not finite ({theta})"
                )));
            }
        }
        Ok(())
    }

    /// Appends this encoder's gates as *parametric* operations reading
    /// symbolic parameters `param_offset ..` (one per feature, in
    /// [`DataEncoder::encoding_angles`] order) and acting on qubits
    /// `qubit_offset ..`. Returns the number of parameters consumed.
    ///
    /// Binding the angles of a sample into the resulting circuit reproduces
    /// [`DataEncoder::encoding_gates`] for that sample exactly — this is how
    /// a compiled model swaps samples in and out of one precompiled
    /// SWAP-test circuit without rebuilding it.
    pub fn append_parametric_to(
        &self,
        circuit: &mut Circuit,
        qubit_offset: usize,
        param_offset: usize,
    ) -> usize {
        match self.strategy {
            EncodingStrategy::DualAngle => {
                for i in 0..self.dim {
                    let qubit = qubit_offset + i / 2;
                    if i % 2 == 0 {
                        circuit.push_parametric(Gate::Ry(qubit, 0.0), param_offset + i);
                    } else {
                        circuit.push_parametric(Gate::Rz(qubit, 0.0), param_offset + i);
                    }
                }
            }
            EncodingStrategy::SingleAngle => {
                for i in 0..self.dim {
                    circuit.push_parametric(Gate::Ry(qubit_offset + i, 0.0), param_offset + i);
                }
            }
        }
        self.dim
    }

    /// Builds a stand-alone circuit (width = `num_qubits()`) that prepares
    /// the encoded state from |0…0⟩.
    pub fn encoding_circuit(&self, x: &[f64]) -> Result<Circuit, QuClassiError> {
        let mut c = Circuit::new(self.num_qubits());
        for g in self.encoding_gates(x, 0)? {
            c.push(g);
        }
        Ok(c)
    }

    /// Directly prepares the encoded state |φ_x⟩ (used by the analytic
    /// fidelity path).
    pub fn encode_state(&self, x: &[f64]) -> Result<StateVector, QuClassiError> {
        let circuit = self.encoding_circuit(x)?;
        Ok(circuit.execute(&[])?)
    }

    /// The encoding gates for precomputed angles (the output of
    /// [`DataEncoder::encoding_angles`]): identical to
    /// [`DataEncoder::encoding_gates`] on the sample the angles came from.
    ///
    /// # Errors
    /// Returns an error when the angle count does not match the feature
    /// dimension.
    pub fn encoding_gates_from_angles(
        &self,
        angles: &[f64],
        qubit_offset: usize,
    ) -> Result<Vec<Gate>, QuClassiError> {
        if angles.len() != self.dim {
            return Err(QuClassiError::InvalidData(format!(
                "expected {} encoding angles, got {}",
                self.dim,
                angles.len()
            )));
        }
        let mut gates = Vec::with_capacity(self.dim);
        match self.strategy {
            EncodingStrategy::DualAngle => {
                for (i, &theta) in angles.iter().enumerate() {
                    let qubit = qubit_offset + i / 2;
                    if i % 2 == 0 {
                        gates.push(Gate::Ry(qubit, theta));
                    } else {
                        gates.push(Gate::Rz(qubit, theta));
                    }
                }
            }
            EncodingStrategy::SingleAngle => {
                for (i, &theta) in angles.iter().enumerate() {
                    gates.push(Gate::Ry(qubit_offset + i, theta));
                }
            }
        }
        Ok(gates)
    }

    /// Prepares |φ_x⟩ from precomputed encoding angles through the
    /// product-state fast path: both strategies emit their rotations in
    /// ascending qubit order, so each gate sweeps only the already-active
    /// prefix of the register (qubits above it are still |0⟩) via
    /// [`StateVector::apply_single_qubit_matrix_active`].
    ///
    /// The arithmetic applied to every active amplitude is identical to
    /// [`DataEncoder::encode_state`]'s full-register sweeps, so all nonzero
    /// amplitudes — and every fidelity computed from them — are
    /// bit-identical to the slow path. This is the per-sample hot path of
    /// the compiled inference engine (`quclassi-infer`).
    pub fn encode_state_from_angles(&self, angles: &[f64]) -> Result<StateVector, QuClassiError> {
        let mut sv = StateVector::zero_state(self.num_qubits());
        self.encode_state_from_angles_into(angles, &mut sv)?;
        Ok(sv)
    }

    /// [`DataEncoder::encode_state_from_angles`] into a caller-owned
    /// register: resets `state` to |0…0⟩ in place and applies the rotations
    /// through stack-allocated gate entries
    /// ([`matrices::ry_entries`]/[`matrices::rz_entries`]), so a steady-state
    /// encode loop performs **zero heap allocations** — no gate list, no
    /// matrices, no fresh statevector. Produces bit-identical amplitudes to
    /// the allocating form (both consume the same entry arrays).
    ///
    /// # Errors
    /// Returns an error when the angle count does not match the feature
    /// dimension or `state` is not on this encoder's register width.
    pub fn encode_state_from_angles_into(
        &self,
        angles: &[f64],
        state: &mut StateVector,
    ) -> Result<(), QuClassiError> {
        if angles.len() != self.dim {
            return Err(QuClassiError::InvalidData(format!(
                "expected {} encoding angles, got {}",
                self.dim,
                angles.len()
            )));
        }
        if state.num_qubits() != self.num_qubits() {
            return Err(QuClassiError::InvalidData(format!(
                "state has {} qubits but the encoder expects {}",
                state.num_qubits(),
                self.num_qubits()
            )));
        }
        state.reset_zero();
        // Both strategies emit rotations in ascending qubit order, so each
        // RY meets its qubit *fresh* (|0⟩, partner amplitudes exactly zero)
        // and each RZ is diagonal on the active prefix — the two shapes the
        // specialised statevector kernels cover at a fraction of the dense
        // butterfly's arithmetic, bit-identically on nonzero amplitudes.
        match self.strategy {
            EncodingStrategy::DualAngle => {
                for (i, &theta) in angles.iter().enumerate() {
                    if i % 2 == 0 {
                        state.apply_fresh_2x2(i / 2, &matrices::ry_entries(theta))?;
                    } else {
                        let d = matrices::rz_entries(theta);
                        state.apply_active_diag(i / 2, d[0], d[3])?;
                    }
                }
            }
            EncodingStrategy::SingleAngle => {
                for (i, &theta) in angles.iter().enumerate() {
                    state.apply_fresh_2x2(i, &matrices::ry_entries(theta))?;
                }
            }
        }
        Ok(())
    }

    /// Reconstructs the feature vector from the encoded state by reading each
    /// qubit's Bloch vector. Demonstrates the paper's claim that knowing the
    /// expectation across the Y and Z axes allows reconstruction.
    pub fn decode_state(&self, state: &StateVector) -> Result<Vec<f64>, QuClassiError> {
        if state.num_qubits() != self.num_qubits() {
            return Err(QuClassiError::InvalidData(format!(
                "state has {} qubits but the encoder expects {}",
                state.num_qubits(),
                self.num_qubits()
            )));
        }
        let mut features = Vec::with_capacity(self.dim);
        match self.strategy {
            EncodingStrategy::SingleAngle => {
                for q in 0..self.dim {
                    // P(1) = x directly.
                    features.push(state.probability_of_one(q)?);
                }
            }
            EncodingStrategy::DualAngle => {
                for q in 0..self.num_qubits() {
                    let [bx, by, bz] = state.bloch_vector(q)?;
                    // First feature: polar angle θ with z = cos θ and θ = 2 asin(√x₁)
                    // ⇒ x₁ = (1 - z) / 2.
                    let x1 = ((1.0 - bz) / 2.0).clamp(0.0, 1.0);
                    features.push(x1);
                    if 2 * q + 1 < self.dim {
                        // Second feature: azimuthal angle φ of the Bloch vector equals
                        // the RZ angle 2 asin(√x₂) ⇒ x₂ = sin²(φ/2).
                        let phi = by.atan2(bx);
                        let x2 = ((phi / 2.0).sin().powi(2)).clamp(0.0, 1.0);
                        features.push(x2);
                    }
                }
            }
        }
        Ok(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn angle_round_trip() {
        for &x in &[0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let theta = feature_to_angle(x);
            assert!((angle_to_feature(theta) - x).abs() < TOL);
        }
        // Out-of-range values are clamped rather than producing NaN.
        assert!(feature_to_angle(1.5).is_finite());
        assert!(feature_to_angle(-0.5).abs() < TOL);
    }

    #[test]
    fn qubit_counts_per_strategy() {
        let dual = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
        assert_eq!(dual.num_qubits(), 2);
        let dual_odd = DataEncoder::new(EncodingStrategy::DualAngle, 5).unwrap();
        assert_eq!(dual_odd.num_qubits(), 3);
        let single = DataEncoder::new(EncodingStrategy::SingleAngle, 4).unwrap();
        assert_eq!(single.num_qubits(), 4);
        assert!(DataEncoder::new(EncodingStrategy::DualAngle, 0).is_err());
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let enc = DataEncoder::new(EncodingStrategy::DualAngle, 2).unwrap();
        assert!(enc.validate(&[0.5, 0.5]).is_ok());
        assert!(enc.validate(&[0.5]).is_err());
        assert!(enc.validate(&[0.5, 1.5]).is_err());
        assert!(enc.validate(&[f64::NAN, 0.1]).is_err());
        assert!(enc.validate(&[-0.1, 0.1]).is_err());
    }

    #[test]
    fn single_angle_encoding_sets_expectations() {
        let enc = DataEncoder::new(EncodingStrategy::SingleAngle, 3).unwrap();
        let x = vec![0.2, 0.7, 1.0];
        let state = enc.encode_state(&x).unwrap();
        for (q, &v) in x.iter().enumerate() {
            assert!((state.probability_of_one(q).unwrap() - v).abs() < TOL);
        }
    }

    #[test]
    fn dual_angle_encoding_preserves_first_feature_expectation() {
        // The RZ rotation does not change the Z expectation, so P(1) of each
        // qubit still equals the even-indexed feature.
        let enc = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
        let x = vec![0.3, 0.8, 0.6, 0.1];
        let state = enc.encode_state(&x).unwrap();
        assert!((state.probability_of_one(0).unwrap() - 0.3).abs() < TOL);
        assert!((state.probability_of_one(1).unwrap() - 0.6).abs() < TOL);
    }

    #[test]
    fn dual_angle_gate_structure() {
        let enc = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
        let gates = enc.encoding_gates(&[0.1, 0.2, 0.3, 0.4], 5).unwrap();
        assert_eq!(gates.len(), 4);
        assert!(matches!(gates[0], Gate::Ry(5, _)));
        assert!(matches!(gates[1], Gate::Rz(5, _)));
        assert!(matches!(gates[2], Gate::Ry(6, _)));
        assert!(matches!(gates[3], Gate::Rz(6, _)));
    }

    #[test]
    fn decode_inverts_encode_for_dual_angle() {
        let enc = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
        // Stay away from the degenerate poles (x₁ ∈ {0, 1}) where the
        // azimuthal angle is undefined — the paper notes this limitation.
        let x = vec![0.3, 0.65, 0.52, 0.18];
        let state = enc.encode_state(&x).unwrap();
        let decoded = enc.decode_state(&state).unwrap();
        for (a, b) in x.iter().zip(decoded.iter()) {
            assert!((a - b).abs() < 1e-6, "expected {a}, decoded {b}");
        }
    }

    #[test]
    fn decode_inverts_encode_for_single_angle() {
        let enc = DataEncoder::new(EncodingStrategy::SingleAngle, 3).unwrap();
        let x = vec![0.0, 0.42, 1.0];
        let state = enc.encode_state(&x).unwrap();
        let decoded = enc.decode_state(&state).unwrap();
        for (a, b) in x.iter().zip(decoded.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn parametric_encoding_matches_fixed_gates_bit_for_bit() {
        for (strategy, dim) in [
            (EncodingStrategy::DualAngle, 4),
            (EncodingStrategy::DualAngle, 5),
            (EncodingStrategy::SingleAngle, 3),
        ] {
            let enc = DataEncoder::new(strategy, dim).unwrap();
            let x: Vec<f64> = (0..dim).map(|i| 0.08 + 0.11 * i as f64).collect();
            let mut parametric = Circuit::new(enc.num_qubits());
            let consumed = enc.append_parametric_to(&mut parametric, 0, 0);
            assert_eq!(consumed, dim);
            assert_eq!(parametric.num_parameters(), dim);
            let angles = enc.encoding_angles(&x).unwrap();
            let a = parametric.execute(&angles).unwrap();
            let b = enc.encode_state(&x).unwrap();
            assert_eq!(a, b, "{strategy:?} dim {dim}");
        }
    }

    #[test]
    fn fast_encode_matches_slow_encode_bit_for_bit() {
        for (strategy, dim) in [
            (EncodingStrategy::DualAngle, 4),
            (EncodingStrategy::DualAngle, 5),
            (EncodingStrategy::SingleAngle, 3),
        ] {
            let enc = DataEncoder::new(strategy, dim).unwrap();
            // Generic interior values plus the degenerate boundaries.
            let probes: Vec<Vec<f64>> = vec![
                (0..dim).map(|i| 0.07 + 0.11 * i as f64).collect(),
                vec![0.0; dim],
                vec![1.0; dim],
                (0..dim)
                    .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
                    .collect(),
            ];
            for x in probes {
                let slow = enc.encode_state(&x).unwrap();
                let angles = enc.encoding_angles(&x).unwrap();
                let fast = enc.encode_state_from_angles(&angles).unwrap();
                // Semantically equal everywhere (±0 signs may differ in the
                // zero region)…
                assert_eq!(fast, slow, "{strategy:?} dim {dim} x {x:?}");
                // …and bit-identical on every nonzero amplitude, which is
                // what makes downstream fidelities bit-identical.
                for (a, b) in fast.to_amplitudes().iter().zip(slow.to_amplitudes().iter()) {
                    if b.re != 0.0 {
                        assert_eq!(a.re.to_bits(), b.re.to_bits());
                    }
                    if b.im != 0.0 {
                        assert_eq!(a.im.to_bits(), b.im.to_bits());
                    }
                }
                // Fidelity against an arbitrary reference state matches bits.
                let reference = enc
                    .encode_state(&(0..dim).map(|i| 0.31 + 0.09 * i as f64).collect::<Vec<_>>())
                    .unwrap();
                assert_eq!(
                    fast.fidelity(&reference).unwrap().to_bits(),
                    slow.fidelity(&reference).unwrap().to_bits()
                );
            }
        }
    }

    #[test]
    fn encode_into_reuses_dirty_scratch_bit_for_bit() {
        for (strategy, dim) in [
            (EncodingStrategy::DualAngle, 5),
            (EncodingStrategy::SingleAngle, 3),
        ] {
            let enc = DataEncoder::new(strategy, dim).unwrap();
            let mut scratch = StateVector::zero_state(enc.num_qubits());
            // Encode three different samples through the same scratch: each
            // must match a fresh encode exactly, regardless of what the
            // previous iteration left behind.
            for seed in 0..3 {
                let x: Vec<f64> = (0..dim).map(|i| 0.05 + 0.09 * (i + seed) as f64).collect();
                let angles = enc.encoding_angles(&x).unwrap();
                enc.encode_state_from_angles_into(&angles, &mut scratch)
                    .unwrap();
                let fresh = enc.encode_state_from_angles(&angles).unwrap();
                assert_eq!(scratch, fresh, "{strategy:?} seed {seed}");
            }
            // Wrong register width and wrong angle count are rejected.
            let mut wrong = StateVector::zero_state(enc.num_qubits() + 1);
            let angles = vec![0.3; dim];
            assert!(enc
                .encode_state_from_angles_into(&angles, &mut wrong)
                .is_err());
            assert!(enc
                .encode_state_from_angles_into(&angles[..dim - 1], &mut scratch)
                .is_err());
        }
    }

    #[test]
    fn gates_from_angles_match_gates_from_features() {
        let enc = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
        let x = [0.2, 0.6, 0.9, 0.1];
        let angles = enc.encoding_angles(&x).unwrap();
        assert_eq!(
            enc.encoding_gates_from_angles(&angles, 3).unwrap(),
            enc.encoding_gates(&x, 3).unwrap()
        );
        assert!(enc.encoding_gates_from_angles(&angles[..2], 0).is_err());
    }

    #[test]
    fn encoding_angles_validate_and_match_feature_to_angle() {
        let enc = DataEncoder::new(EncodingStrategy::DualAngle, 3).unwrap();
        assert!(enc.encoding_angles(&[0.1, 1.4, 0.2]).is_err());
        let angles = enc.encoding_angles(&[0.1, 0.9, 0.5]).unwrap();
        assert_eq!(angles.len(), 3);
        for (a, &x) in angles.iter().zip([0.1, 0.9, 0.5].iter()) {
            assert_eq!(a.to_bits(), feature_to_angle(x).to_bits());
        }
    }

    #[test]
    fn decode_rejects_wrong_register_width() {
        let enc = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
        let state = StateVector::zero_state(5);
        assert!(enc.decode_state(&state).is_err());
    }

    #[test]
    fn odd_dimension_dual_encoding_leaves_last_rz_out() {
        let enc = DataEncoder::new(EncodingStrategy::DualAngle, 3).unwrap();
        let gates = enc.encoding_gates(&[0.2, 0.4, 0.9], 0).unwrap();
        assert_eq!(gates.len(), 3);
        assert!(matches!(gates[2], Gate::Ry(1, _)));
    }

    #[test]
    fn identical_points_have_identical_states() {
        let enc = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
        let a = enc.encode_state(&[0.1, 0.9, 0.4, 0.6]).unwrap();
        let b = enc.encode_state(&[0.1, 0.9, 0.4, 0.6]).unwrap();
        assert!((a.fidelity(&b).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn different_points_have_lower_fidelity() {
        let enc = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
        let a = enc.encode_state(&[0.9, 0.9, 0.9, 0.9]).unwrap();
        let b = enc.encode_state(&[0.1, 0.1, 0.1, 0.1]).unwrap();
        assert!(a.fidelity(&b).unwrap() < 0.5);
    }
}
