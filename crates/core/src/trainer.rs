//! Training loop implementing the paper's Algorithm 1.
//!
//! For every epoch ε and every sample `x` of class `c`, the trainer nudges
//! each parameter of class `c`'s state by the epoch-scaled parameter-shift
//! rule (forward/backward fidelity evaluations), converts the fidelity
//! gradient into a cross-entropy gradient and takes an SGD step. Optionally
//! (contrastive mode) samples of *other* classes are also used as negatives
//! for class `c`, pushing their fidelity down.
//!
//! The trainer records a per-epoch, per-class loss history (Fig. 6a) and can
//! evaluate train/test accuracy after every epoch (Fig. 6c).

use crate::error::QuClassiError;
use crate::gradient::{gradient_from_shifted_values, shifted_parameter_sets, ShiftSchedule};
use crate::loss::{binary_cross_entropy, binary_cross_entropy_grad};
use crate::model::QuClassiModel;
use crate::optimizer::{Optimizer, Sgd};
use crate::swap_test::FidelityEstimator;
use quclassi_sim::batch::BatchExecutor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyper-parameters of a training run.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainingConfig {
    /// Number of passes over the data (paper default: 25).
    pub epochs: usize,
    /// SGD learning rate α (paper default: 0.01).
    pub learning_rate: f64,
    /// Parameter-shift schedule (paper default: epoch-scaled π/(2√ε)).
    pub shift: ShiftSchedule,
    /// When true, samples of other classes are used as negative examples
    /// for each class state (in addition to the paper's positive-only
    /// Algorithm 1).
    pub contrastive: bool,
    /// Shuffle the sample order each epoch.
    pub shuffle: bool,
    /// Cap on the number of samples used per class per epoch (`None` = all).
    /// Mirrors the SUBSAMPLE knob in the paper's artifact.
    pub max_samples_per_class: Option<usize>,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            epochs: 25,
            learning_rate: 0.01,
            shift: ShiftSchedule::EpochScaled,
            contrastive: false,
            shuffle: true,
            max_samples_per_class: None,
        }
    }
}

impl TrainingConfig {
    /// Validates the hyper-parameters.
    pub fn validate(&self) -> Result<(), QuClassiError> {
        if self.epochs == 0 {
            return Err(QuClassiError::InvalidConfig(
                "training needs at least one epoch".to_string(),
            ));
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(QuClassiError::InvalidConfig(format!(
                "learning rate must be positive and finite, got {}",
                self.learning_rate
            )));
        }
        Ok(())
    }
}

/// Statistics recorded after each epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochStats {
    /// 1-based epoch number.
    pub epoch: usize,
    /// Mean cross-entropy loss per class (index = class label).
    pub per_class_loss: Vec<f64>,
    /// Mean loss over all classes.
    pub mean_loss: f64,
    /// Accuracy on the evaluation set, when one was supplied.
    pub eval_accuracy: Option<f64>,
}

/// The full history of a training run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrainingHistory {
    /// One record per epoch, in order.
    pub epochs: Vec<EpochStats>,
}

impl TrainingHistory {
    /// The final epoch's mean loss, if any epochs ran.
    pub fn final_loss(&self) -> Option<f64> {
        self.epochs.last().map(|e| e.mean_loss)
    }

    /// The final epoch's evaluation accuracy, if recorded.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.epochs.last().and_then(|e| e.eval_accuracy)
    }

    /// The loss series of one class across epochs (for Fig. 6a-style plots).
    pub fn class_loss_series(&self, class: usize) -> Vec<f64> {
        self.epochs
            .iter()
            .filter_map(|e| e.per_class_loss.get(class).copied())
            .collect()
    }

    /// The accuracy series across epochs (for Fig. 6c-style plots).
    pub fn accuracy_series(&self) -> Vec<f64> {
        self.epochs.iter().filter_map(|e| e.eval_accuracy).collect()
    }
}

/// An optional held-out set evaluated after every epoch.
#[derive(Clone, Copy, Debug)]
pub struct EvalSet<'a> {
    /// Feature rows.
    pub features: &'a [Vec<f64>],
    /// Labels aligned with `features`.
    pub labels: &'a [usize],
}

/// The QuClassi trainer (Algorithm 1).
///
/// ```
/// use quclassi::prelude::*;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let mut model =
///     QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(2, 2), &mut rng).unwrap();
/// let features = vec![vec![0.1, 0.2], vec![0.9, 0.8], vec![0.15, 0.1], vec![0.85, 0.9]];
/// let labels = vec![0, 1, 0, 1];
///
/// let trainer = Trainer::new(
///     TrainingConfig { epochs: 5, learning_rate: 0.1, ..Default::default() },
///     FidelityEstimator::analytic(),
/// );
/// let history = trainer.fit(&mut model, &features, &labels, &mut rng).unwrap();
/// assert_eq!(history.epochs.len(), 5);
/// // Loss is finite and recorded per class.
/// assert!(history.final_loss().unwrap().is_finite());
/// ```
#[derive(Clone, Debug)]
pub struct Trainer {
    /// Training hyper-parameters.
    pub config: TrainingConfig,
    /// Fidelity estimation backend (analytic, ideal SWAP test, noisy, …).
    pub estimator: FidelityEstimator,
    /// Batch executor every per-class/per-shift fidelity evaluation is
    /// dispatched through. Defaults to single-threaded, which is exactly a
    /// sequential loop; any thread count produces bit-identical training.
    batch: BatchExecutor,
}

impl Trainer {
    /// Creates a single-threaded trainer.
    pub fn new(config: TrainingConfig, estimator: FidelityEstimator) -> Self {
        Trainer {
            config,
            estimator,
            batch: BatchExecutor::single_threaded(0),
        }
    }

    /// A trainer with default hyper-parameters and the analytic estimator.
    pub fn default_analytic() -> Self {
        Trainer::new(TrainingConfig::default(), FidelityEstimator::analytic())
    }

    /// Replaces the batch executor (e.g. to fan the `2·P + 1` fidelity
    /// evaluations of every training step out over several threads). The
    /// thread count never changes the result: per-job RNG streams make
    /// training bit-identical for any worker count.
    pub fn with_batch_executor(mut self, batch: BatchExecutor) -> Self {
        self.batch = batch;
        self
    }

    /// The batch executor training dispatches through.
    pub fn batch_executor(&self) -> &BatchExecutor {
        &self.batch
    }

    fn validate_dataset(
        model: &QuClassiModel,
        features: &[Vec<f64>],
        labels: &[usize],
    ) -> Result<(), QuClassiError> {
        if features.len() != labels.len() {
            return Err(QuClassiError::InvalidData(format!(
                "{} feature rows but {} labels",
                features.len(),
                labels.len()
            )));
        }
        if features.is_empty() {
            return Err(QuClassiError::InvalidData(
                "the training set is empty".to_string(),
            ));
        }
        for &y in labels {
            if y >= model.num_classes() {
                return Err(QuClassiError::InvalidLabel {
                    label: y,
                    num_classes: model.num_classes(),
                });
            }
        }
        for x in features {
            model.encoder().validate(x)?;
        }
        Ok(())
    }

    /// Trains the model in place and returns the per-epoch history.
    pub fn fit<R: Rng + ?Sized>(
        &self,
        model: &mut QuClassiModel,
        features: &[Vec<f64>],
        labels: &[usize],
        rng: &mut R,
    ) -> Result<TrainingHistory, QuClassiError> {
        self.fit_with_eval(model, features, labels, None, rng)
    }

    /// Continues training an already-initialised (and possibly already
    /// trained) model on a fresh window of samples for `epochs` passes,
    /// overriding `self.config.epochs` for this call only.
    ///
    /// This is the online-learning entry point: [`Trainer::fit`] always
    /// starts from the model's *current* parameters, so repeated
    /// `fit_incremental` calls on successive stream windows implement
    /// continuous training without any extra state.
    pub fn fit_incremental<R: Rng + ?Sized>(
        &self,
        model: &mut QuClassiModel,
        features: &[Vec<f64>],
        labels: &[usize],
        epochs: usize,
        rng: &mut R,
    ) -> Result<TrainingHistory, QuClassiError> {
        let mut pass = self.clone();
        pass.config.epochs = epochs;
        pass.fit(model, features, labels, rng)
    }

    /// Trains the model and evaluates accuracy on `eval` after every epoch.
    pub fn fit_with_eval<R: Rng + ?Sized>(
        &self,
        model: &mut QuClassiModel,
        features: &[Vec<f64>],
        labels: &[usize],
        eval: Option<EvalSet<'_>>,
        rng: &mut R,
    ) -> Result<TrainingHistory, QuClassiError> {
        self.config.validate()?;
        Self::validate_dataset(model, features, labels)?;

        let num_classes = model.num_classes();
        // Group sample indices by class once.
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
        for (i, &y) in labels.iter().enumerate() {
            by_class[y].push(i);
        }

        let mut optimizer = Sgd::new(self.config.learning_rate);
        let mut history = TrainingHistory::default();

        for epoch in 1..=self.config.epochs {
            let shift = self.config.shift.shift(epoch);
            let mut per_class_loss = vec![0.0; num_classes];
            let mut per_class_count = vec![0usize; num_classes];

            for class in 0..num_classes {
                // Select (and possibly subsample / shuffle) this class's samples.
                let mut indices = by_class[class].clone();
                if self.config.shuffle {
                    indices.shuffle(rng);
                }
                if let Some(cap) = self.config.max_samples_per_class {
                    indices.truncate(cap);
                }

                for &idx in &indices {
                    let x = &features[idx];
                    let loss =
                        self.update_class(model, class, x, 1.0, shift, &mut optimizer, rng)?;
                    per_class_loss[class] += loss;
                    per_class_count[class] += 1;

                    if self.config.contrastive {
                        // Use this sample as a negative for every other class.
                        for other in 0..num_classes {
                            if other != class {
                                self.update_class(
                                    model,
                                    other,
                                    x,
                                    0.0,
                                    shift,
                                    &mut optimizer,
                                    rng,
                                )?;
                            }
                        }
                    }
                }
            }

            let per_class_loss: Vec<f64> = per_class_loss
                .iter()
                .zip(per_class_count.iter())
                .map(|(&l, &c)| if c > 0 { l / c as f64 } else { 0.0 })
                .collect();
            let populated = per_class_count.iter().filter(|&&c| c > 0).count().max(1);
            let mean_loss = per_class_loss.iter().sum::<f64>() / populated as f64;

            let eval_accuracy = match eval {
                Some(set) => {
                    Some(model.evaluate_accuracy(set.features, set.labels, &self.estimator, rng)?)
                }
                None => None,
            };

            history.epochs.push(EpochStats {
                epoch,
                per_class_loss,
                mean_loss,
                eval_accuracy,
            });
        }
        Ok(history)
    }

    /// One stochastic update of a single class state on a single sample.
    /// Returns the (pre-update) cross-entropy loss.
    #[allow(clippy::too_many_arguments)]
    fn update_class<R: Rng + ?Sized>(
        &self,
        model: &mut QuClassiModel,
        class: usize,
        x: &[f64],
        target: f64,
        shift: f64,
        optimizer: &mut Sgd,
        rng: &mut R,
    ) -> Result<f64, QuClassiError> {
        let stack = model.stack().clone();
        let encoder = model.encoder().clone();
        let params = model.class_params(class)?.to_vec();

        // One batched dispatch evaluates the current fidelity and every
        // parameter-shift neighbour: the circuit is built (and fused) once
        // and the 2·P + 1 evaluations fan out over the batch executor.
        // Estimator noise (shots / hardware) flows through per-job RNG
        // streams exactly as it would on a real device, and only stochastic
        // estimators draw from the trainer RNG at all — deterministic
        // training is therefore bit-identical to the sequential path.
        let mut sets = Vec::with_capacity(1 + 2 * params.len());
        sets.push(params.clone());
        sets.extend(shifted_parameter_sets(&params, shift));
        let base_seed = if self.estimator.is_stochastic() {
            rng.gen::<u64>()
        } else {
            0
        };
        let values =
            self.estimator
                .estimate_many(&stack, &sets, &encoder, x, &self.batch, base_seed)?;

        let fidelity = values[0];
        let loss = binary_cross_entropy(fidelity, target);
        let dloss_dfid = binary_cross_entropy_grad(fidelity, target);
        let fidelity_grad = gradient_from_shifted_values(&values[1..]);

        // Chain rule: ∂loss/∂θ = ∂loss/∂F · ∂F/∂θ, then SGD.
        let grads: Vec<f64> = fidelity_grad.iter().map(|g| dloss_dfid * g).collect();
        let mut new_params = params;
        optimizer.step(&mut new_params, &grads);
        model.set_class_params(class, new_params)?;
        Ok(loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QuClassiConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A tiny, cleanly separable 2-class dataset in 4 dimensions.
    fn toy_binary() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            let jitter = 0.02 * (i % 5) as f64;
            xs.push(vec![0.1 + jitter, 0.15, 0.1, 0.2 - jitter]);
            ys.push(0);
            xs.push(vec![0.9 - jitter, 0.85, 0.9, 0.8 + jitter]);
            ys.push(1);
        }
        (xs, ys)
    }

    #[test]
    fn config_validation() {
        assert!(TrainingConfig::default().validate().is_ok());
        assert!(TrainingConfig {
            epochs: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TrainingConfig {
            learning_rate: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TrainingConfig {
            learning_rate: f64::NAN,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = TrainingConfig::default();
        assert_eq!(cfg.epochs, 25);
        assert!((cfg.learning_rate - 0.01).abs() < 1e-12);
        assert_eq!(cfg.shift, ShiftSchedule::EpochScaled);
        assert!(!cfg.contrastive);
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let (xs, ys) = toy_binary();
        let mut rng = StdRng::seed_from_u64(7);
        let mut model =
            QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
        let trainer = Trainer::new(
            TrainingConfig {
                epochs: 12,
                learning_rate: 0.1,
                ..Default::default()
            },
            FidelityEstimator::analytic(),
        );
        let history = trainer
            .fit_with_eval(
                &mut model,
                &xs,
                &ys,
                Some(EvalSet {
                    features: &xs,
                    labels: &ys,
                }),
                &mut rng,
            )
            .unwrap();
        assert_eq!(history.epochs.len(), 12);
        let first = history.epochs.first().unwrap().mean_loss;
        let last = history.final_loss().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        let acc = history.final_accuracy().unwrap();
        assert!(acc >= 0.95, "accuracy too low: {acc}");
    }

    #[test]
    fn contrastive_training_also_converges() {
        let (xs, ys) = toy_binary();
        let mut rng = StdRng::seed_from_u64(11);
        let mut model =
            QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
        let trainer = Trainer::new(
            TrainingConfig {
                epochs: 8,
                learning_rate: 0.1,
                contrastive: true,
                ..Default::default()
            },
            FidelityEstimator::analytic(),
        );
        let history = trainer.fit(&mut model, &xs, &ys, &mut rng).unwrap();
        assert_eq!(history.epochs.len(), 8);
        let acc = model
            .evaluate_accuracy(&xs, &ys, &FidelityEstimator::analytic(), &mut rng)
            .unwrap();
        assert!(acc >= 0.95, "accuracy too low: {acc}");
    }

    #[test]
    fn history_series_accessors() {
        let (xs, ys) = toy_binary();
        let mut rng = StdRng::seed_from_u64(3);
        let mut model =
            QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
        let trainer = Trainer::new(
            TrainingConfig {
                epochs: 3,
                learning_rate: 0.05,
                ..Default::default()
            },
            FidelityEstimator::analytic(),
        );
        let history = trainer
            .fit_with_eval(
                &mut model,
                &xs,
                &ys,
                Some(EvalSet {
                    features: &xs,
                    labels: &ys,
                }),
                &mut rng,
            )
            .unwrap();
        assert_eq!(history.class_loss_series(0).len(), 3);
        assert_eq!(history.class_loss_series(1).len(), 3);
        assert_eq!(history.accuracy_series().len(), 3);
        assert!(history.class_loss_series(9).is_empty());
    }

    #[test]
    fn dataset_validation_errors() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model =
            QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
        let trainer = Trainer::default_analytic();
        // Mismatched lengths.
        assert!(trainer
            .fit(&mut model, &[vec![0.1; 4]], &[0, 1], &mut rng)
            .is_err());
        // Empty set.
        assert!(trainer.fit(&mut model, &[], &[], &mut rng).is_err());
        // Label out of range.
        assert!(trainer
            .fit(&mut model, &[vec![0.1; 4]], &[7], &mut rng)
            .is_err());
        // Un-normalised feature.
        assert!(trainer
            .fit(&mut model, &[vec![2.0, 0.1, 0.1, 0.1]], &[0], &mut rng)
            .is_err());
    }

    #[test]
    fn subsampling_caps_per_class_work() {
        let (xs, ys) = toy_binary();
        let mut rng = StdRng::seed_from_u64(5);
        let mut model =
            QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
        let trainer = Trainer::new(
            TrainingConfig {
                epochs: 2,
                max_samples_per_class: Some(2),
                ..Default::default()
            },
            FidelityEstimator::analytic(),
        );
        let history = trainer.fit(&mut model, &xs, &ys, &mut rng).unwrap();
        assert_eq!(history.epochs.len(), 2);
    }

    #[test]
    fn fit_incremental_matches_fit_and_continues() {
        let (xs, ys) = toy_binary();
        let base_trainer = Trainer::new(
            TrainingConfig {
                epochs: 7, // deliberately different from the incremental pass
                learning_rate: 0.05,
                ..Default::default()
            },
            FidelityEstimator::analytic(),
        );
        let params = |m: &QuClassiModel| -> Vec<Vec<u64>> {
            (0..2)
                .map(|c| {
                    m.class_params(c)
                        .unwrap()
                        .iter()
                        .map(|p| p.to_bits())
                        .collect()
                })
                .collect()
        };

        // One incremental pass with `epochs` overridden is bit-identical to a
        // plain fit configured with those epochs.
        let mut rng = StdRng::seed_from_u64(11);
        let mut a =
            QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
        let mut b = a.clone();
        let mut rng_a = StdRng::seed_from_u64(13);
        let mut rng_b = StdRng::seed_from_u64(13);
        let history = base_trainer
            .fit_incremental(&mut a, &xs, &ys, 2, &mut rng_a)
            .unwrap();
        assert_eq!(history.epochs.len(), 2);
        let mut two_epoch = base_trainer.clone();
        two_epoch.config.epochs = 2;
        two_epoch.fit(&mut b, &xs, &ys, &mut rng_b).unwrap();
        assert_eq!(params(&a), params(&b));
        // The override is per-call: the trainer's own config is untouched.
        assert_eq!(base_trainer.config.epochs, 7);

        // A second incremental window continues from the current parameters.
        let before = params(&a);
        base_trainer
            .fit_incremental(&mut a, &xs, &ys, 1, &mut rng_a)
            .unwrap();
        assert_ne!(params(&a), before, "second window should keep training");
    }

    #[test]
    fn training_is_bit_identical_for_any_thread_count() {
        // The batch executor must never change what is learned: the same
        // seed through 1, 2 and 8 workers yields the same parameters to the
        // last bit, for a deterministic and a stochastic estimator alike.
        let (xs, ys) = toy_binary();
        let estimators = [
            FidelityEstimator::analytic(),
            FidelityEstimator::swap_test(
                quclassi_sim::executor::Executor::ideal().with_shots(Some(256)),
            ),
        ];
        for estimator in estimators {
            let run = |threads: usize| -> Vec<Vec<u64>> {
                let mut rng = StdRng::seed_from_u64(29);
                let mut model =
                    QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng)
                        .unwrap();
                let trainer = Trainer::new(
                    TrainingConfig {
                        epochs: 2,
                        learning_rate: 0.05,
                        ..Default::default()
                    },
                    estimator.clone(),
                )
                .with_batch_executor(BatchExecutor::new(threads, 0));
                trainer.fit(&mut model, &xs, &ys, &mut rng).unwrap();
                (0..2)
                    .map(|c| {
                        model
                            .class_params(c)
                            .unwrap()
                            .iter()
                            .map(|p| p.to_bits())
                            .collect()
                    })
                    .collect()
            };
            let one = run(1);
            assert_eq!(one, run(2), "2 threads diverged");
            assert_eq!(one, run(8), "8 threads diverged");
        }
    }

    #[test]
    fn multiclass_training_runs_and_improves() {
        // Three well-separated clusters in 2D.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..8 {
            let j = 0.01 * i as f64;
            xs.push(vec![0.1 + j, 0.1]);
            ys.push(0);
            xs.push(vec![0.5, 0.9 - j]);
            ys.push(1);
            xs.push(vec![0.9 - j, 0.1 + j]);
            ys.push(2);
        }
        let mut rng = StdRng::seed_from_u64(21);
        let mut model =
            QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(2, 3), &mut rng).unwrap();
        let trainer = Trainer::new(
            TrainingConfig {
                epochs: 15,
                learning_rate: 0.1,
                contrastive: true,
                ..Default::default()
            },
            FidelityEstimator::analytic(),
        );
        trainer.fit(&mut model, &xs, &ys, &mut rng).unwrap();
        let acc = model
            .evaluate_accuracy(&xs, &ys, &FidelityEstimator::analytic(), &mut rng)
            .unwrap();
        assert!(acc > 0.7, "multiclass accuracy too low: {acc}");
    }
}
