//! Classical parameter-update rules.
//!
//! The paper trains QuClassi with plain stochastic gradient descent (the
//! same optimiser it configures for the classical baselines). Momentum and
//! Adam are provided as well because they are standard ablations and the
//! classical-baseline crate shares this interface.

/// A first-order optimiser that updates a parameter vector in place.
pub trait Optimizer {
    /// Applies one update step: `params ← params − direction(grads)`.
    fn step(&mut self, params: &mut [f64], grads: &[f64]);

    /// Resets any internal state (velocity, moment estimates).
    fn reset(&mut self);

    /// The configured learning rate.
    fn learning_rate(&self) -> f64;
}

/// Plain stochastic gradient descent: `θ ← θ − α·g`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sgd {
    /// Learning rate α.
    pub learning_rate: f64,
}

impl Sgd {
    /// Creates an SGD optimiser with the paper's default rate (α = 0.01).
    pub fn new(learning_rate: f64) -> Self {
        Sgd { learning_rate }
    }
}

impl Default for Sgd {
    fn default() -> Self {
        Sgd::new(0.01)
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "parameter/gradient length mismatch"
        );
        for (p, g) in params.iter_mut().zip(grads.iter()) {
            *p -= self.learning_rate * g;
        }
    }

    fn reset(&mut self) {}

    fn learning_rate(&self) -> f64 {
        self.learning_rate
    }
}

/// SGD with classical momentum.
#[derive(Clone, Debug, PartialEq)]
pub struct Momentum {
    /// Learning rate α.
    pub learning_rate: f64,
    /// Momentum coefficient β ∈ [0, 1).
    pub beta: f64,
    velocity: Vec<f64>,
}

impl Momentum {
    /// Creates a momentum optimiser.
    pub fn new(learning_rate: f64, beta: f64) -> Self {
        Momentum {
            learning_rate,
            beta,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "parameter/gradient length mismatch"
        );
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, g), v) in params
            .iter_mut()
            .zip(grads.iter())
            .zip(self.velocity.iter_mut())
        {
            *v = self.beta * *v + *g;
            *p -= self.learning_rate * *v;
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }

    fn learning_rate(&self) -> f64 {
        self.learning_rate
    }
}

/// The Adam optimiser (Kingma & Ba, 2015).
#[derive(Clone, Debug, PartialEq)]
pub struct Adam {
    /// Learning rate α.
    pub learning_rate: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Numerical stabiliser ε.
    pub epsilon: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: usize,
}

impl Adam {
    /// Creates an Adam optimiser with the usual default moments.
    pub fn new(learning_rate: f64) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "parameter/gradient length mismatch"
        );
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let t = self.t as f64;
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.m[i] / (1.0 - self.beta1.powf(t));
            let v_hat = self.v[i] / (1.0 - self.beta2.powf(t));
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }

    fn learning_rate(&self) -> f64 {
        self.learning_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)² with gradient 2(x - 3).
    fn minimise<O: Optimizer>(mut opt: O, steps: usize) -> f64 {
        let mut params = vec![-5.0];
        for _ in 0..steps {
            let grads = vec![2.0 * (params[0] - 3.0)];
            opt.step(&mut params, &grads);
        }
        params[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimise(Sgd::new(0.1), 200);
        assert!((x - 3.0).abs() < 1e-3, "converged to {x}");
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let x = minimise(Momentum::new(0.05, 0.9), 300);
        assert!((x - 3.0).abs() < 1e-2, "converged to {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = minimise(Adam::new(0.2), 400);
        assert!((x - 3.0).abs() < 1e-2, "converged to {x}");
    }

    #[test]
    fn sgd_single_step_matches_formula() {
        let mut opt = Sgd::new(0.5);
        let mut params = vec![1.0, 2.0];
        opt.step(&mut params, &[0.2, -0.4]);
        assert!((params[0] - 0.9).abs() < 1e-12);
        assert!((params[1] - 2.2).abs() < 1e-12);
        assert_eq!(opt.learning_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Sgd::default();
        let mut params = vec![1.0];
        opt.step(&mut params, &[0.1, 0.2]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = Momentum::new(0.1, 0.9);
        let mut params = vec![0.0];
        opt.step(&mut params, &[1.0]);
        let after_one = params[0];
        opt.step(&mut params, &[1.0]);
        let second_delta = params[0] - after_one;
        // Second step is larger in magnitude because velocity accumulates.
        assert!(second_delta.abs() > after_one.abs());
        opt.reset();
        let mut params2 = vec![0.0];
        opt.step(&mut params2, &[1.0]);
        assert!((params2[0] - after_one).abs() < 1e-12);
    }

    #[test]
    fn adam_reset_clears_state() {
        let mut opt = Adam::new(0.1);
        let mut params = vec![1.0];
        opt.step(&mut params, &[0.5]);
        opt.reset();
        let mut params2 = vec![1.0];
        opt.step(&mut params2, &[0.5]);
        assert!((params[0] - params2[0]).abs() < 1e-12);
    }

    #[test]
    fn default_sgd_uses_paper_learning_rate() {
        assert_eq!(Sgd::default().learning_rate, 0.01);
    }
}
