//! Classification metrics used by the evaluation harness.

use crate::error::QuClassiError;

/// Fraction of predictions equal to the true labels.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> Result<f64, QuClassiError> {
    if predictions.len() != labels.len() {
        return Err(QuClassiError::InvalidData(format!(
            "{} predictions but {} labels",
            predictions.len(),
            labels.len()
        )));
    }
    if predictions.is_empty() {
        return Err(QuClassiError::InvalidData(
            "cannot compute accuracy of an empty prediction set".to_string(),
        ));
    }
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, y)| p == y)
        .count();
    Ok(correct as f64 / predictions.len() as f64)
}

/// A row-major confusion matrix: `matrix[true][predicted]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    num_classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Builds the confusion matrix for `num_classes` classes.
    pub fn new(
        predictions: &[usize],
        labels: &[usize],
        num_classes: usize,
    ) -> Result<Self, QuClassiError> {
        if predictions.len() != labels.len() {
            return Err(QuClassiError::InvalidData(format!(
                "{} predictions but {} labels",
                predictions.len(),
                labels.len()
            )));
        }
        let mut counts = vec![0usize; num_classes * num_classes];
        for (&p, &y) in predictions.iter().zip(labels.iter()) {
            if p >= num_classes || y >= num_classes {
                return Err(QuClassiError::InvalidLabel {
                    label: p.max(y),
                    num_classes,
                });
            }
            counts[y * num_classes + p] += 1;
        }
        Ok(ConfusionMatrix {
            num_classes,
            counts,
        })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Count of samples with true class `t` predicted as class `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t * self.num_classes + p]
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy (trace / total).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.num_classes).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Precision of a class: TP / (TP + FP). Returns 0 when the class is
    /// never predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.count(class, class);
        let predicted: usize = (0..self.num_classes).map(|t| self.count(t, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of a class: TP / (TP + FN). Returns 0 when the class has no
    /// true samples.
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.count(class, class);
        let actual: usize = (0..self.num_classes).map(|p| self.count(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 score of a class (harmonic mean of precision and recall).
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1 across classes.
    pub fn macro_f1(&self) -> f64 {
        if self.num_classes == 0 {
            return 0.0;
        }
        (0..self.num_classes).map(|c| self.f1(c)).sum::<f64>() / self.num_classes as f64
    }

    /// A plain-text table rendering of the matrix.
    pub fn to_text(&self) -> String {
        let mut out = String::from("true\\pred");
        for p in 0..self.num_classes {
            out.push_str(&format!("\t{p}"));
        }
        out.push('\n');
        for t in 0..self.num_classes {
            out.push_str(&format!("{t}"));
            for p in 0..self.num_classes {
                out.push_str(&format!("\t{}", self.count(t, p)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic_and_errors() {
        assert!((accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]).unwrap() - 0.75).abs() < 1e-12);
        assert!(accuracy(&[0], &[0, 1]).is_err());
        assert!(accuracy(&[], &[]).is_err());
    }

    #[test]
    fn confusion_matrix_counts() {
        let preds = vec![0, 1, 1, 2, 2, 2];
        let labels = vec![0, 1, 2, 2, 2, 0];
        let cm = ConfusionMatrix::new(&preds, &labels, 3).unwrap();
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(2, 2), 2);
        assert_eq!(cm.count(2, 1), 1);
        assert_eq!(cm.count(0, 2), 1);
        assert_eq!(cm.total(), 6);
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1() {
        // Binary case with known values.
        let preds = vec![1, 1, 1, 0, 0, 1];
        let labels = vec![1, 1, 0, 0, 1, 1];
        let cm = ConfusionMatrix::new(&preds, &labels, 2).unwrap();
        // Class 1: TP=3, FP=1, FN=1.
        assert!((cm.precision(1) - 0.75).abs() < 1e-12);
        assert!((cm.recall(1) - 0.75).abs() < 1e-12);
        assert!((cm.f1(1) - 0.75).abs() < 1e-12);
        assert!(cm.macro_f1() > 0.0);
    }

    #[test]
    fn degenerate_classes_do_not_divide_by_zero() {
        let preds = vec![0, 0];
        let labels = vec![0, 0];
        let cm = ConfusionMatrix::new(&preds, &labels, 3).unwrap();
        assert_eq!(cm.precision(2), 0.0);
        assert_eq!(cm.recall(2), 0.0);
        assert_eq!(cm.f1(2), 0.0);
    }

    #[test]
    fn out_of_range_labels_rejected() {
        assert!(ConfusionMatrix::new(&[0, 5], &[0, 1], 3).is_err());
        assert!(ConfusionMatrix::new(&[0], &[0, 1], 3).is_err());
    }

    #[test]
    fn text_rendering_contains_counts() {
        let cm = ConfusionMatrix::new(&[0, 1], &[0, 1], 2).unwrap();
        let text = cm.to_text();
        assert!(text.contains("true\\pred"));
        assert!(text.lines().count() >= 3);
    }
}
