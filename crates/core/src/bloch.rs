//! Bloch-sphere inspection of learned states (paper Fig. 8).
//!
//! The paper visualises training by plotting each learned-state qubit on the
//! Bloch sphere across epochs, showing the state rotating towards the data.
//! This module extracts the per-qubit Bloch vectors and renders a small
//! text-based visualisation that the `fig8_bloch_evolution` experiment
//! prints.

use crate::error::QuClassiError;
use quclassi_sim::state::StateVector;

/// The Bloch-sphere coordinates of one qubit of a (possibly entangled) state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlochPoint {
    /// ⟨X⟩ component.
    pub x: f64,
    /// ⟨Y⟩ component.
    pub y: f64,
    /// ⟨Z⟩ component.
    pub z: f64,
}

impl BlochPoint {
    /// Length of the Bloch vector (1 for pure single-qubit marginals,
    /// < 1 when the qubit is entangled with the rest of the register).
    pub fn radius(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Polar angle θ ∈ [0, π] measured from |0⟩ (the +Z pole).
    pub fn polar_angle(&self) -> f64 {
        let r = self.radius();
        if r < 1e-12 {
            0.0
        } else {
            (self.z / r).clamp(-1.0, 1.0).acos()
        }
    }

    /// Azimuthal angle φ ∈ (−π, π] in the X–Y plane.
    pub fn azimuthal_angle(&self) -> f64 {
        self.y.atan2(self.x)
    }
}

/// Extracts the Bloch vector of every qubit of a state.
pub fn bloch_points(state: &StateVector) -> Result<Vec<BlochPoint>, QuClassiError> {
    (0..state.num_qubits())
        .map(|q| {
            let [x, y, z] = state.bloch_vector(q)?;
            Ok(BlochPoint { x, y, z })
        })
        .collect()
}

/// Angular distance (in radians) between two Bloch vectors; 0 when aligned,
/// π when anti-podal. Used to quantify how far the learned state moved
/// towards the data state between epochs.
pub fn angular_distance(a: &BlochPoint, b: &BlochPoint) -> f64 {
    let ra = a.radius();
    let rb = b.radius();
    if ra < 1e-12 || rb < 1e-12 {
        return 0.0;
    }
    let dot = (a.x * b.x + a.y * b.y + a.z * b.z) / (ra * rb);
    dot.clamp(-1.0, 1.0).acos()
}

/// Renders a one-line-per-qubit description of the Bloch vectors, suitable
/// for terminal output of the Fig. 8 experiment.
pub fn render_text(points: &[BlochPoint]) -> String {
    let mut out = String::new();
    for (q, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "qubit {q}: x={:+.4} y={:+.4} z={:+.4} | θ={:.3} rad φ={:+.3} rad r={:.3}\n",
            p.x,
            p.y,
            p.z,
            p.polar_angle(),
            p.azimuthal_angle(),
            p.radius()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use quclassi_sim::gate::Gate;

    #[test]
    fn zero_state_points_at_north_pole() {
        let sv = StateVector::zero_state(1);
        let p = bloch_points(&sv).unwrap();
        assert_eq!(p.len(), 1);
        assert!((p[0].z - 1.0).abs() < 1e-12);
        assert!(p[0].polar_angle() < 1e-9);
        assert!((p[0].radius() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn excited_state_points_at_south_pole() {
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::X(0)).unwrap();
        let p = bloch_points(&sv).unwrap()[0];
        assert!((p.z + 1.0).abs() < 1e-12);
        assert!((p.polar_angle() - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn plus_state_lies_on_equator() {
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::H(0)).unwrap();
        let p = bloch_points(&sv).unwrap()[0];
        assert!((p.x - 1.0).abs() < 1e-12);
        assert!((p.polar_angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        assert!(p.azimuthal_angle().abs() < 1e-9);
    }

    #[test]
    fn entangled_qubits_have_short_bloch_vectors() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::H(0)).unwrap();
        sv.apply_gate(&Gate::Cnot {
            control: 0,
            target: 1,
        })
        .unwrap();
        for p in bloch_points(&sv).unwrap() {
            assert!(
                p.radius() < 1e-9,
                "Bell-state marginals are maximally mixed"
            );
        }
    }

    #[test]
    fn angular_distance_properties() {
        let north = BlochPoint {
            x: 0.0,
            y: 0.0,
            z: 1.0,
        };
        let south = BlochPoint {
            x: 0.0,
            y: 0.0,
            z: -1.0,
        };
        let east = BlochPoint {
            x: 1.0,
            y: 0.0,
            z: 0.0,
        };
        assert!(angular_distance(&north, &north) < 1e-12);
        assert!((angular_distance(&north, &south) - std::f64::consts::PI).abs() < 1e-12);
        assert!((angular_distance(&north, &east) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        // Degenerate zero vector.
        let zero = BlochPoint {
            x: 0.0,
            y: 0.0,
            z: 0.0,
        };
        assert_eq!(angular_distance(&zero, &north), 0.0);
    }

    #[test]
    fn render_text_lists_every_qubit() {
        let sv = StateVector::zero_state(3);
        let text = render_text(&bloch_points(&sv).unwrap());
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("qubit 0:"));
        assert!(text.contains("qubit 2:"));
    }
}
