//! Quantum gradient estimation (paper Section 4.4, Eq. 15).
//!
//! QuClassi trains its circuit parameters with a *modified parameter-shift
//! rule*: the usual two-point rule
//!
//! ```text
//! ∂f/∂θ ≈ ½ · ( f(θ + s) − f(θ − s) )
//! ```
//!
//! but with a shift `s = π / (2·√ε)` that **shrinks with the epoch number
//! ε**, narrowing the search breadth of the cost landscape as training
//! progresses (the paper argues this stabilises convergence to a local
//! minimum). A fixed-shift variant is provided for the ablation benches.

use std::f64::consts::FRAC_PI_2;

/// The shift schedule used by the parameter-shift rule.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum ShiftSchedule {
    /// The paper's schedule: `π / (2·√ε)` where `ε` is the 1-based epoch.
    #[default]
    EpochScaled,
    /// A constant shift (the textbook parameter-shift rule uses `π/2`).
    Fixed(f64),
}

impl ShiftSchedule {
    /// The shift to use during the given 1-based epoch.
    pub fn shift(&self, epoch: usize) -> f64 {
        match *self {
            ShiftSchedule::EpochScaled => FRAC_PI_2 / (epoch.max(1) as f64).sqrt(),
            ShiftSchedule::Fixed(s) => s,
        }
    }
}

/// Estimates the gradient of `f` at `params` with the two-point shift rule,
/// shifting one coordinate at a time.
///
/// `f` is evaluated `2·params.len()` times. The returned vector has one entry
/// per parameter: `½·(f(θ + s·e_i) − f(θ − s·e_i))`.
pub fn parameter_shift_gradient<F>(mut f: F, params: &[f64], shift: f64) -> Vec<f64>
where
    F: FnMut(&[f64]) -> f64,
{
    let mut grad = Vec::with_capacity(params.len());
    let mut work = params.to_vec();
    for i in 0..params.len() {
        let original = work[i];
        work[i] = original + shift;
        let forward = f(&work);
        work[i] = original - shift;
        let backward = f(&work);
        work[i] = original;
        grad.push(0.5 * (forward - backward));
    }
    grad
}

/// Builds the `2·P` shifted parameter vectors the two-point rule evaluates,
/// in the order `[θ+s·e_0, θ−s·e_0, θ+s·e_1, θ−s·e_1, …]`.
///
/// Together with [`gradient_from_shifted_values`] this splits
/// [`parameter_shift_gradient`] into a *plan* and a *fold*, so the shifted
/// evaluations — by far the dominant cost of a training step — can be fanned
/// out over a batch executor instead of being forced through a sequential
/// closure.
pub fn shifted_parameter_sets(params: &[f64], shift: f64) -> Vec<Vec<f64>> {
    let mut sets = Vec::with_capacity(2 * params.len());
    for i in 0..params.len() {
        let mut forward = params.to_vec();
        forward[i] += shift;
        sets.push(forward);
        let mut backward = params.to_vec();
        backward[i] -= shift;
        sets.push(backward);
    }
    sets
}

/// Folds objective values evaluated at [`shifted_parameter_sets`] back into
/// the two-point gradient: entry `i` is `½·(f(θ+s·e_i) − f(θ−s·e_i))`.
///
/// # Panics
/// Panics if `values` has odd length (it must pair forward/backward
/// evaluations).
pub fn gradient_from_shifted_values(values: &[f64]) -> Vec<f64> {
    assert!(
        values.len().is_multiple_of(2),
        "shifted values must come in forward/backward pairs, got {}",
        values.len()
    );
    values
        .chunks_exact(2)
        .map(|pair| 0.5 * (pair[0] - pair[1]))
        .collect()
}

/// Central finite-difference gradient, used in tests to validate the shift
/// rule and available for debugging.
pub fn finite_difference_gradient<F>(mut f: F, params: &[f64], eps: f64) -> Vec<f64>
where
    F: FnMut(&[f64]) -> f64,
{
    let mut grad = Vec::with_capacity(params.len());
    let mut work = params.to_vec();
    for i in 0..params.len() {
        let original = work[i];
        work[i] = original + eps;
        let forward = f(&work);
        work[i] = original - eps;
        let backward = f(&work);
        work[i] = original;
        grad.push((forward - backward) / (2.0 * eps));
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{DataEncoder, EncodingStrategy};
    use crate::layers::LayerStack;
    use crate::swap_test::FidelityEstimator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn epoch_scaled_shift_shrinks() {
        let s = ShiftSchedule::EpochScaled;
        assert!((s.shift(1) - FRAC_PI_2).abs() < 1e-12);
        assert!((s.shift(4) - FRAC_PI_2 / 2.0).abs() < 1e-12);
        assert!((s.shift(25) - FRAC_PI_2 / 5.0).abs() < 1e-12);
        assert!(s.shift(9) < s.shift(4));
        // Epoch 0 is treated as epoch 1 (no division by zero).
        assert!((s.shift(0) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn fixed_shift_is_constant() {
        let s = ShiftSchedule::Fixed(0.3);
        assert_eq!(s.shift(1), 0.3);
        assert_eq!(s.shift(100), 0.3);
        assert_eq!(ShiftSchedule::default(), ShiftSchedule::EpochScaled);
    }

    #[test]
    fn exact_parameter_shift_for_sinusoidal_objective() {
        // For f(θ) = sin(θ), the π/2-shift rule is exact: ½(sin(θ+π/2) − sin(θ−π/2)) = cos(θ).
        let f = |p: &[f64]| p[0].sin();
        for &theta in &[0.0, 0.5, 1.3, -2.0] {
            let g = parameter_shift_gradient(f, &[theta], FRAC_PI_2);
            assert!((g[0] - theta.cos()).abs() < 1e-12);
        }
    }

    #[test]
    fn small_shift_approaches_true_derivative() {
        let f = |p: &[f64]| (2.0 * p[0]).cos() + p[1] * p[1];
        let params = [0.7, -0.4];
        let g_small = parameter_shift_gradient(f, &params, 1e-5);
        // d/dθ0 = -2 sin(2θ0); d/dθ1 = 2θ1. Note the ½ factor of the rule means
        // the small-shift limit is ½·f'(θ)·2s/… — the rule returns ½(f+ - f-),
        // which for small s equals s·f'(θ). Scale accordingly.
        let expected0 = -2.0 * (2.0f64 * 0.7).sin() * 1e-5;
        let expected1 = 2.0 * (-0.4) * 1e-5;
        assert!((g_small[0] - expected0).abs() < 1e-9);
        assert!((g_small[1] - expected1).abs() < 1e-9);
    }

    #[test]
    fn finite_difference_matches_analytic() {
        let f = |p: &[f64]| p[0].powi(3) + 2.0 * p[1];
        let g = finite_difference_gradient(f, &[2.0, 5.0], 1e-5);
        assert!((g[0] - 12.0).abs() < 1e-4);
        assert!((g[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fidelity_gradient_direction_improves_fidelity() {
        // Gradient *ascent* on the fidelity itself should increase it.
        let encoder = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
        let stack = LayerStack::qc_s(2).unwrap();
        let estimator = FidelityEstimator::analytic();
        let x = vec![0.8, 0.2, 0.3, 0.7];
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = vec![0.3, 0.3, 0.3, 0.3];
        let fid = |p: &[f64]| {
            let mut r = StdRng::seed_from_u64(0);
            estimator.estimate(&stack, p, &encoder, &x, &mut r).unwrap()
        };
        let before = estimator
            .estimate(&stack, &params, &encoder, &x, &mut rng)
            .unwrap();
        for _ in 0..20 {
            let grad = parameter_shift_gradient(fid, &params, FRAC_PI_2);
            for (p, g) in params.iter_mut().zip(grad.iter()) {
                *p += 0.3 * g;
            }
        }
        let after = estimator
            .estimate(&stack, &params, &encoder, &x, &mut rng)
            .unwrap();
        assert!(
            after > before + 0.05,
            "fidelity did not improve: {before} -> {after}"
        );
    }

    #[test]
    fn parameter_shift_agrees_with_finite_difference_on_circuit() {
        let encoder = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
        let stack = LayerStack::qc_sd(2).unwrap();
        let estimator = FidelityEstimator::analytic();
        let x = vec![0.6, 0.4, 0.1, 0.9];
        let params: Vec<f64> = (0..stack.parameter_count())
            .map(|i| 0.2 + 0.17 * i as f64)
            .collect();
        let fid = |p: &[f64]| {
            let mut r = StdRng::seed_from_u64(1);
            estimator.estimate(&stack, p, &encoder, &x, &mut r).unwrap()
        };
        // Small-shift parameter rule ≈ s · true gradient.
        let s = 1e-4;
        let shift_grad = parameter_shift_gradient(fid, &params, s);
        let fd_grad = finite_difference_gradient(fid, &params, 1e-4);
        for (a, b) in shift_grad.iter().zip(fd_grad.iter()) {
            assert!((a / s - b).abs() < 1e-3, "{} vs {}", a / s, b);
        }
    }

    #[test]
    fn gradient_of_empty_parameter_vector_is_empty() {
        let g = parameter_shift_gradient(|_| 1.0, &[], 0.5);
        assert!(g.is_empty());
        assert!(shifted_parameter_sets(&[], 0.5).is_empty());
        assert!(gradient_from_shifted_values(&[]).is_empty());
    }

    #[test]
    fn planned_shift_evaluation_matches_closure_rule() {
        // Evaluating the planned parameter sets and folding must reproduce
        // parameter_shift_gradient exactly, bit for bit: both walk the same
        // inputs through the same arithmetic.
        let f = |p: &[f64]| (p[0] * 1.3).sin() + p[1].cos() * p[2];
        let params = [0.4, -1.1, 2.2];
        let shift = 0.7;
        let sets = shifted_parameter_sets(&params, shift);
        assert_eq!(sets.len(), 6);
        let values: Vec<f64> = sets.iter().map(|s| f(s)).collect();
        let folded = gradient_from_shifted_values(&values);
        let direct = parameter_shift_gradient(f, &params, shift);
        for (a, b) in folded.iter().zip(direct.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "forward/backward pairs")]
    fn odd_shifted_values_rejected() {
        let _ = gradient_from_shifted_values(&[1.0, 2.0, 3.0]);
    }
}
