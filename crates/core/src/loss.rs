//! Loss functions (paper Section 4.4, Eqs. 13–14).
//!
//! The training loss is the classical binary cross-entropy evaluated on the
//! quantum state fidelity: for a sample of the class being trained, the
//! target is `y = 1` (maximise fidelity); under contrastive training,
//! samples of other classes use `y = 0` (minimise fidelity). Multi-class
//! inference softmaxes the per-class fidelities, so the usual negative
//! log-likelihood is also provided.

/// Numerical floor/ceiling used when taking logarithms of probabilities.
pub const PROBABILITY_EPSILON: f64 = 1e-9;

/// Clamps a probability away from 0 and 1 so that logarithms stay finite.
pub fn clamp_probability(p: f64) -> f64 {
    p.clamp(PROBABILITY_EPSILON, 1.0 - PROBABILITY_EPSILON)
}

/// Binary cross-entropy `−y·log(p) − (1−y)·log(1−p)` (paper Eq. 14).
pub fn binary_cross_entropy(p: f64, y: f64) -> f64 {
    let p = clamp_probability(p);
    -y * p.ln() - (1.0 - y) * (1.0 - p).ln()
}

/// Derivative of the binary cross-entropy with respect to `p`.
pub fn binary_cross_entropy_grad(p: f64, y: f64) -> f64 {
    let p = clamp_probability(p);
    (p - y) / (p * (1.0 - p))
}

/// Mean fidelity cost of Eq. 13: the average SWAP-test fidelity over a set of
/// samples. Used when reporting the raw (un-log-transformed) objective.
pub fn mean_fidelity(fidelities: &[f64]) -> f64 {
    if fidelities.is_empty() {
        return 0.0;
    }
    fidelities.iter().sum::<f64>() / fidelities.len() as f64
}

/// Numerically stable softmax.
pub fn softmax(scores: &[f64]) -> Vec<f64> {
    if scores.is_empty() {
        return Vec::new();
    }
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Negative log-likelihood of the true class under a softmax distribution.
pub fn cross_entropy_multiclass(probabilities: &[f64], label: usize) -> f64 {
    let p = probabilities.get(label).copied().unwrap_or(0.0);
    -clamp_probability(p).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_is_zero_for_perfect_predictions() {
        assert!(binary_cross_entropy(1.0, 1.0) < 1e-6);
        assert!(binary_cross_entropy(0.0, 0.0) < 1e-6);
    }

    #[test]
    fn bce_is_large_for_confident_mistakes() {
        assert!(binary_cross_entropy(0.001, 1.0) > 5.0);
        assert!(binary_cross_entropy(0.999, 0.0) > 5.0);
    }

    #[test]
    fn bce_matches_hand_computation() {
        let p: f64 = 0.7;
        let expected = -p.ln();
        assert!((binary_cross_entropy(0.7, 1.0) - expected).abs() < 1e-9);
        let expected0 = -(1.0 - p).ln();
        assert!((binary_cross_entropy(0.7, 0.0) - expected0).abs() < 1e-9);
    }

    #[test]
    fn bce_grad_matches_finite_difference() {
        let eps = 1e-6;
        for &(p, y) in &[(0.3, 1.0), (0.8, 0.0), (0.5, 1.0), (0.12, 0.0)] {
            let numeric =
                (binary_cross_entropy(p + eps, y) - binary_cross_entropy(p - eps, y)) / (2.0 * eps);
            let analytic = binary_cross_entropy_grad(p, y);
            assert!(
                (numeric - analytic).abs() < 1e-4,
                "p={p} y={y}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn bce_handles_extreme_probabilities_without_nan() {
        assert!(binary_cross_entropy(0.0, 1.0).is_finite());
        assert!(binary_cross_entropy(1.0, 0.0).is_finite());
        assert!(binary_cross_entropy_grad(0.0, 1.0).is_finite());
        assert!(binary_cross_entropy_grad(1.0, 0.0).is_finite());
    }

    #[test]
    fn softmax_sums_to_one_and_preserves_order() {
        let s = softmax(&[0.2, 1.5, -0.3, 0.9]);
        let sum: f64 = s.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(s[1] > s[3] && s[3] > s[0] && s[0] > s[2]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn uniform_scores_give_uniform_softmax() {
        let s = softmax(&[0.4; 5]);
        for p in s {
            assert!((p - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn multiclass_cross_entropy() {
        let probs = vec![0.1, 0.7, 0.2];
        assert!((cross_entropy_multiclass(&probs, 1) - (-(0.7f64).ln())).abs() < 1e-9);
        // Out-of-range label behaves as probability zero (large but finite loss).
        assert!(cross_entropy_multiclass(&probs, 9).is_finite());
    }

    #[test]
    fn mean_fidelity_handles_empty_and_averages() {
        assert_eq!(mean_fidelity(&[]), 0.0);
        assert!((mean_fidelity(&[0.2, 0.4, 0.9]) - 0.5).abs() < 1e-12);
    }
}
