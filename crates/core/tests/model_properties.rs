//! Property-based tests of the QuClassi model-level invariants.

use proptest::prelude::*;
use quclassi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn feature_vec(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..=1.0, dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Class probabilities always form a distribution and the prediction is
    /// their arg-max, for every architecture.
    #[test]
    fn predictions_are_argmax_of_probabilities(x in feature_vec(4), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for config in [
            QuClassiConfig::qc_s(4, 3),
            QuClassiConfig::qc_sd(4, 3),
            QuClassiConfig::qc_sde(4, 3),
        ] {
            let model = QuClassiModel::with_random_parameters(config, &mut rng).unwrap();
            let estimator = FidelityEstimator::analytic();
            let probs = model.predict_proba(&x, &estimator, &mut rng).unwrap();
            prop_assert_eq!(probs.len(), 3);
            let sum: f64 = probs.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            let argmax = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            let pred = model.predict(&x, &estimator, &mut rng).unwrap();
            prop_assert_eq!(pred, argmax);
        }
    }

    /// Fidelities are invariant to which estimator backend computes them
    /// (analytic vs ideal SWAP test), for every architecture.
    #[test]
    fn estimators_agree_for_all_architectures(x in feature_vec(6), seed in 0u64..1000) {
        use quclassi_sim::executor::Executor;
        let mut rng = StdRng::seed_from_u64(seed);
        for config in [QuClassiConfig::qc_s(6, 2), QuClassiConfig::qc_sde(6, 2)] {
            let model = QuClassiModel::with_random_parameters(config, &mut rng).unwrap();
            let a = model
                .class_fidelity(0, &x, &FidelityEstimator::analytic(), &mut rng)
                .unwrap();
            let b = model
                .class_fidelity(0, &x, &FidelityEstimator::swap_test(Executor::ideal()), &mut rng)
                .unwrap();
            prop_assert!((a - b).abs() < 1e-8, "analytic {} vs swap {}", a, b);
        }
    }

    /// Serialisation round-trips preserve every parameter bit-exactly.
    #[test]
    fn serialisation_round_trip(seed in 0u64..10_000) {
        use quclassi::io::{model_from_string, model_to_string};
        let mut rng = StdRng::seed_from_u64(seed);
        let model =
            QuClassiModel::with_random_parameters(QuClassiConfig::qc_sd(5, 3), &mut rng).unwrap();
        let restored = model_from_string(&model_to_string(&model)).unwrap();
        for c in 0..3 {
            let a = model.class_params(c).unwrap();
            let b = restored.class_params(c).unwrap();
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert!((x - y).abs() < 1e-15);
            }
        }
    }

    /// One SGD step on a sample with target 1 never moves the fidelity of
    /// that sample *down* by a large amount (sanity of the gradient sign).
    #[test]
    fn training_step_moves_fidelity_up(x in feature_vec(4), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model =
            QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
        let estimator = FidelityEstimator::analytic();
        let before = model.class_fidelity(0, &x, &estimator, &mut rng).unwrap();
        let trainer = Trainer::new(
            TrainingConfig {
                epochs: 1,
                learning_rate: 0.05,
                shuffle: false,
                ..Default::default()
            },
            FidelityEstimator::analytic(),
        );
        trainer
            .fit(&mut model, std::slice::from_ref(&x), &[0], &mut rng)
            .unwrap();
        let after = model.class_fidelity(0, &x, &estimator, &mut rng).unwrap();
        prop_assert!(after >= before - 1e-6, "fidelity decreased: {} -> {}", before, after);
    }
}
