//! Gate decomposition and routing ("transpilation").
//!
//! Real devices execute a small native gate set (single-qubit rotations plus
//! CNOT) and can only apply two-qubit gates between coupled qubits. This
//! module provides:
//!
//! * [`decompose_gate`] — rewrites every gate of the simulator's gate set
//!   into {single-qubit rotations, H, T, CNOT},
//! * [`route`] — inserts SWAPs so every CNOT acts on adjacent physical
//!   qubits of a [`CouplingMap`],
//! * [`transpile`] — decompose + route, returning CNOT counts.
//!
//! The CNOT counts are what the paper's Section 5.4 uses to explain the
//! IonQ-vs-IBM-Cairo accuracy gap (0 routing SWAPs vs 21 extra CNOTs).

use crate::device::CouplingMap;
use crate::error::SimError;
use crate::gate::Gate;
use std::f64::consts::FRAC_PI_2;

/// Summary of a transpilation run.
#[derive(Clone, Debug, PartialEq)]
pub struct TranspileReport {
    /// The physical-basis gate sequence (single-qubit gates + CNOT).
    pub gates: Vec<Gate>,
    /// Total CNOT count after decomposition and routing.
    pub cnot_count: usize,
    /// Number of routing SWAPs that had to be inserted (each costs 3 CNOTs).
    pub swaps_inserted: usize,
    /// CNOTs attributable purely to routing (3 × `swaps_inserted`).
    pub routing_cnots: usize,
    /// Final logical→physical qubit layout.
    pub layout: Vec<usize>,
}

/// Decomposes a Toffoli (CCX) gate into the standard 6-CNOT + T circuit.
fn decompose_toffoli(c1: usize, c2: usize, t: usize) -> Vec<Gate> {
    vec![
        Gate::H(t),
        Gate::Cnot {
            control: c2,
            target: t,
        },
        Gate::Tdg(t),
        Gate::Cnot {
            control: c1,
            target: t,
        },
        Gate::T(t),
        Gate::Cnot {
            control: c2,
            target: t,
        },
        Gate::Tdg(t),
        Gate::Cnot {
            control: c1,
            target: t,
        },
        Gate::T(c2),
        Gate::T(t),
        Gate::H(t),
        Gate::Cnot {
            control: c1,
            target: c2,
        },
        Gate::T(c1),
        Gate::Tdg(c2),
        Gate::Cnot {
            control: c1,
            target: c2,
        },
    ]
}

/// Rewrites a gate into the native basis {1-qubit gates, CNOT}.
///
/// Gates that are already native are returned unchanged (as a single-element
/// vector).
pub fn decompose_gate(gate: &Gate) -> Vec<Gate> {
    match *gate {
        // Already native.
        Gate::I(_)
        | Gate::X(_)
        | Gate::Y(_)
        | Gate::Z(_)
        | Gate::H(_)
        | Gate::S(_)
        | Gate::Sdg(_)
        | Gate::T(_)
        | Gate::Tdg(_)
        | Gate::Rx(..)
        | Gate::Ry(..)
        | Gate::Rz(..)
        | Gate::R(..)
        | Gate::Cnot { .. } => vec![gate.clone()],
        Gate::Cz { control, target } => vec![
            Gate::H(target),
            Gate::Cnot { control, target },
            Gate::H(target),
        ],
        Gate::Swap(a, b) => vec![
            Gate::Cnot {
                control: a,
                target: b,
            },
            Gate::Cnot {
                control: b,
                target: a,
            },
            Gate::Cnot {
                control: a,
                target: b,
            },
        ],
        Gate::CRy {
            control,
            target,
            theta,
        } => vec![
            Gate::Ry(target, theta / 2.0),
            Gate::Cnot { control, target },
            Gate::Ry(target, -theta / 2.0),
            Gate::Cnot { control, target },
        ],
        Gate::CRz {
            control,
            target,
            theta,
        } => vec![
            Gate::Rz(target, theta / 2.0),
            Gate::Cnot { control, target },
            Gate::Rz(target, -theta / 2.0),
            Gate::Cnot { control, target },
        ],
        Gate::CRx {
            control,
            target,
            theta,
        } => {
            // CRX = H_t · CRZ · H_t
            let mut out = vec![Gate::H(target)];
            out.extend(decompose_gate(&Gate::CRz {
                control,
                target,
                theta,
            }));
            out.push(Gate::H(target));
            out
        }
        Gate::Rzz(a, b, theta) => vec![
            Gate::Cnot {
                control: a,
                target: b,
            },
            Gate::Rz(b, theta),
            Gate::Cnot {
                control: a,
                target: b,
            },
        ],
        Gate::Rxx(a, b, theta) => {
            let mut out = vec![Gate::H(a), Gate::H(b)];
            out.extend(decompose_gate(&Gate::Rzz(a, b, theta)));
            out.push(Gate::H(a));
            out.push(Gate::H(b));
            out
        }
        Gate::Ryy(a, b, theta) => {
            let mut out = vec![Gate::Rx(a, FRAC_PI_2), Gate::Rx(b, FRAC_PI_2)];
            out.extend(decompose_gate(&Gate::Rzz(a, b, theta)));
            out.push(Gate::Rx(a, -FRAC_PI_2));
            out.push(Gate::Rx(b, -FRAC_PI_2));
            out
        }
        Gate::CSwap { control, a, b } => {
            // Fredkin = CNOT(b→a) · Toffoli(control, a → b) · CNOT(b→a)
            let mut out = vec![Gate::Cnot {
                control: b,
                target: a,
            }];
            out.extend(decompose_toffoli(control, a, b));
            out.push(Gate::Cnot {
                control: b,
                target: a,
            });
            out
        }
    }
}

/// Decomposes a whole gate sequence into the native basis.
pub fn decompose_all(gates: &[Gate]) -> Vec<Gate> {
    gates.iter().flat_map(decompose_gate).collect()
}

/// Counts CNOT gates in a sequence.
pub fn count_cnots(gates: &[Gate]) -> usize {
    gates
        .iter()
        .filter(|g| matches!(g, Gate::Cnot { .. }))
        .count()
}

/// Remaps a native-basis gate onto physical qubits according to `layout`
/// (logical index → physical index).
fn remap_gate(gate: &Gate, layout: &[usize]) -> Gate {
    match *gate {
        Gate::I(q) => Gate::I(layout[q]),
        Gate::X(q) => Gate::X(layout[q]),
        Gate::Y(q) => Gate::Y(layout[q]),
        Gate::Z(q) => Gate::Z(layout[q]),
        Gate::H(q) => Gate::H(layout[q]),
        Gate::S(q) => Gate::S(layout[q]),
        Gate::Sdg(q) => Gate::Sdg(layout[q]),
        Gate::T(q) => Gate::T(layout[q]),
        Gate::Tdg(q) => Gate::Tdg(layout[q]),
        Gate::Rx(q, t) => Gate::Rx(layout[q], t),
        Gate::Ry(q, t) => Gate::Ry(layout[q], t),
        Gate::Rz(q, t) => Gate::Rz(layout[q], t),
        Gate::R(q, t, p) => Gate::R(layout[q], t, p),
        Gate::Cnot { control, target } => Gate::Cnot {
            control: layout[control],
            target: layout[target],
        },
        ref g => panic!("remap_gate called on non-native gate {}", g.name()),
    }
}

/// Routes a native-basis circuit onto a coupling map, inserting SWAPs
/// (expanded to 3 CNOTs) whenever a CNOT spans non-adjacent physical qubits.
///
/// Uses a simple greedy strategy: walk the shortest physical path and swap
/// the control towards the target until they are adjacent. The logical→
/// physical layout is threaded through the whole circuit.
pub fn route(gates: &[Gate], coupling: &CouplingMap) -> Result<TranspileReport, SimError> {
    let num_logical = gates
        .iter()
        .flat_map(|g| g.qubits())
        .max()
        .map_or(0, |m| m + 1);
    if num_logical > coupling.num_qubits() {
        return Err(SimError::Routing(format!(
            "circuit uses {num_logical} qubits but the device has only {}",
            coupling.num_qubits()
        )));
    }
    // layout[logical] = physical
    let mut layout: Vec<usize> = (0..coupling.num_qubits()).collect();
    let mut out = Vec::with_capacity(gates.len());
    let mut swaps_inserted = 0usize;

    for gate in gates {
        match gate {
            Gate::Cnot { control, target } => {
                let mut pc = layout[*control];
                let pt = layout[*target];
                if !coupling.are_adjacent(pc, pt) {
                    let path = coupling.shortest_path(pc, pt)?;
                    // Move the control along the path until adjacent to target.
                    for &next in path.iter().skip(1).take(path.len().saturating_sub(2)) {
                        // SWAP physical qubits pc and next = 3 CNOTs.
                        out.push(Gate::Cnot {
                            control: pc,
                            target: next,
                        });
                        out.push(Gate::Cnot {
                            control: next,
                            target: pc,
                        });
                        out.push(Gate::Cnot {
                            control: pc,
                            target: next,
                        });
                        swaps_inserted += 1;
                        // Update layout: whichever logical qubits live at pc/next swap homes.
                        for slot in layout.iter_mut() {
                            if *slot == pc {
                                *slot = next;
                            } else if *slot == next {
                                *slot = pc;
                            }
                        }
                        pc = next;
                        if coupling.are_adjacent(pc, pt) {
                            break;
                        }
                    }
                }
                out.push(Gate::Cnot {
                    control: layout[*control],
                    target: layout[*target],
                });
            }
            g if g.arity() == 1 => out.push(remap_gate(g, &layout)),
            g => {
                return Err(SimError::Routing(format!(
                    "gate {} is not in the native basis; decompose before routing",
                    g.name()
                )))
            }
        }
    }

    let cnot_count = count_cnots(&out);
    Ok(TranspileReport {
        gates: out,
        cnot_count,
        swaps_inserted,
        routing_cnots: swaps_inserted * 3,
        layout,
    })
}

/// Full transpilation: decompose to the native basis, then route onto the
/// coupling map.
pub fn transpile(gates: &[Gate], coupling: &CouplingMap) -> Result<TranspileReport, SimError> {
    let native = decompose_all(gates);
    route(&native, coupling)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;

    /// Checks that two gate sequences implement the same unitary (up to
    /// global phase) by comparing their action on every basis state.
    fn assert_equivalent(num_qubits: usize, a: &[Gate], b: &[Gate], tol: f64) {
        let dim = 1 << num_qubits;
        // Determine a reference phase from the first basis state with
        // non-negligible amplitude, then compare all columns.
        for basis in 0..dim {
            let mut sa = StateVector::basis_state(num_qubits, basis).unwrap();
            let mut sb = StateVector::basis_state(num_qubits, basis).unwrap();
            sa.apply_gates(a).unwrap();
            sb.apply_gates(b).unwrap();
            let fid = sa.fidelity(&sb).unwrap();
            assert!(
                (fid - 1.0).abs() < tol,
                "column {basis}: fidelity {fid} between decomposition and original"
            );
        }
    }

    #[test]
    fn cry_decomposition_is_exact() {
        let g = Gate::CRy {
            control: 1,
            target: 0,
            theta: 0.87,
        };
        assert_equivalent(2, std::slice::from_ref(&g), &decompose_gate(&g), 1e-10);
    }

    #[test]
    fn crz_decomposition_is_exact() {
        let g = Gate::CRz {
            control: 0,
            target: 1,
            theta: -1.3,
        };
        assert_equivalent(2, std::slice::from_ref(&g), &decompose_gate(&g), 1e-10);
    }

    #[test]
    fn crx_decomposition_is_exact() {
        let g = Gate::CRx {
            control: 0,
            target: 1,
            theta: 2.1,
        };
        assert_equivalent(2, std::slice::from_ref(&g), &decompose_gate(&g), 1e-10);
    }

    #[test]
    fn swap_and_cz_decompositions() {
        let g = Gate::Swap(0, 1);
        assert_equivalent(2, std::slice::from_ref(&g), &decompose_gate(&g), 1e-10);
        let g = Gate::Cz {
            control: 1,
            target: 0,
        };
        assert_equivalent(2, std::slice::from_ref(&g), &decompose_gate(&g), 1e-10);
    }

    #[test]
    fn two_qubit_rotation_decompositions() {
        for g in [
            Gate::Rzz(0, 1, 0.71),
            Gate::Rxx(0, 1, 1.4),
            Gate::Ryy(0, 1, -0.9),
        ] {
            assert_equivalent(2, std::slice::from_ref(&g), &decompose_gate(&g), 1e-9);
        }
    }

    #[test]
    fn cswap_decomposition_is_exact_and_uses_8_cnots() {
        let g = Gate::CSwap {
            control: 2,
            a: 0,
            b: 1,
        };
        let dec = decompose_gate(&g);
        assert_equivalent(3, std::slice::from_ref(&g), &dec, 1e-9);
        assert_eq!(count_cnots(&dec), 8);
    }

    #[test]
    fn native_gates_pass_through() {
        let g = Gate::Ry(3, 0.5);
        assert_eq!(decompose_gate(&g), vec![g]);
    }

    #[test]
    fn routing_on_all_to_all_inserts_no_swaps() {
        let gates = vec![
            Gate::H(0),
            Gate::Cnot {
                control: 0,
                target: 4,
            },
        ];
        let report = route(&gates, &CouplingMap::all_to_all(5)).unwrap();
        assert_eq!(report.swaps_inserted, 0);
        assert_eq!(report.cnot_count, 1);
    }

    #[test]
    fn routing_on_linear_chain_inserts_swaps() {
        let gates = vec![Gate::Cnot {
            control: 0,
            target: 3,
        }];
        let report = route(&gates, &CouplingMap::linear(4)).unwrap();
        assert!(report.swaps_inserted >= 2);
        assert_eq!(report.cnot_count, 1 + 3 * report.swaps_inserted);
    }

    #[test]
    fn routed_circuit_preserves_semantics_on_linear_chain() {
        // Entangle 0 and 2 on a 3-qubit linear chain; the routed circuit must
        // produce the same measurement statistics after undoing the layout.
        let logical = vec![
            Gate::H(0),
            Gate::Cnot {
                control: 0,
                target: 2,
            },
        ];
        let report = route(&logical, &CouplingMap::linear(3)).unwrap();
        let mut ideal = StateVector::zero_state(3);
        ideal.apply_gates(&logical).unwrap();
        let mut routed = StateVector::zero_state(3);
        routed.apply_gates(&report.gates).unwrap();
        // Compare per-logical-qubit marginals through the final layout.
        for logical_q in 0..3 {
            let physical_q = report.layout[logical_q];
            let pi = ideal.probability_of_one(logical_q).unwrap();
            let pr = routed.probability_of_one(physical_q).unwrap();
            assert!((pi - pr).abs() < 1e-9, "qubit {logical_q}: {pi} vs {pr}");
        }
    }

    #[test]
    fn route_rejects_oversized_circuits_and_non_native_gates() {
        let gates = vec![Gate::Cnot {
            control: 0,
            target: 9,
        }];
        assert!(route(&gates, &CouplingMap::linear(4)).is_err());
        let gates = vec![Gate::Swap(0, 1)];
        assert!(route(&gates, &CouplingMap::linear(2)).is_err());
    }

    #[test]
    fn transpile_counts_routing_overhead_ionq_vs_linear() {
        // A CSWAP between distant qubits: all-to-all needs no routing CNOTs,
        // a sparse chain needs strictly more.
        let gates = vec![Gate::CSwap {
            control: 4,
            a: 0,
            b: 2,
        }];
        let ionq = transpile(&gates, &CouplingMap::all_to_all(5)).unwrap();
        let chain = transpile(&gates, &CouplingMap::linear(5)).unwrap();
        assert_eq!(ionq.routing_cnots, 0);
        assert!(chain.routing_cnots > 0);
        assert!(chain.cnot_count > ionq.cnot_count);
    }
}
