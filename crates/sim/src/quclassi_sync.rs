//! Swappable `std::sync` facade for the simulator's lock-free counters.
//!
//! Mirrors `quclassi-serve`'s shim of the same name: normal builds
//! re-export plain `std` atomics (zero-cost — the re-export resolves to
//! the identical items), while `RUSTFLAGS="--cfg quclassi_model"` builds
//! substitute the vendored `interleave` model checker's shadow atomics so
//! the profiling counters' orderings can be explored exhaustively.
//!
//! Only what [`crate::profile`] uses is re-exported; widen as more of the
//! simulator's concurrency moves behind the shim.

/// Atomic integer types and fences, from `std` or the model checker.
pub(crate) mod atomic {
    #[cfg(not(quclassi_model))]
    pub(crate) use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

    #[cfg(quclassi_model)]
    pub(crate) use interleave::sync::atomic::{AtomicU64, AtomicU8, Ordering};
}
