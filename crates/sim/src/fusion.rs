//! Gate fusion: compiling a [`Circuit`] into a shorter sequence of dense
//! unitaries.
//!
//! QuClassi's hot path re-executes the same circuit thousands of times —
//! once per sample × class × parameter-shift evaluation × shot. Walking the
//! circuit gate-by-gate pays, for every single run, the per-gate costs of
//! binding, operand validation, matrix construction and a full sweep over
//! all `2^n` amplitudes. A [`FusedCircuit`] moves that work to compile time:
//!
//! * contiguous runs of dense gates whose combined support fits in
//!   [`MAX_FUSED_QUBITS`] qubits are **fused** into a single `2^k × 2^k`
//!   matrix — but only when a cost model says the merged sweep is no more
//!   expensive than the separate ones, so fusion never adds arithmetic;
//! * diagonal/permutation gates (X, Z, S, T, SWAP, CNOT, CZ, CSWAP) keep
//!   their multiply-free specialised application paths instead of being
//!   inflated into dense matrices;
//! * groups containing no symbolic parameters are multiplied out **once at
//!   compile time**; parametric groups store a compact recipe and rebuild
//!   only their own small matrix at bind time;
//! * parameter-free instructions are **hoisted into a static prelude** when
//!   they commute past everything before them (disjoint qubit support), and
//!   the prelude's |0…0⟩ evolution is precomputed at compile time — so
//!   [`FusedCircuit::execute`] starts from a cloned state and replays only
//!   the parametric remainder;
//! * execution applies each fused matrix with the specialised dense kernels
//!   of [`StateVector`]; group matrices are rebuilt into stack scratch, so
//!   the only per-bind heap allocations are the constituent gates' own
//!   small matrix constructions.
//!
//! Fusion is exact up to floating-point re-association: the fused product
//! equals the mathematical product of the constituent gate matrices, so
//! final statevectors agree with unfused execution to ~1e-14 (the
//! `fusion_equivalence` property suite pins 1e-10 over random circuits).
//!
//! Fusion applies to the *unitary* part of execution only. Noisy trajectory
//! simulation interleaves stochastic Kraus branches between gates, so the
//! [`crate::executor::Executor`] falls back to per-gate application (via
//! [`FusedCircuit::source`]) whenever a noise model is active.

use crate::circuit::{Circuit, Operation};
use crate::complex::Complex;
use crate::error::SimError;
use crate::gate::Gate;
use crate::intra::IntraThreads;
use crate::state::{StateVector, MAX_DENSE_QUBITS};

/// Maximum number of qubits a fused group may span. 2³×2³ matrices keep the
/// per-block arithmetic within one cache line's worth of amplitudes while
/// still swallowing every gate in the QuClassi set (CSWAP is 3-qubit).
pub const MAX_FUSED_QUBITS: usize = 3;

/// Declares how a gate participates in fusion.
///
/// This `match` is deliberately **exhaustive with no wildcard arm**: adding
/// a new [`Gate`] variant fails compilation here until the variant declares
/// its fusion behaviour, so the fusion engine can never silently mishandle
/// a gate it has not been taught about.
fn fusion_behavior(gate: &Gate) -> FusionBehavior {
    match gate {
        // Diagonal / permutation gates with multiply-free specialised
        // application paths in the state-vector engine: folding one into a
        // dense group is only worth it when the group already spans its
        // qubits, which the cost model decides.
        Gate::I(_)
        | Gate::X(_)
        | Gate::Z(_)
        | Gate::S(_)
        | Gate::Sdg(_)
        | Gate::T(_)
        | Gate::Tdg(_)
        | Gate::Swap(..)
        | Gate::Cnot { .. }
        | Gate::Cz { .. }
        | Gate::CSwap { .. } => FusionBehavior::Cheap,
        // Genuinely dense unitaries: fusing them saves full sweeps.
        Gate::Y(_)
        | Gate::H(_)
        | Gate::Rx(..)
        | Gate::Ry(..)
        | Gate::Rz(..)
        | Gate::R(..)
        | Gate::CRx { .. }
        | Gate::CRy { .. }
        | Gate::CRz { .. }
        | Gate::Rxx(..)
        | Gate::Ryy(..)
        | Gate::Rzz(..) => FusionBehavior::Dense,
    }
}

/// How a gate participates in fusion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FusionBehavior {
    /// A dense unitary; applying it alone costs `2^arity` multiplies per
    /// amplitude, so multiplying it into a fused group saves sweeps.
    Dense,
    /// A diagonal/permutation gate with a multiply-free specialised path;
    /// left unfused unless a group already covers its qubits.
    Cheap,
    /// Must be applied on its own through [`StateVector::apply_gate`]
    /// (reserved for future non-unitary / measurement-like operations).
    Opaque,
}

/// Whether this gate may be multiplied into a fused group at all.
pub fn is_fusible(gate: &Gate) -> bool {
    fusion_behavior(gate) != FusionBehavior::Opaque
}

/// Estimated cost of applying the gate on its own, in dense-kernel
/// multiplies per amplitude: `2^k` for a dense `k`-qubit unitary, a small
/// constant for the multiply-free specialised paths.
fn op_unit_cost(gate: &Gate) -> f64 {
    match fusion_behavior(gate) {
        FusionBehavior::Dense => (1usize << gate.arity()) as f64,
        FusionBehavior::Cheap => 0.5,
        FusionBehavior::Opaque => f64::INFINITY,
    }
}

/// One compiled instruction of a fused circuit.
#[derive(Clone, Debug, PartialEq)]
enum FusedOp {
    /// A parameter-free group whose matrix was multiplied out at compile
    /// time. `qubits` is the group support (first entry = least-significant
    /// matrix bit); `matrix` is flat row-major of size `4^qubits.len()`.
    Static {
        qubits: Vec<usize>,
        matrix: Vec<Complex>,
    },
    /// A group containing at least one parametric gate: its matrix is
    /// rebuilt from the stored operations at bind time.
    Dynamic {
        qubits: Vec<usize>,
        ops: Vec<Operation>,
    },
    /// An operation excluded from fusion (opaque behaviour or malformed
    /// operands such as duplicate qubits — the latter surface their
    /// [`SimError`] at execution, never a silent misindex).
    Raw(Operation),
}

impl FusedOp {
    fn qubit_span(&self) -> usize {
        match self {
            FusedOp::Static { qubits, .. } | FusedOp::Dynamic { qubits, .. } => qubits.len(),
            FusedOp::Raw(op) => op.qubits().len(),
        }
    }
}

/// A circuit compiled into fused dense unitaries, reusable across any number
/// of executions (shots, samples, parameter-shift evaluations).
///
/// Compile once with [`FusedCircuit::compile`], then call
/// [`FusedCircuit::execute`] / [`FusedCircuit::execute_into`] with fresh
/// parameter vectors. The original circuit remains available through
/// [`FusedCircuit::source`] for paths fusion cannot serve (per-gate noise
/// interleaving, transpilation, introspection).
///
/// Beyond fusing, compilation hoists a **static prelude**: parameter-free
/// instructions are commuted to the front of the program whenever their
/// qubit support is disjoint from every instruction they jump over (tensor
/// factors on disjoint wires commute exactly), and the state they produce
/// from |0…0⟩ is evaluated once at compile time. [`FusedCircuit::execute`]
/// then starts from a clone of that state and only replays the parametric
/// remainder — in QuClassi's SWAP-test circuits this removes the whole
/// data-register preparation from the per-evaluation cost.
///
/// ```
/// use quclassi_sim::circuit::Circuit;
/// use quclassi_sim::fusion::FusedCircuit;
///
/// let mut c = Circuit::new(2);
/// c.h(0).ry_param(0, 0).rz_param(0, 1).ry_param(1, 2).cnot(0, 1);
/// let fused = FusedCircuit::compile(&c);
/// // The compiled program is shorter than the gate list…
/// assert!(fused.num_fused_ops() < c.gate_count());
/// // …and executes to the same state (up to float re-association).
/// let params = [0.4, -0.9, 2.2];
/// let a = fused.execute(&params).unwrap();
/// let b = c.execute(&params).unwrap();
/// for (x, y) in a.to_amplitudes().iter().zip(b.to_amplitudes().iter()) {
///     assert!(x.approx_eq(*y, 1e-12));
/// }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FusedCircuit {
    source: Circuit,
    /// All fused instructions, with the movable static prelude first. The
    /// full list is semantically equivalent to the source circuit.
    program: Vec<FusedOp>,
    /// How many leading instructions of `program` are baked into
    /// `prefix_state`.
    prefix_len: usize,
    /// |0…0⟩ evolved through `program[..prefix_len]`.
    prefix_state: StateVector,
}

impl FusedCircuit {
    /// Compiles `circuit` into fused groups.
    ///
    /// Grouping is greedy over the program order: each operation joins the
    /// current group when (a) the union of supports stays within
    /// [`MAX_FUSED_QUBITS`] qubits and (b) fusing does not increase the
    /// arithmetic cost of execution. Applying a dense `k`-qubit unitary
    /// costs `2^k` multiplies per amplitude, so an op is absorbed only when
    /// `2^k_merged ≤ 2^k_group + 2^k_op` — which accepts the profitable
    /// cases (same-qubit runs collapse sweeps outright; small gates vanish
    /// into an overlapping wider gate; two 1-qubit gates share one sweep at
    /// equal cost) and rejects flop-increasing widening (e.g. three
    /// disjoint 1-qubit gates into an 8×8). Only *contiguous* runs are
    /// fused, so the fused product is always the exact mathematical product
    /// of the constituent gates — no commutation analysis, no reordering.
    pub fn compile(circuit: &Circuit) -> FusedCircuit {
        let mut program: Vec<FusedOp> = Vec::new();
        // The group being grown.
        let mut qubits: Vec<usize> = Vec::new();
        let mut ops: Vec<Operation> = Vec::new();
        let mut parametric = false;
        let mut group_cost = 0.0f64;

        let flush = |qubits: &mut Vec<usize>,
                     ops: &mut Vec<Operation>,
                     parametric: &mut bool,
                     group_cost: &mut f64| {
            if ops.is_empty() {
                return None;
            }
            let group_qubits = std::mem::take(qubits);
            let group_ops = std::mem::take(ops);
            let single_cheap = group_ops.len() == 1
                && matches!(
                    fusion_behavior(&template_of(&group_ops[0])),
                    FusionBehavior::Cheap
                );
            let fused = if single_cheap {
                // A lone diagonal/permutation gate keeps its multiply-free
                // specialised application path.
                FusedOp::Raw(group_ops.into_iter().next().expect("one op"))
            } else if *parametric {
                FusedOp::Dynamic {
                    qubits: group_qubits,
                    ops: group_ops,
                }
            } else {
                let matrix = fuse_group(&group_qubits, &group_ops, &[])
                    .expect("parameter-free group must bind");
                FusedOp::Static {
                    qubits: group_qubits,
                    matrix,
                }
            };
            *parametric = false;
            *group_cost = 0.0;
            Some(fused)
        };

        for op in circuit.operations() {
            let op_qubits = op.qubits();
            let template = template_of(op);
            let malformed = has_duplicates(&op_qubits);
            if malformed || !is_fusible(&template) || op_qubits.len() > MAX_FUSED_QUBITS {
                if let Some(g) = flush(&mut qubits, &mut ops, &mut parametric, &mut group_cost) {
                    program.push(g);
                }
                program.push(FusedOp::Raw(op.clone()));
                continue;
            }
            let op_cost = op_unit_cost(&template);
            if ops.is_empty() {
                qubits = op_qubits;
                group_cost = op_cost;
            } else {
                let mut merged = qubits.clone();
                for &q in &op_qubits {
                    if !merged.contains(&q) {
                        merged.push(q);
                    }
                }
                let fused_cost = (1usize << merged.len()) as f64;
                // Mixing parametric and parameter-free ops in one group must
                // be *strictly* profitable: an equal-cost merge would drag
                // static work into the per-bind rebuild and pin it behind
                // the parametric ops, blocking static-prelude hoisting.
                let op_parametric = matches!(op, Operation::Parametric { .. });
                let profitable = if op_parametric == parametric {
                    fused_cost <= group_cost + op_cost
                } else {
                    fused_cost < group_cost + op_cost
                };
                if merged.len() > MAX_FUSED_QUBITS || !profitable {
                    if let Some(g) = flush(&mut qubits, &mut ops, &mut parametric, &mut group_cost)
                    {
                        program.push(g);
                    }
                    qubits = op_qubits;
                    group_cost = op_cost;
                } else {
                    qubits = merged;
                    group_cost = fused_cost;
                }
            }
            parametric |= matches!(op, Operation::Parametric { .. });
            ops.push(op.clone());
        }
        if let Some(g) = flush(&mut qubits, &mut ops, &mut parametric, &mut group_cost) {
            program.push(g);
        }

        // Static-prelude hoisting: commute parameter-free, well-formed
        // instructions to the front when their support is disjoint from
        // every instruction they jump over (disjoint tensor factors commute
        // exactly), then evaluate the prelude once.
        let mut blocked = 0u64;
        let mut prefix: Vec<FusedOp> = Vec::new();
        let mut rest: Vec<FusedOp> = Vec::new();
        for op in program {
            let movable = match &op {
                FusedOp::Static { qubits, .. } => Some(support_mask(qubits)),
                FusedOp::Raw(Operation::Fixed(g)) => {
                    let qs = g.qubits();
                    (!has_duplicates(&qs)).then(|| support_mask(&qs))
                }
                FusedOp::Dynamic { .. } | FusedOp::Raw(Operation::Parametric { .. }) => None,
            };
            match movable {
                Some(mask) if mask & blocked == 0 => prefix.push(op),
                _ => {
                    blocked |= match &op {
                        FusedOp::Static { qubits, .. } | FusedOp::Dynamic { qubits, .. } => {
                            support_mask(qubits)
                        }
                        FusedOp::Raw(raw) => support_mask(&raw.qubits()),
                    };
                    rest.push(op);
                }
            }
        }
        let mut prefix_state = StateVector::zero_state(circuit.num_qubits());
        for op in &prefix {
            match op {
                FusedOp::Static { qubits, matrix } => {
                    prefix_state.apply_unitary_unchecked(qubits, matrix);
                }
                FusedOp::Raw(Operation::Fixed(g)) => prefix_state
                    .apply_gate(g)
                    .expect("hoisted gates are validated at circuit construction"),
                _ => unreachable!("only parameter-free ops are hoisted"),
            }
        }
        let prefix_len = prefix.len();
        prefix.extend(rest);

        FusedCircuit {
            source: circuit.clone(),
            program: prefix,
            prefix_len,
            prefix_state,
        }
    }

    /// The original, unfused circuit.
    pub fn source(&self) -> &Circuit {
        &self.source
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.source.num_qubits()
    }

    /// Number of symbolic parameters the circuit references.
    pub fn num_parameters(&self) -> usize {
        self.source.num_parameters()
    }

    /// Number of fused instructions (static + dynamic + raw). The whole
    /// point: this is typically several times smaller than
    /// `source().gate_count()`.
    pub fn num_fused_ops(&self) -> usize {
        self.program.len()
    }

    /// Number of instructions whose matrix was precomputed at compile time.
    pub fn num_static_ops(&self) -> usize {
        self.program
            .iter()
            .filter(|op| matches!(op, FusedOp::Static { .. }))
            .count()
    }

    /// The widest fused group, in qubits.
    pub fn max_group_span(&self) -> usize {
        self.program
            .iter()
            .map(FusedOp::qubit_span)
            .max()
            .unwrap_or(0)
    }

    /// Number of instructions hoisted into the precomputed static prelude.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// Runs the fused circuit on |0…0⟩ and returns the final state. Starts
    /// from the precomputed prelude state, so only the parametric remainder
    /// of the program is evaluated.
    pub fn execute(&self, params: &[f64]) -> Result<StateVector, SimError> {
        self.execute_with(params, &IntraThreads::single_threaded())
    }

    /// [`FusedCircuit::execute`] under an intra-circuit thread budget:
    /// above the budget's qubit threshold every kernel sweep is split into
    /// disjoint amplitude chunks over the scoped pool. Results are
    /// bit-identical to [`FusedCircuit::execute`] for any thread count.
    pub fn execute_with(
        &self,
        params: &[f64],
        intra: &IntraThreads,
    ) -> Result<StateVector, SimError> {
        let mut sv = self.prefix_state.clone();
        self.apply_ops(&mut sv, &self.program[self.prefix_len..], params, intra)?;
        Ok(sv)
    }

    /// [`FusedCircuit::execute_with`] into a caller-owned scratch state,
    /// reusing its amplitude buffer: the prelude state is copied in (no
    /// allocation once the scratch has the right capacity) and the
    /// parametric remainder replayed on top. This is the serving hot loop's
    /// entry point — steady-state executions of one circuit shape touch the
    /// heap only for the per-bind group-matrix rebuilds of parametric
    /// groups' constituent gates.
    pub fn execute_reusing(
        &self,
        params: &[f64],
        scratch: &mut StateVector,
        intra: &IntraThreads,
    ) -> Result<(), SimError> {
        scratch.clone_from(&self.prefix_state);
        self.apply_ops(scratch, &self.program[self.prefix_len..], params, intra)
    }

    /// Applies the fused circuit to an existing state in place (the full
    /// program — the prelude shortcut only applies to |0…0⟩ starts).
    pub fn execute_into(&self, state: &mut StateVector, params: &[f64]) -> Result<(), SimError> {
        self.execute_into_with(state, params, &IntraThreads::single_threaded())
    }

    /// [`FusedCircuit::execute_into`] under an intra-circuit thread budget
    /// (bit-identical for any thread count).
    pub fn execute_into_with(
        &self,
        state: &mut StateVector,
        params: &[f64],
        intra: &IntraThreads,
    ) -> Result<(), SimError> {
        if state.num_qubits() != self.num_qubits() {
            return Err(SimError::DimensionMismatch {
                expected: self.num_qubits(),
                found: state.num_qubits(),
            });
        }
        self.apply_ops(state, &self.program, params, intra)
    }

    fn apply_ops(
        &self,
        state: &mut StateVector,
        ops: &[FusedOp],
        params: &[f64],
        intra: &IntraThreads,
    ) -> Result<(), SimError> {
        for op in ops {
            match op {
                FusedOp::Static { qubits, matrix } => {
                    crate::profile::fused_group();
                    state.apply_unitary_unchecked_intra(qubits, matrix, intra);
                }
                FusedOp::Dynamic { qubits, ops } => {
                    crate::profile::fused_group();
                    let mut matrix = ZERO_GROUP_MATRIX;
                    fuse_group_into(qubits, ops, params, &mut matrix)?;
                    let size = 1usize << qubits.len();
                    state.apply_unitary_unchecked_intra(qubits, &matrix[..size * size], intra);
                }
                FusedOp::Raw(op) => {
                    let gate = op.bind(params)?;
                    state.apply_gate_intra(&gate, intra)?;
                }
            }
        }
        Ok(())
    }
}

/// A fused circuit with one concrete parameter vector bound in: the
/// "bind parameters into an already-fused circuit" entry point.
///
/// [`FusedCircuit::bind`] resolves every dynamic group's matrix and every
/// raw parametric gate **once**, so each [`BoundFusedCircuit::execute`] call
/// is pure matrix/gate application — no parameter lookup, no group-matrix
/// rebuild, no validation. Use it when one `(circuit, parameters)` pair is
/// replayed many times (repeated serving of a hot input, shot loops,
/// [`BoundFusedCircuit::execute_into`] over a stream of start states).
///
/// Execution is bit-identical to [`FusedCircuit::execute`] with the same
/// parameters: binding changes *when* matrices are built, never *what* is
/// applied.
///
/// ```
/// use quclassi_sim::circuit::Circuit;
/// use quclassi_sim::fusion::FusedCircuit;
///
/// let mut c = Circuit::new(2);
/// c.ry_param(0, 0).rz_param(1, 1).cnot(0, 1);
/// let fused = FusedCircuit::compile(&c);
/// let bound = fused.bind(&[0.3, -1.2]).unwrap();
/// // Replaying the bound artifact costs no per-run binding…
/// let a = bound.execute();
/// let b = bound.execute();
/// assert_eq!(a, b);
/// // …and reproduces the fused execution bit-for-bit.
/// assert_eq!(a, fused.execute(&[0.3, -1.2]).unwrap());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BoundFusedCircuit {
    num_qubits: usize,
    prefix_state: StateVector,
    ops: Vec<BoundOp>,
}

/// One fully-resolved instruction of a [`BoundFusedCircuit`].
#[derive(Clone, Debug, PartialEq)]
enum BoundOp {
    /// A dense unitary (static group, or dynamic group bound at bind time).
    Unitary {
        qubits: Vec<usize>,
        matrix: Vec<Complex>,
    },
    /// A bound raw gate keeping its specialised application path.
    Gate(Gate),
}

impl BoundFusedCircuit {
    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of resolved instructions replayed per execution (excludes the
    /// precomputed prelude).
    pub fn num_bound_ops(&self) -> usize {
        self.ops.len()
    }

    /// Runs the bound circuit on |0…0⟩, starting from the precomputed
    /// prelude state. Infallible: every failure mode (unbound parameters,
    /// malformed operands) was surfaced by [`FusedCircuit::bind`].
    pub fn execute(&self) -> StateVector {
        self.execute_with(&IntraThreads::single_threaded())
    }

    /// [`BoundFusedCircuit::execute`] under an intra-circuit thread budget
    /// (bit-identical for any thread count).
    pub fn execute_with(&self, intra: &IntraThreads) -> StateVector {
        let mut sv = self.prefix_state.clone();
        self.replay(&mut sv, intra);
        sv
    }

    /// [`BoundFusedCircuit::execute_with`] into a caller-owned scratch
    /// state, reusing its amplitude buffer.
    ///
    /// This is the **zero-allocation replay path**: every matrix was built
    /// at bind time, raw gates keep their multiply-free specialised
    /// kernels, and the prelude copy reuses the scratch's existing buffer —
    /// so once the scratch has been sized by a first call, steady-state
    /// sequential replays perform **no heap allocation at all** (asserted
    /// by the `zero_alloc` test suite with a counting allocator). Parallel
    /// replays (an [`IntraThreads`] budget above its threshold) allocate
    /// only the per-sweep chunk descriptors.
    pub fn execute_reusing(&self, scratch: &mut StateVector, intra: &IntraThreads) {
        scratch.clone_from(&self.prefix_state);
        self.replay(scratch, intra);
    }

    /// Applies the bound instructions (prelude *not* included — the prelude
    /// shortcut only applies to |0…0⟩ starts; use the source circuit for
    /// arbitrary-state replays of the full program) to an existing state.
    pub fn execute_into(&self, state: &mut StateVector) -> Result<(), SimError> {
        self.execute_into_with(state, &IntraThreads::single_threaded())
    }

    /// [`BoundFusedCircuit::execute_into`] under an intra-circuit thread
    /// budget (bit-identical for any thread count).
    pub fn execute_into_with(
        &self,
        state: &mut StateVector,
        intra: &IntraThreads,
    ) -> Result<(), SimError> {
        if state.num_qubits() != self.num_qubits {
            return Err(SimError::DimensionMismatch {
                expected: self.num_qubits,
                found: state.num_qubits(),
            });
        }
        self.replay(state, intra);
        Ok(())
    }

    fn replay(&self, state: &mut StateVector, intra: &IntraThreads) {
        let parallel = intra.parallelizes(state.num_qubits());
        for op in &self.ops {
            match op {
                BoundOp::Unitary { qubits, matrix } => {
                    crate::profile::fused_group();
                    state.apply_unitary_unchecked_intra(qubits, matrix, intra);
                }
                BoundOp::Gate(gate) if parallel => state
                    .apply_gate_intra(gate, intra)
                    .expect("gates validated at bind time"),
                BoundOp::Gate(gate) => {
                    // Bound raw gates are always diagonal/permutation
                    // specialisations (dense gates were fused into groups),
                    // and bind validated their operands — dispatch without
                    // re-validation so replay never touches the heap.
                    if !state.apply_gate_specialized(gate) {
                        state
                            .apply_gate(gate)
                            .expect("gates validated at bind time");
                    }
                }
            }
        }
    }
}

impl FusedCircuit {
    /// Binds `params` into the fused program, resolving every dynamic group
    /// matrix and raw parametric gate exactly once. See
    /// [`BoundFusedCircuit`] for when this pays.
    ///
    /// # Errors
    /// Surfaces unbound-parameter and malformed-operand errors immediately
    /// (instead of at every execution, as the unbound path must).
    pub fn bind(&self, params: &[f64]) -> Result<BoundFusedCircuit, SimError> {
        let mut ops = Vec::with_capacity(self.program.len() - self.prefix_len);
        for op in &self.program[self.prefix_len..] {
            ops.push(match op {
                FusedOp::Static { qubits, matrix } => BoundOp::Unitary {
                    qubits: qubits.clone(),
                    matrix: matrix.clone(),
                },
                FusedOp::Dynamic { qubits, ops } => {
                    let mut matrix = ZERO_GROUP_MATRIX;
                    fuse_group_into(qubits, ops, params, &mut matrix)?;
                    let size = 1usize << qubits.len();
                    BoundOp::Unitary {
                        qubits: qubits.clone(),
                        matrix: matrix[..size * size].to_vec(),
                    }
                }
                FusedOp::Raw(op) => {
                    let gate = op.bind(params)?;
                    // Reject malformed operands now, not at replay.
                    let qubits = gate.qubits();
                    if let Some(&dup) = qubits
                        .iter()
                        .find(|&&q| qubits.iter().filter(|&&o| o == q).count() > 1)
                    {
                        return Err(SimError::DuplicateQubit(dup));
                    }
                    if let Some(&oob) = qubits.iter().find(|&&q| q >= self.num_qubits()) {
                        return Err(SimError::QubitOutOfRange {
                            qubit: oob,
                            num_qubits: self.num_qubits(),
                        });
                    }
                    BoundOp::Gate(gate)
                }
            });
        }
        Ok(BoundFusedCircuit {
            num_qubits: self.num_qubits(),
            prefix_state: self.prefix_state.clone(),
            ops,
        })
    }
}

/// Bitmask over qubit indices (the simulator caps registers at 26 qubits,
/// well within u64).
fn support_mask(qubits: &[usize]) -> u64 {
    qubits.iter().fold(0u64, |m, &q| m | (1u64 << q))
}

/// The gate whose fusion behaviour/cost classifies this operation (for
/// parametric ops, the template — behaviour never depends on the angle).
fn template_of(op: &Operation) -> Gate {
    match op {
        Operation::Fixed(g) => g.clone(),
        Operation::Parametric { template, .. } => template.clone(),
    }
}

fn has_duplicates(qubits: &[usize]) -> bool {
    for i in 0..qubits.len() {
        for j in (i + 1)..qubits.len() {
            if qubits[i] == qubits[j] {
                return true;
            }
        }
    }
    false
}

/// Multiplies a group of operations into one flat row-major `2^k × 2^k`
/// matrix over the support `qubits` (first entry = least-significant matrix
/// bit), binding parametric gates against `params`.
/// Scratch large enough for any fused-group matrix (`4^MAX_FUSED_QUBITS`
/// entries): lives on the caller's stack so per-bind rebuilds allocate
/// nothing.
type GroupMatrix = [Complex; 1 << (2 * MAX_FUSED_QUBITS)];

const ZERO_GROUP_MATRIX: GroupMatrix = [Complex::ZERO; 1 << (2 * MAX_FUSED_QUBITS)];

/// Multiplies a group of operations into `out[..4^k]` (flat row-major) over
/// the support `qubits`, binding parametric gates against `params`.
fn fuse_group_into(
    qubits: &[usize],
    ops: &[Operation],
    params: &[f64],
    out: &mut GroupMatrix,
) -> Result<(), SimError> {
    let k = qubits.len();
    debug_assert!(k <= MAX_FUSED_QUBITS && MAX_FUSED_QUBITS <= MAX_DENSE_QUBITS);
    let size = 1usize << k;
    // Accumulate column-major: column c (the image of basis state |c⟩ under
    // the product so far) occupies acc[c*size .. (c+1)*size]; each gate is
    // applied to every column as a k-qubit mini statevector.
    let mut acc = ZERO_GROUP_MATRIX;
    for c in 0..size {
        acc[c * size + c] = Complex::ONE;
    }
    let mut positions = [0usize; MAX_FUSED_QUBITS];
    for op in ops {
        let gate = op.bind(params)?;
        let gate_qubits = gate.qubits();
        let g = gate_qubits.len();
        for (slot, q) in positions.iter_mut().zip(gate_qubits.iter()) {
            *slot = qubits
                .iter()
                .position(|gq| gq == q)
                .expect("gate qubit must be inside its group support");
        }
        // Per-gate index tables, shared by all columns.
        let gsize = 1usize << g;
        let mut offs = [0usize; 1 << MAX_FUSED_QUBITS];
        for (sub, off) in offs[..gsize].iter_mut().enumerate() {
            let mut o = 0usize;
            for (bit, &p) in positions[..g].iter().enumerate() {
                if sub & (1 << bit) != 0 {
                    o |= 1 << p;
                }
            }
            *off = o;
        }
        let full_mask: usize = positions[..g].iter().map(|&p| 1usize << p).sum();
        let m = gate.matrix();
        for c in 0..size {
            apply_small_unitary(
                &mut acc[c * size..(c + 1) * size],
                &offs[..gsize],
                full_mask,
                m.as_slice(),
            );
        }
    }
    // Transpose into the caller's row-major buffer.
    for c in 0..size {
        for r in 0..size {
            out[r * size + c] = acc[c * size + r];
        }
    }
    Ok(())
}

/// Heap-allocating wrapper around [`fuse_group_into`], used at compile time
/// to bake parameter-free groups.
fn fuse_group(
    qubits: &[usize],
    ops: &[Operation],
    params: &[f64],
) -> Result<Vec<Complex>, SimError> {
    let mut scratch = ZERO_GROUP_MATRIX;
    fuse_group_into(qubits, ops, params, &mut scratch)?;
    Ok(scratch[..(1 << qubits.len()) * (1 << qubits.len())].to_vec())
}

/// Applies a small gate matrix to a dense mini statevector in place, given
/// the precomputed per-basis-state offsets `offs` (length = the gate's
/// matrix dimension) and the OR of its position masks.
fn apply_small_unitary(vec: &mut [Complex], offs: &[usize], full_mask: usize, m: &[Complex]) {
    let gsize = offs.len();
    debug_assert_eq!(m.len(), gsize * gsize);
    let mut scratch = [Complex::ZERO; 1 << MAX_FUSED_QUBITS];
    for base in 0..vec.len() {
        if base & full_mask != 0 {
            continue;
        }
        for (slot, &off) in scratch[..gsize].iter_mut().zip(offs.iter()) {
            *slot = vec[base | off];
        }
        for (row, &off) in offs.iter().enumerate() {
            let mrow = &m[row * gsize..(row + 1) * gsize];
            let mut acc = Complex::ZERO;
            for (col, &amp) in scratch[..gsize].iter().enumerate() {
                acc += mrow[col] * amp;
            }
            vec[base | off] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    fn assert_states_close(a: &StateVector, b: &StateVector, tol: f64) {
        for (x, y) in a.to_amplitudes().iter().zip(b.to_amplitudes().iter()) {
            assert!(x.approx_eq(*y, tol), "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn fused_bell_circuit_matches_unfused() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let fused = FusedCircuit::compile(&c);
        // CNOT keeps its multiply-free permutation path (fusing it into a
        // dense 4×4 would cost more than H's 2×2 sweep plus the swap pass);
        // H is precomputed as a static 2×2.
        assert_eq!(fused.num_fused_ops(), 2);
        assert_eq!(fused.num_static_ops(), 1);
        assert_states_close(&fused.execute(&[]).unwrap(), &c.execute(&[]).unwrap(), TOL);
    }

    #[test]
    fn dense_runs_absorb_cheap_gates_on_covered_qubits() {
        // X(0) then RY(0), RZ(0): the cheap X is absorbed into the dense
        // same-qubit run for free, one 2×2 sweep total.
        let mut c = Circuit::new(1);
        c.x(0).ry(0, 0.8).rz(0, -0.3);
        let fused = FusedCircuit::compile(&c);
        assert_eq!(fused.num_fused_ops(), 1);
        assert_eq!(fused.num_static_ops(), 1);
        assert_states_close(&fused.execute(&[]).unwrap(), &c.execute(&[]).unwrap(), TOL);
    }

    #[test]
    fn lone_cheap_gates_stay_on_their_specialised_paths() {
        let mut c = Circuit::new(3);
        c.x(0);
        c.cswap(0, 1, 2);
        c.push(Gate::Cz {
            control: 1,
            target: 2,
        });
        let fused = FusedCircuit::compile(&c);
        assert_eq!(fused.num_fused_ops(), 3);
        assert_eq!(fused.num_static_ops(), 0, "no dense matrices needed");
        assert_states_close(&fused.execute(&[]).unwrap(), &c.execute(&[]).unwrap(), TOL);
    }

    #[test]
    fn fused_parametric_circuit_rebinds() {
        let mut c = Circuit::new(2);
        c.ry_param(0, 0).rz_param(0, 1).ry_param(1, 2).cnot(0, 1);
        let fused = FusedCircuit::compile(&c);
        assert!(fused.num_fused_ops() < c.gate_count());
        for params in [vec![0.3, 1.2, -0.7], vec![2.0, 0.0, 0.5]] {
            assert_states_close(
                &fused.execute(&params).unwrap(),
                &c.execute(&params).unwrap(),
                TOL,
            );
        }
    }

    #[test]
    fn swap_test_style_circuit_fuses_and_matches() {
        // Ancilla + two 2-qubit registers: the QuClassi Fig. 7 shape.
        let mut c = Circuit::new(5);
        c.h(0);
        for q in 1..=4 {
            c.ry(q, 0.2 + 0.1 * q as f64).rz(q, 0.4 - 0.05 * q as f64);
        }
        c.cswap(0, 1, 3).cswap(0, 2, 4).h(0);
        let fused = FusedCircuit::compile(&c);
        // 12 gates collapse to ≤ 7 instructions: the rotation runs fuse into
        // 2-qubit blocks, the CSWAPs keep their permutation paths.
        assert!(
            fused.num_fused_ops() <= 7,
            "expected heavy fusion, got {} ops for {} gates",
            fused.num_fused_ops(),
            c.gate_count()
        );
        assert!(fused.max_group_span() <= MAX_FUSED_QUBITS);
        assert_states_close(
            &fused.execute(&[]).unwrap(),
            &c.execute(&[]).unwrap(),
            1e-10,
        );
    }

    #[test]
    fn fusion_preserves_norm() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3);
        c.cnot(0, 1).cnot(1, 2).cnot(2, 3);
        c.ry(0, 1.1).rz(1, -0.3).rx(2, 2.7);
        c.cswap(0, 1, 2);
        let fused = FusedCircuit::compile(&c);
        let sv = fused.execute(&[]).unwrap();
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_circuit_compiles_to_nothing() {
        let c = Circuit::new(3);
        let fused = FusedCircuit::compile(&c);
        assert_eq!(fused.num_fused_ops(), 0);
        assert_eq!(fused.max_group_span(), 0);
        let sv = fused.execute(&[]).unwrap();
        assert_eq!(sv.amplitude(0), Complex::ONE);
    }

    #[test]
    fn malformed_gate_errors_instead_of_misindexing() {
        // Circuit::push validates ranges but not duplicates; fusion must
        // surface the duplicate-operand error, not fold it into a matrix.
        let mut c = Circuit::new(2);
        c.push(Gate::Swap(1, 1));
        let fused = FusedCircuit::compile(&c);
        assert_eq!(fused.execute(&[]), Err(SimError::DuplicateQubit(1)));
    }

    #[test]
    fn unbound_parameter_errors_at_execute() {
        let mut c = Circuit::new(1);
        c.ry_param(0, 3);
        let fused = FusedCircuit::compile(&c);
        assert!(matches!(
            fused.execute(&[0.1]),
            Err(SimError::UnboundParameter { .. })
        ));
    }

    #[test]
    fn execute_into_checks_register_width() {
        let mut c = Circuit::new(2);
        c.h(0);
        let fused = FusedCircuit::compile(&c);
        let mut sv = StateVector::zero_state(3);
        assert!(matches!(
            fused.execute_into(&mut sv, &[]),
            Err(SimError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn every_gate_variant_declares_fusion_behavior() {
        // Companion to the exhaustive match in `fusion_behavior`: spot-check
        // representative variants of each arity.
        for g in [
            Gate::H(0),
            Gate::Ry(0, 0.5),
            Gate::Cnot {
                control: 0,
                target: 1,
            },
            Gate::Rzz(0, 1, 0.3),
            Gate::CSwap {
                control: 0,
                a: 1,
                b: 2,
            },
        ] {
            assert!(is_fusible(&g), "{} should be fusible", g.name());
        }
    }

    #[test]
    fn bound_circuit_matches_fused_execution_bit_for_bit() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.ry_param(1, 0).rz_param(1, 1).ry_param(2, 2);
        c.cswap(0, 1, 2).h(0);
        let fused = FusedCircuit::compile(&c);
        for params in [vec![0.7, -0.2, 1.9], vec![0.0, 3.1, -2.4]] {
            let bound = fused.bind(&params).unwrap();
            assert_eq!(bound.num_qubits(), 3);
            assert!(bound.num_bound_ops() <= fused.num_fused_ops());
            let direct = fused.execute(&params).unwrap();
            // Repeated replays are free of rebinding and identical.
            assert_eq!(bound.execute(), direct);
            assert_eq!(bound.execute(), direct);
        }
    }

    #[test]
    fn bind_surfaces_errors_eagerly() {
        let mut c = Circuit::new(1);
        c.ry_param(0, 3);
        let fused = FusedCircuit::compile(&c);
        assert!(matches!(
            fused.bind(&[0.1]),
            Err(SimError::UnboundParameter { .. })
        ));
        let mut c = Circuit::new(2);
        c.push(Gate::Swap(1, 1));
        let fused = FusedCircuit::compile(&c);
        assert_eq!(fused.bind(&[]).err(), Some(SimError::DuplicateQubit(1)));
    }

    #[test]
    fn bound_execute_into_checks_width_and_skips_prelude_state() {
        let mut c = Circuit::new(2);
        c.h(0).ry_param(1, 0);
        let fused = FusedCircuit::compile(&c);
        let bound = fused.bind(&[1.3]).unwrap();
        let mut wrong = StateVector::zero_state(3);
        assert!(matches!(
            bound.execute_into(&mut wrong),
            Err(SimError::DimensionMismatch { .. })
        ));
        // execute_into replays only the non-prelude remainder, matching the
        // fused execute_into contract for states that already saw the prelude.
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::H(0)).unwrap();
        bound.execute_into(&mut sv).unwrap();
        assert_states_close(&sv, &fused.execute(&[1.3]).unwrap(), TOL);
    }

    #[test]
    fn long_random_like_circuit_matches_unfused() {
        let mut c = Circuit::new(4);
        let gates = [
            Gate::H(0),
            Gate::Ry(1, 0.37),
            Gate::Cnot {
                control: 1,
                target: 2,
            },
            Gate::Rzz(2, 3, 0.91),
            Gate::CSwap {
                control: 0,
                a: 2,
                b: 3,
            },
            Gate::Rx(3, -1.2),
            Gate::T(0),
            Gate::Swap(1, 3),
            Gate::CRy {
                control: 3,
                target: 0,
                theta: 2.2,
            },
            Gate::Sdg(2),
        ];
        for g in &gates {
            c.push(g.clone());
        }
        let fused = FusedCircuit::compile(&c);
        assert!(fused.num_fused_ops() < gates.len());
        assert_states_close(
            &fused.execute(&[]).unwrap(),
            &c.execute(&[]).unwrap(),
            1e-10,
        );
    }
}
