//! Error types for the simulator crate.

use std::fmt;

/// Errors produced by the state-vector / density-matrix simulator.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// A qubit index was outside the register.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The register size.
        num_qubits: usize,
    },
    /// The same qubit was passed twice to a multi-qubit gate.
    DuplicateQubit(usize),
    /// Two states (or a state and an operator) had incompatible sizes.
    DimensionMismatch {
        /// Expected number of qubits.
        expected: usize,
        /// Number of qubits found.
        found: usize,
    },
    /// A state vector or density matrix failed validation.
    InvalidState(String),
    /// A circuit referenced a symbolic parameter that was not bound.
    UnboundParameter {
        /// Index of the missing parameter.
        index: usize,
        /// Number of values provided at bind time.
        provided: usize,
    },
    /// A noise-model probability was outside [0, 1].
    InvalidProbability(f64),
    /// The requested operation is not supported by this backend.
    Unsupported(String),
    /// Routing / transpilation failed (e.g. disconnected coupling map).
    Routing(String),
    /// A runtime configuration value (environment variable, executor
    /// setting) was present but invalid. Rejected loudly instead of being
    /// silently replaced by a default: a typo in a deployment knob like
    /// `QUCLASSI_THREADS` must not degrade a server to an unintended
    /// configuration.
    InvalidConfiguration(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for a {num_qubits}-qubit register"
                )
            }
            SimError::DuplicateQubit(q) => write!(f, "duplicate qubit operand {q}"),
            SimError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} qubits, found {found}"
                )
            }
            SimError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            SimError::UnboundParameter { index, provided } => write!(
                f,
                "circuit parameter {index} is unbound ({provided} values were provided)"
            ),
            SimError::InvalidProbability(p) => {
                write!(f, "probability {p} is outside the interval [0, 1]")
            }
            SimError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            SimError::Routing(msg) => write!(f, "routing error: {msg}"),
            SimError::InvalidConfiguration(msg) => {
                write!(f, "invalid configuration: {msg}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(SimError, &str)> = vec![
            (
                SimError::QubitOutOfRange {
                    qubit: 7,
                    num_qubits: 5,
                },
                "qubit 7",
            ),
            (SimError::DuplicateQubit(3), "duplicate"),
            (
                SimError::DimensionMismatch {
                    expected: 4,
                    found: 2,
                },
                "dimension mismatch",
            ),
            (SimError::InvalidState("bad".into()), "invalid state"),
            (
                SimError::UnboundParameter {
                    index: 2,
                    provided: 1,
                },
                "unbound",
            ),
            (SimError::InvalidProbability(1.5), "probability"),
            (SimError::Unsupported("x".into()), "unsupported"),
            (SimError::Routing("no path".into()), "routing"),
            (
                SimError::InvalidConfiguration("QUCLASSI_THREADS".into()),
                "invalid configuration",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg} should contain {needle}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_e: &E) {}
        assert_error(&SimError::DuplicateQubit(0));
    }
}
