//! State-vector representation of a pure quantum state and in-place gate
//! application.
//!
//! A register of `n` qubits is a vector of `2^n` complex amplitudes. Qubit 0
//! is the least-significant bit of the basis-state index. Gate application is
//! performed in place without ever materialising the full `2^n × 2^n`
//! unitary: single- and two-qubit gates use specialised strided loops, and a
//! general k-qubit path handles everything else (CSWAP in particular).
//!
//! # Memory layout: structure of arrays
//!
//! Amplitudes are stored as two parallel `Vec<f64>` halves — all real parts
//! in [`StateVector::re_parts`], all imaginary parts in
//! [`StateVector::im_parts`] — rather than one `Vec<Complex>` of interleaved
//! pairs. Every kernel below sweeps the two halves with stride-aligned slice
//! loops (`chunks_exact_mut` + `split_at_mut`), which keeps the inner loops
//! free of bounds checks and index arithmetic so the compiler can
//! autovectorise them: each SIMD lane holds consecutive real (or imaginary)
//! parts, and the complex butterfly becomes a handful of fused
//! multiply-add sweeps over contiguous `f64` data. [`Complex`] remains the
//! interchange type at the API boundary ([`StateVector::to_amplitudes`],
//! [`StateVector::from_amplitudes`], gate matrices).

use crate::complex::Complex;
use crate::error::SimError;
use crate::gate::Gate;
use crate::intra::IntraThreads;
use crate::linalg::CMatrix;
use crate::partition::SegPlan;
use rand::Rng;

/// Largest qubit count accepted by the dense-unitary kernels
/// ([`StateVector::apply_k_qubit_matrix`] and fused-circuit execution):
/// scratch buffers are stack-allocated at `2^MAX_DENSE_QUBITS`.
pub const MAX_DENSE_QUBITS: usize = 6;

/// log2 of the cache-block work unit shared by every intra-circuit
/// parallel surface: reduction-tree leaves, elementwise sweep chunks, and
/// the segment partitioner's preferred segment size. 2^12 amplitudes =
/// 64 KiB — big enough to amortise dispatch, small enough to balance.
/// Keeping one constant prevents the three surfaces from drifting apart.
pub(crate) const CACHE_BLOCK_BITS: usize = 12;

/// Leaf size (in amplitudes) of the fixed pairwise reduction tree used by
/// [`StateVector::inner_product`] and [`StateVector::probability_of_one`].
///
/// Registers at or below this size reduce with a plain sequential fold;
/// larger registers reduce chunk-by-chunk and combine the partial sums in
/// a balanced binary tree. The tree's shape depends **only on the register
/// size** — never on a thread count — so sequential and parallel
/// reductions produce bit-identical results.
pub const REDUCTION_CHUNK: usize = 1 << CACHE_BLOCK_BITS;

/// A pure quantum state on `n` qubits, stored as `2^n` amplitudes split
/// into structure-of-arrays real/imaginary halves (see the module docs).
#[derive(Debug, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl Clone for StateVector {
    fn clone(&self) -> Self {
        StateVector {
            num_qubits: self.num_qubits,
            re: self.re.clone(),
            im: self.im.clone(),
        }
    }

    /// Copies `source` into `self`, reusing the existing amplitude buffers
    /// whenever their capacity suffices. This is what lets replay loops
    /// (e.g. [`crate::fusion::BoundFusedCircuit::execute_reusing`]) start
    /// every execution from a prelude state without a per-execution heap
    /// allocation.
    fn clone_from(&mut self, source: &Self) {
        self.num_qubits = source.num_qubits;
        self.re.clone_from(&source.re);
        self.im.clone_from(&source.im);
    }
}

impl StateVector {
    /// Creates the all-zeros state |0…0⟩ on `num_qubits` qubits.
    ///
    /// # Panics
    /// Panics if `num_qubits` is 0 or larger than 26 (the simulator refuses
    /// to allocate more than a gibi-amplitude register).
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(
            (1..=26).contains(&num_qubits),
            "unsupported qubit count: {num_qubits}"
        );
        let dim = 1usize << num_qubits;
        let mut re = vec![0.0; dim];
        re[0] = 1.0;
        StateVector {
            num_qubits,
            re,
            im: vec![0.0; dim],
        }
    }

    /// Creates a state from raw amplitudes.
    ///
    /// The length must be a power of two and the vector must be normalised
    /// to within `1e-6`.
    pub fn from_amplitudes(amplitudes: Vec<Complex>) -> Result<Self, SimError> {
        let len = amplitudes.len();
        if len < 2 || !len.is_power_of_two() {
            return Err(SimError::InvalidState(format!(
                "amplitude vector length {len} is not a power of two >= 2"
            )));
        }
        let norm: f64 = amplitudes.iter().map(|a| a.norm_sqr()).sum();
        if (norm - 1.0).abs() > 1e-6 {
            return Err(SimError::InvalidState(format!(
                "amplitude vector is not normalised (norm² = {norm})"
            )));
        }
        Ok(StateVector {
            num_qubits: len.trailing_zeros() as usize,
            re: amplitudes.iter().map(|a| a.re).collect(),
            im: amplitudes.iter().map(|a| a.im).collect(),
        })
    }

    /// Creates a basis state |index⟩ on `num_qubits` qubits.
    pub fn basis_state(num_qubits: usize, index: usize) -> Result<Self, SimError> {
        if index >= (1 << num_qubits) {
            return Err(SimError::InvalidState(format!(
                "basis index {index} out of range for {num_qubits} qubits"
            )));
        }
        let mut sv = StateVector::zero_state(num_qubits);
        sv.re[0] = 0.0;
        sv.re[index] = 1.0;
        Ok(sv)
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Dimension of the state (2^n).
    pub fn dim(&self) -> usize {
        self.re.len()
    }

    /// The real parts of the amplitudes, in basis-state order.
    pub fn re_parts(&self) -> &[f64] {
        &self.re
    }

    /// The imaginary parts of the amplitudes, in basis-state order.
    pub fn im_parts(&self) -> &[f64] {
        &self.im
    }

    /// The amplitude of basis state `index`.
    ///
    /// # Panics
    /// Panics if `index >= self.dim()`.
    pub fn amplitude(&self, index: usize) -> Complex {
        Complex::new(self.re[index], self.im[index])
    }

    /// Materialises the amplitudes as one `Vec<Complex>` (allocates; the
    /// statevector itself stores split re/im halves — see the module docs).
    pub fn to_amplitudes(&self) -> Vec<Complex> {
        self.re
            .iter()
            .zip(self.im.iter())
            .map(|(&r, &i)| Complex::new(r, i))
            .collect()
    }

    /// Resets the register to |0…0⟩ in place, without reallocating.
    pub fn reset_zero(&mut self) {
        self.re.fill(0.0);
        self.im.fill(0.0);
        self.re[0] = 1.0;
    }

    /// The squared norm of the state (should always be ≈ 1).
    pub fn norm_sqr(&self) -> f64 {
        let mut acc = 0.0;
        for (&r, &i) in self.re.iter().zip(self.im.iter()) {
            acc += r * r + i * i;
        }
        acc
    }

    /// Renormalises the state (useful after noisy trajectory jumps).
    pub fn renormalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        if n > 0.0 {
            for r in &mut self.re {
                *r /= n;
            }
            for i in &mut self.im {
                *i /= n;
            }
        }
    }

    /// Inner product ⟨self|other⟩.
    ///
    /// Registers larger than [`REDUCTION_CHUNK`] amplitudes sum through a
    /// fixed pairwise tree (leaf folds combined by balanced halving) whose
    /// shape is a pure function of the register size, so
    /// [`StateVector::inner_product_with`] can compute the identical bits
    /// on any number of threads.
    pub fn inner_product(&self, other: &StateVector) -> Result<Complex, SimError> {
        if self.num_qubits != other.num_qubits {
            return Err(SimError::DimensionMismatch {
                expected: self.num_qubits,
                found: other.num_qubits,
            });
        }
        Ok(inner_product_tree(&self.re, &self.im, &other.re, &other.im))
    }

    /// [`StateVector::inner_product`] with the leaf sums of the reduction
    /// tree fanned out over an intra-circuit thread budget. Bit-identical
    /// to the sequential path for any thread count: only *who computes*
    /// each leaf changes, never the tree shape.
    pub fn inner_product_with(
        &self,
        other: &StateVector,
        intra: &IntraThreads,
    ) -> Result<Complex, SimError> {
        if self.num_qubits != other.num_qubits {
            return Err(SimError::DimensionMismatch {
                expected: self.num_qubits,
                found: other.num_qubits,
            });
        }
        if !intra.parallelizes(self.num_qubits) || self.dim() <= REDUCTION_CHUNK {
            return Ok(inner_product_tree(&self.re, &self.im, &other.re, &other.im));
        }
        let leaves = self.dim() / REDUCTION_CHUNK;
        let partials = intra.pool().scoped_map((0..leaves).collect(), |_, leaf| {
            let lo = leaf * REDUCTION_CHUNK;
            let hi = lo + REDUCTION_CHUNK;
            inner_product_leaf(
                &self.re[lo..hi],
                &self.im[lo..hi],
                &other.re[lo..hi],
                &other.im[lo..hi],
            )
        });
        Ok(combine_complex(&partials))
    }

    /// State fidelity |⟨self|other⟩|² between two pure states.
    pub fn fidelity(&self, other: &StateVector) -> Result<f64, SimError> {
        Ok(self.inner_product(other)?.norm_sqr())
    }

    /// [`StateVector::fidelity`] with the inner product's leaf sums fanned
    /// out over an intra-circuit thread budget (bit-identical for any
    /// thread count).
    pub fn fidelity_with(
        &self,
        other: &StateVector,
        intra: &IntraThreads,
    ) -> Result<f64, SimError> {
        Ok(self.inner_product_with(other, intra)?.norm_sqr())
    }

    /// Tensor product `self ⊗ other`; `other`'s qubits become the new
    /// low-order qubits.
    pub fn tensor(&self, other: &StateVector) -> StateVector {
        let dim = self.dim() * other.dim();
        let mut re = vec![0.0; dim];
        let mut im = vec![0.0; dim];
        for i in 0..self.dim() {
            let (ar, ai) = (self.re[i], self.im[i]);
            if ar == 0.0 && ai == 0.0 {
                continue;
            }
            let base = i * other.dim();
            for j in 0..other.dim() {
                let (br, bi) = (other.re[j], other.im[j]);
                re[base + j] = ar * br - ai * bi;
                im[base + j] = ar * bi + ai * br;
            }
        }
        StateVector {
            num_qubits: self.num_qubits + other.num_qubits,
            re,
            im,
        }
    }

    /// Checks that every listed qubit is in range and no qubit repeats.
    fn validate_qubits(&self, qubits: &[usize]) -> Result<(), SimError> {
        for &q in qubits {
            if q >= self.num_qubits {
                return Err(SimError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        for i in 0..qubits.len() {
            for j in (i + 1)..qubits.len() {
                if qubits[i] == qubits[j] {
                    return Err(SimError::DuplicateQubit(qubits[i]));
                }
            }
        }
        Ok(())
    }

    /// Applies a gate in place.
    ///
    /// # Errors
    /// Returns an error if any operand qubit is out of range or duplicated.
    pub fn apply_gate(&mut self, gate: &Gate) -> Result<(), SimError> {
        let qubits = gate.qubits();
        self.validate_qubits(&qubits)?;
        if !self.apply_gate_specialized(gate) {
            self.apply_unitary_unchecked(&qubits, gate.matrix().as_slice());
        }
        Ok(())
    }

    /// Applies a gate that has a multiply-free diagonal/permutation
    /// specialisation, skipping operand validation and without touching
    /// the heap (no operand-vector or matrix construction). Returns `false`
    /// for dense gates, which need their matrix built.
    ///
    /// Callers guarantee the operands are distinct and in range — this is
    /// the replay path of circuits whose gates were validated at bind time.
    pub(crate) fn apply_gate_specialized(&mut self, gate: &Gate) -> bool {
        match gate {
            Gate::I(_) => {}
            Gate::X(q) => self.apply_x(*q),
            Gate::Z(q) => self.apply_phase_flip(*q, Complex::from_real(-1.0)),
            Gate::S(q) => self.apply_phase_flip(*q, Complex::I),
            Gate::Sdg(q) => self.apply_phase_flip(*q, Complex::new(0.0, -1.0)),
            Gate::T(q) => self.apply_phase_flip(*q, Complex::cis(std::f64::consts::FRAC_PI_4)),
            Gate::Tdg(q) => self.apply_phase_flip(*q, Complex::cis(-std::f64::consts::FRAC_PI_4)),
            Gate::Swap(a, b) => self.apply_swap(*a, *b),
            Gate::Cnot { control, target } => self.apply_cnot(*control, *target),
            Gate::Cz { control, target } => self.apply_cz(*control, *target),
            Gate::CSwap { control, a, b } => self.apply_cswap(*control, *a, *b),
            _ => return false,
        }
        crate::profile::specialized_sweep(gate, self.dim() as u64);
        true
    }

    /// [`StateVector::apply_gate`] under an intra-circuit thread budget:
    /// above the budget's qubit threshold the sweep is split into disjoint
    /// segment groups and fanned out over the scoped pool. Results are
    /// bit-identical to the sequential path for any thread count (gate
    /// kernels are elementwise or permutational per disjoint amplitude
    /// group — parallelism only changes which thread sweeps which group).
    pub(crate) fn apply_gate_intra(
        &mut self,
        gate: &Gate,
        intra: &IntraThreads,
    ) -> Result<(), SimError> {
        if !intra.parallelizes(self.num_qubits) {
            return self.apply_gate(gate);
        }
        let qubits = gate.qubits();
        self.validate_qubits(&qubits)?;
        if !self.apply_gate_specialized_intra(gate, intra) {
            self.apply_unitary_unchecked_intra(&qubits, gate.matrix().as_slice(), intra);
        }
        Ok(())
    }

    /// Parallel counterpart of [`StateVector::apply_gate_specialized`]:
    /// diagonal gates sweep contiguous chunks, permutation gates sweep
    /// segment groups. Falls back to the sequential specialisation when no
    /// useful decomposition exists.
    fn apply_gate_specialized_intra(&mut self, gate: &Gate, intra: &IntraThreads) -> bool {
        match gate {
            Gate::I(_) => {}
            Gate::X(q) => {
                let bit = 1usize << *q;
                if !self.par_permutation(&[*q], intra, |g| (g & bit == 0).then_some(g | bit)) {
                    self.apply_x(*q);
                }
            }
            Gate::Z(q) => self.par_phase_flip(*q, Complex::from_real(-1.0), intra),
            Gate::S(q) => self.par_phase_flip(*q, Complex::I, intra),
            Gate::Sdg(q) => self.par_phase_flip(*q, Complex::new(0.0, -1.0), intra),
            Gate::T(q) => self.par_phase_flip(*q, Complex::cis(std::f64::consts::FRAC_PI_4), intra),
            Gate::Tdg(q) => {
                self.par_phase_flip(*q, Complex::cis(-std::f64::consts::FRAC_PI_4), intra)
            }
            Gate::Swap(a, b) => {
                let (ba, bb) = (1usize << *a, 1usize << *b);
                if !self.par_permutation(&[*a, *b], intra, |g| {
                    (g & ba != 0 && g & bb == 0).then_some((g & !ba) | bb)
                }) {
                    self.apply_swap(*a, *b);
                }
            }
            Gate::Cnot { control, target } => {
                let (cb, tb) = (1usize << *control, 1usize << *target);
                if !self.par_permutation(&[*target], intra, |g| {
                    (g & cb != 0 && g & tb == 0).then_some(g | tb)
                }) {
                    self.apply_cnot(*control, *target);
                }
            }
            Gate::Cz { control, target } => {
                let (lo, hi) = (
                    1usize << (*control).min(*target),
                    1usize << (*control).max(*target),
                );
                self.par_chunks(intra, move |base, rc, ic| cz_slices(rc, ic, base, lo, hi));
            }
            Gate::CSwap { control, a, b } => {
                let (cb, ab, bb) = (1usize << *control, 1usize << *a, 1usize << *b);
                if !self.par_permutation(&[*a, *b], intra, |g| {
                    (g & cb != 0 && g & ab != 0 && g & bb == 0).then_some((g & !ab) | bb)
                }) {
                    self.apply_cswap(*control, *a, *b);
                }
            }
            _ => return false,
        }
        crate::profile::specialized_sweep(gate, self.dim() as u64);
        true
    }

    /// Applies a sequence of gates in order.
    pub fn apply_gates(&mut self, gates: &[Gate]) -> Result<(), SimError> {
        for g in gates {
            self.apply_gate(g)?;
        }
        Ok(())
    }

    fn apply_x(&mut self, q: usize) {
        let bit = 1usize << q;
        for (rc, ic) in self
            .re
            .chunks_exact_mut(bit << 1)
            .zip(self.im.chunks_exact_mut(bit << 1))
        {
            let (r0, r1) = rc.split_at_mut(bit);
            let (i0, i1) = ic.split_at_mut(bit);
            r0.swap_with_slice(r1);
            i0.swap_with_slice(i1);
        }
    }

    fn apply_phase_flip(&mut self, q: usize, phase: Complex) {
        phase_flip_slices(&mut self.re, &mut self.im, 0, 1usize << q, phase);
    }

    fn apply_swap(&mut self, a: usize, b: usize) {
        // Permutation: exchange the |hi=1,lo=0⟩ / |hi=0,lo=1⟩ slice strips.
        let s_lo = 1usize << a.min(b);
        let s_hi = 1usize << a.max(b);
        for arr in [&mut self.re, &mut self.im] {
            for chunk in arr.chunks_exact_mut(s_hi << 1) {
                let (h0, h1) = chunk.split_at_mut(s_hi);
                for (sub0, sub1) in h0
                    .chunks_exact_mut(s_lo << 1)
                    .zip(h1.chunks_exact_mut(s_lo << 1))
                {
                    sub0[s_lo..].swap_with_slice(&mut sub1[..s_lo]);
                }
            }
        }
    }

    fn apply_cnot(&mut self, control: usize, target: usize) {
        let cb = 1usize << control;
        let tb = 1usize << target;
        for arr in [&mut self.re, &mut self.im] {
            if control > target {
                // Upper (control=1) halves of each control block flip the
                // target strips in place.
                for chunk in arr.chunks_exact_mut(cb << 1) {
                    for sub in chunk[cb..].chunks_exact_mut(tb << 1) {
                        let (t0, t1) = sub.split_at_mut(tb);
                        t0.swap_with_slice(t1);
                    }
                }
            } else {
                // Target above control: swap the control=1 strips across the
                // two target halves of each target block.
                for chunk in arr.chunks_exact_mut(tb << 1) {
                    let (t0, t1) = chunk.split_at_mut(tb);
                    for (s0, s1) in t0
                        .chunks_exact_mut(cb << 1)
                        .zip(t1.chunks_exact_mut(cb << 1))
                    {
                        s0[cb..].swap_with_slice(&mut s1[cb..]);
                    }
                }
            }
        }
    }

    fn apply_cz(&mut self, control: usize, target: usize) {
        // Diagonal: flip the sign where both bits are set. No multiplies.
        let lo = 1usize << control.min(target);
        let hi = 1usize << control.max(target);
        cz_slices(&mut self.re, &mut self.im, 0, lo, hi);
    }

    fn apply_cswap(&mut self, control: usize, a: usize, b: usize) {
        // Permutation: swap the |a=1,b=0⟩ / |a=0,b=1⟩ amplitudes where the
        // control bit is set. No multiplies: enumerate the free-bit bases
        // directly and exchange one pair per base.
        let cb = 1usize << control;
        let ab = 1usize << a;
        let bb = 1usize << b;
        let mut pos = [control, a, b];
        pos.sort_unstable();
        for i in 0..self.dim() >> 3 {
            let mut base = i;
            for &p in &pos {
                base = Self::insert_zero_bit(base, p);
            }
            let j0 = base | cb | ab;
            let j1 = base | cb | bb;
            self.re.swap(j0, j1);
            self.im.swap(j0, j1);
        }
    }

    /// Applies an arbitrary 2×2 matrix to one qubit.
    pub fn apply_single_qubit_matrix(&mut self, q: usize, m: &CMatrix) {
        debug_assert_eq!(m.rows(), 2);
        self.apply_unitary1(q, m.as_slice());
    }

    /// Applies an arbitrary 2×2 matrix (given as a flat `[m00, m01, m10,
    /// m11]` array) to qubit `q` of a state whose qubits *above* `q` are all
    /// still |0⟩, sweeping only the `2^(q+1)` active amplitudes instead of
    /// the whole register.
    ///
    /// This is the product-state preparation kernel: building an unentangled
    /// state qubit-by-qubit (e.g. a data-register encoding) costs
    /// `Σ 2^(q+1)` butterfly updates instead of `gates · 2^n`, and taking
    /// the entries as a stack array keeps the per-gate cost heap-free. Each
    /// active amplitude goes through the exact arithmetic of the full sweep
    /// ([`StateVector::apply_single_qubit_matrix`]), so nonzero amplitudes
    /// are bit-identical to full-register application; the only difference
    /// is that amplitudes in the untouched all-zero region keep their exact
    /// `+0.0` representation instead of being rewritten as signed zeros.
    ///
    /// # Contract
    /// The caller promises every qubit `> q` is exactly |0⟩ (all amplitudes
    /// with any higher bit set are zero). Violating it silently computes the
    /// wrong state — the promise is only debug-asserted.
    ///
    /// # Errors
    /// Returns [`SimError::QubitOutOfRange`] when `q` is outside the
    /// register.
    pub fn apply_active_2x2(&mut self, q: usize, m: &[Complex; 4]) -> Result<(), SimError> {
        if q >= self.num_qubits() {
            return Err(SimError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.num_qubits(),
            });
        }
        let step = 1usize << q;
        debug_assert!(
            self.re[step << 1..].iter().all(|&r| r == 0.0)
                && self.im[step << 1..].iter().all(|&i| i == 0.0),
            "apply_active_2x2: qubits above {q} are not |0⟩"
        );
        // The first (and only active) chunk of the apply_unitary1 sweep.
        let (r0, r1) = self.re[..step << 1].split_at_mut(step);
        let (i0, i1) = self.im[..step << 1].split_at_mut(step);
        butterfly1(m, r0, i0, r1, i1);
        Ok(())
    }

    /// [`StateVector::apply_active_2x2`] taking the matrix as a
    /// [`CMatrix`]; see there for the active-prefix contract.
    ///
    /// # Errors
    /// Returns [`SimError::QubitOutOfRange`] when `q` is outside the
    /// register.
    pub fn apply_single_qubit_matrix_active(
        &mut self,
        q: usize,
        m: &CMatrix,
    ) -> Result<(), SimError> {
        debug_assert_eq!(m.rows(), 2);
        let s = m.as_slice();
        self.apply_active_2x2(q, &[s[0], s[1], s[2], s[3]])
    }

    /// Applies a 2×2 matrix to a *fresh* qubit `q` — one whose own
    /// amplitude (and every higher qubit's) is still exactly |0⟩, so only
    /// the first `2^q` amplitudes can be nonzero. The |1⟩ partner of every
    /// active amplitude is then exactly `+0.0`, and the
    /// [`StateVector::apply_active_2x2`] butterfly degenerates to the
    /// matrix's first column: `amp₁ = m₁₀·amp` and `amp₀ = m₀₀·amp`.
    ///
    /// This kernel computes exactly those surviving terms (the same
    /// products, in the same order, as the dense sweep), so every nonzero
    /// output amplitude is bit-identical to `apply_active_2x2`; only the
    /// signed-zero pollution of the skipped `m·0` products differs. It is
    /// the per-qubit step of product-state preparation at a quarter of the
    /// dense butterfly's arithmetic.
    ///
    /// # Contract
    /// The caller promises every qubit `>= q` is exactly |0⟩ (only
    /// amplitudes below `2^q` may be nonzero). Violating it silently
    /// computes the wrong state — the promise is only debug-asserted.
    ///
    /// # Errors
    /// Returns [`SimError::QubitOutOfRange`] when `q` is outside the
    /// register.
    pub fn apply_fresh_2x2(&mut self, q: usize, m: &[Complex; 4]) -> Result<(), SimError> {
        if q >= self.num_qubits() {
            return Err(SimError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.num_qubits(),
            });
        }
        let step = 1usize << q;
        debug_assert!(
            self.re[step..].iter().all(|&r| r == 0.0) && self.im[step..].iter().all(|&i| i == 0.0),
            "apply_fresh_2x2: qubits at and above {q} are not |0⟩"
        );
        let (m00, m10) = (m[0], m[2]);
        let (r0, r1) = self.re[..step << 1].split_at_mut(step);
        let (i0, i1) = self.im[..step << 1].split_at_mut(step);
        for (((r0, i0), r1), i1) in r0
            .iter_mut()
            .zip(i0.iter_mut())
            .zip(r1.iter_mut())
            .zip(i1.iter_mut())
        {
            let (ar, ai) = (*r0, *i0);
            *r1 = m10.re * ar - m10.im * ai;
            *i1 = m10.re * ai + m10.im * ar;
            *r0 = m00.re * ar - m00.im * ai;
            *i0 = m00.re * ai + m00.im * ar;
        }
        Ok(())
    }

    /// Applies the diagonal matrix `diag(d0, d1)` to qubit `q` of a state
    /// whose qubits *above* `q` are all still |0⟩, sweeping only the
    /// `2^(q+1)` active amplitudes.
    ///
    /// A diagonal gate scales each amplitude by one entry; the dense
    /// [`StateVector::apply_active_2x2`] butterfly would additionally
    /// multiply every amplitude by the exact-zero off-diagonal entries.
    /// This kernel computes only the surviving diagonal products — the
    /// same arithmetic, in the same order, as the dense sweep's nonzero
    /// terms — so every nonzero output amplitude is bit-identical to the
    /// butterfly; only the signed-zero pollution of the skipped `0·amp`
    /// products differs. It is the RZ step of product-state preparation at
    /// a quarter of the dense butterfly's arithmetic.
    ///
    /// # Contract
    /// The caller promises every qubit `> q` is exactly |0⟩ (all
    /// amplitudes with any higher bit set are zero). Violating it silently
    /// computes the wrong state — the promise is only debug-asserted.
    ///
    /// # Errors
    /// Returns [`SimError::QubitOutOfRange`] when `q` is outside the
    /// register.
    pub fn apply_active_diag(
        &mut self,
        q: usize,
        d0: Complex,
        d1: Complex,
    ) -> Result<(), SimError> {
        if q >= self.num_qubits() {
            return Err(SimError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.num_qubits(),
            });
        }
        let step = 1usize << q;
        debug_assert!(
            self.re[step << 1..].iter().all(|&r| r == 0.0)
                && self.im[step << 1..].iter().all(|&i| i == 0.0),
            "apply_active_diag: qubits above {q} are not |0⟩"
        );
        let (r0, r1) = self.re[..step << 1].split_at_mut(step);
        let (i0, i1) = self.im[..step << 1].split_at_mut(step);
        for (((r0, i0), r1), i1) in r0
            .iter_mut()
            .zip(i0.iter_mut())
            .zip(r1.iter_mut())
            .zip(i1.iter_mut())
        {
            let (a0r, a0i) = (*r0, *i0);
            let (a1r, a1i) = (*r1, *i1);
            *r0 = d0.re * a0r - d0.im * a0i;
            *i0 = d0.re * a0i + d0.im * a0r;
            *r1 = d1.re * a1r - d1.im * a1i;
            *i1 = d1.re * a1i + d1.im * a1r;
        }
        Ok(())
    }

    /// Applies an arbitrary 4×4 matrix to two qubits (`q0` = least-significant
    /// operand of the matrix).
    pub fn apply_two_qubit_matrix(&mut self, q0: usize, q1: usize, m: &CMatrix) {
        debug_assert_eq!(m.rows(), 4);
        self.apply_unitary2(q0, q1, m.as_slice());
    }

    /// Applies an arbitrary 2^k × 2^k matrix to `k` qubits (first listed qubit
    /// = least-significant bit of the matrix basis).
    ///
    /// # Errors
    /// Returns [`SimError::QubitOutOfRange`] / [`SimError::DuplicateQubit`]
    /// for invalid operand lists (rather than silently misindexing the
    /// register), [`SimError::InvalidState`] when the matrix shape does not
    /// match the qubit count, and [`SimError::Unsupported`] beyond
    /// [`MAX_DENSE_QUBITS`] qubits.
    pub fn apply_k_qubit_matrix(&mut self, qubits: &[usize], m: &CMatrix) -> Result<(), SimError> {
        let k = qubits.len();
        self.validate_qubits(qubits)?;
        if k > MAX_DENSE_QUBITS {
            return Err(SimError::Unsupported(format!(
                "dense unitary application supports at most {MAX_DENSE_QUBITS} qubits, got {k}"
            )));
        }
        if m.rows() != (1 << k) || m.cols() != (1 << k) {
            return Err(SimError::InvalidState(format!(
                "matrix shape {}x{} does not act on {k} qubits",
                m.rows(),
                m.cols()
            )));
        }
        self.apply_unitary_unchecked(qubits, m.as_slice());
        Ok(())
    }

    /// Applies a dense 2^k × 2^k unitary (flat row-major slice) to the listed
    /// qubits without validating operands: callers guarantee distinct,
    /// in-range qubits, `k <= MAX_DENSE_QUBITS` and a matching matrix size.
    /// This is the shared kernel behind gate application and fused-circuit
    /// execution.
    pub(crate) fn apply_unitary_unchecked(&mut self, qubits: &[usize], m: &[Complex]) {
        if !qubits.is_empty() {
            crate::profile::dense_sweep(self.dim() as u64);
        }
        match qubits.len() {
            0 => {}
            1 => self.apply_unitary1(qubits[0], m),
            2 => self.apply_unitary2(qubits[0], qubits[1], m),
            _ => self.apply_unitary_k(qubits, m),
        }
    }

    /// Inserts a zero bit at position `p`, spreading the higher bits up.
    #[inline(always)]
    fn insert_zero_bit(index: usize, p: usize) -> usize {
        let low = index & ((1usize << p) - 1);
        ((index >> p) << (p + 1)) | low
    }

    fn apply_unitary1(&mut self, q: usize, m: &[Complex]) {
        debug_assert_eq!(m.len(), 4);
        let step = 1usize << q;
        let mm = [m[0], m[1], m[2], m[3]];
        // Contiguous slice halves per block: no per-index bit twiddling, no
        // bounds checks, and the inner zip vectorises over the SoA halves.
        for (rc, ic) in self
            .re
            .chunks_exact_mut(step << 1)
            .zip(self.im.chunks_exact_mut(step << 1))
        {
            let (r0, r1) = rc.split_at_mut(step);
            let (i0, i1) = ic.split_at_mut(step);
            butterfly1(&mm, r0, i0, r1, i1);
        }
    }

    /// Conjugates a 4×4 matrix into the natural (hi, lo) slice layout: the
    /// matrix basis puts `q0` on bit 0, so when `q0` is the *higher* wire
    /// the basis bits are swapped once up front and the sweep can use the
    /// same slice layout throughout.
    fn conjugate_two_qubit(q0: usize, lo: usize, m: &[Complex]) -> [Complex; 16] {
        let perm = |x: usize| -> usize {
            if q0 == lo {
                x
            } else {
                ((x & 1) << 1) | (x >> 1)
            }
        };
        let mut mm = [Complex::ZERO; 16];
        for (r, row) in mm.chunks_exact_mut(4).enumerate() {
            for (c, slot) in row.iter_mut().enumerate() {
                *slot = m[perm(r) * 4 + perm(c)];
            }
        }
        mm
    }

    fn apply_unitary2(&mut self, q0: usize, q1: usize, m: &[Complex]) {
        debug_assert_eq!(m.len(), 16);
        let (lo, hi) = (q0.min(q1), q0.max(q1));
        let s_lo = 1usize << lo;
        let s_hi = 1usize << hi;
        let mm = Self::conjugate_two_qubit(q0, lo, m);
        for (rc, ic) in self
            .re
            .chunks_exact_mut(s_hi << 1)
            .zip(self.im.chunks_exact_mut(s_hi << 1))
        {
            let (rh0, rh1) = rc.split_at_mut(s_hi);
            let (ih0, ih1) = ic.split_at_mut(s_hi);
            for (((rs0, is0), rs1), is1) in rh0
                .chunks_exact_mut(s_lo << 1)
                .zip(ih0.chunks_exact_mut(s_lo << 1))
                .zip(rh1.chunks_exact_mut(s_lo << 1))
                .zip(ih1.chunks_exact_mut(s_lo << 1))
            {
                let (r0, r1) = rs0.split_at_mut(s_lo);
                let (i0, i1) = is0.split_at_mut(s_lo);
                let (r2, r3) = rs1.split_at_mut(s_lo);
                let (i2, i3) = is1.split_at_mut(s_lo);
                quartet(&mm, r0, i0, r1, i1, r2, i2, r3, i3);
            }
        }
    }

    fn apply_unitary_k(&mut self, qubits: &[usize], m: &[Complex]) {
        let k = qubits.len();
        debug_assert!(k <= MAX_DENSE_QUBITS);
        let size = 1usize << k;
        debug_assert_eq!(m.len(), size * size);
        // Offset of each matrix basis state within a block: the OR of the
        // qubit masks selected by the basis-index bits.
        let mut offs = [0usize; 1 << MAX_DENSE_QUBITS];
        for (sub, off) in offs[..size].iter_mut().enumerate() {
            let mut o = 0usize;
            for (bit, &q) in qubits.iter().enumerate() {
                if sub & (1 << bit) != 0 {
                    o |= 1 << q;
                }
            }
            *off = o;
        }
        // Ascending bit positions for zero-insertion base enumeration.
        let mut pos = [0usize; MAX_DENSE_QUBITS];
        pos[..k].copy_from_slice(qubits);
        pos[..k].sort_unstable();
        let mut s_re = [0.0f64; 1 << MAX_DENSE_QUBITS];
        let mut s_im = [0.0f64; 1 << MAX_DENSE_QUBITS];
        for i in 0..self.dim() >> k {
            let mut base = i;
            for &p in &pos[..k] {
                base = Self::insert_zero_bit(base, p);
            }
            for (sub, &off) in offs[..size].iter().enumerate() {
                s_re[sub] = self.re[base | off];
                s_im[sub] = self.im[base | off];
            }
            for (row, &off) in offs[..size].iter().enumerate() {
                let (acc_re, acc_im) = krow(
                    &m[row * size..(row + 1) * size],
                    &s_re[..size],
                    &s_im[..size],
                );
                self.re[base | off] = acc_re;
                self.im[base | off] = acc_im;
            }
        }
    }

    /// The parallel counterpart of
    /// [`StateVector::apply_unitary_unchecked`]: the same dense kernel,
    /// with the sweep split into disjoint segment groups dispatched over
    /// the intra-circuit pool. Falls back to the sequential kernels below
    /// the budget's threshold or when no useful decomposition exists, and
    /// reproduces the sequential per-amplitude arithmetic expression
    /// exactly (the leaf sweeps are shared helper functions), so the result
    /// is bit-identical for any thread count.
    pub(crate) fn apply_unitary_unchecked_intra(
        &mut self,
        qubits: &[usize],
        m: &[Complex],
        intra: &IntraThreads,
    ) {
        if !intra.parallelizes(self.num_qubits) {
            return self.apply_unitary_unchecked(qubits, m);
        }
        if !qubits.is_empty() {
            crate::profile::dense_sweep(self.dim() as u64);
        }
        match qubits.len() {
            0 => {}
            1 => {
                if !self.par_unitary1(qubits[0], m, intra) {
                    self.apply_unitary1(qubits[0], m);
                }
            }
            2 => {
                if !self.par_unitary2(qubits[0], qubits[1], m, intra) {
                    self.apply_unitary2(qubits[0], qubits[1], m);
                }
            }
            _ => {
                if !self.par_unitary_k(qubits, m, intra) {
                    self.apply_unitary_k(qubits, m);
                }
            }
        }
    }

    /// Parallel sweep over contiguous cache-block chunk pairs of the SoA
    /// halves: each worker receives `(global_base, re_chunk, im_chunk)`.
    /// Used by the diagonal specialisations (phase flips, CZ).
    fn par_chunks(
        &mut self,
        intra: &IntraThreads,
        f: impl Fn(usize, &mut [f64], &mut [f64]) + Sync,
    ) {
        const CHUNK: usize = 1 << CACHE_BLOCK_BITS;
        let items: Vec<(usize, &mut [f64], &mut [f64])> = self
            .re
            .chunks_mut(CHUNK)
            .zip(self.im.chunks_mut(CHUNK))
            .enumerate()
            .map(|(c, (rc, ic))| (c * CHUNK, rc, ic))
            .collect();
        intra
            .pool()
            .scoped_map(items, |_, (base, rc, ic)| f(base, rc, ic));
    }

    fn par_phase_flip(&mut self, q: usize, phase: Complex, intra: &IntraThreads) {
        let bit = 1usize << q;
        self.par_chunks(intra, move |base, rc, ic| {
            phase_flip_slices(rc, ic, base, bit, phase)
        });
    }

    /// Parallel permutation sweep over segment groups coupling `coupled`
    /// qubits. `pair(g)` returns the swap partner when `g` is a pair's
    /// canonical initiator (so every unordered pair is swapped exactly
    /// once, as in the sequential loops). Returns `false` when no
    /// decomposition exists — the caller then runs the sequential path.
    fn par_permutation(
        &mut self,
        coupled: &[usize],
        intra: &IntraThreads,
        pair: impl Fn(usize) -> Option<usize> + Sync,
    ) -> bool {
        let Some(plan) = SegPlan::plan(self.num_qubits, coupled, intra.threads()) else {
            return false;
        };
        let seg_mask = (1usize << plan.seg_bits) - 1;
        let items = plan.split(&mut self.re, &mut self.im);
        let plan = &plan;
        intra.pool().scoped_map(items, |_, mut item| {
            for si in 0..item.segs.len() {
                let base = item.segs[si].0;
                for i in 0..=seg_mask {
                    let g = base | i;
                    let Some(j) = pair(g) else { continue };
                    // The partner differs from g only in coupled bits, so
                    // it lives inside this item by construction.
                    let sj = plan.seg_of(j);
                    let lj = j & seg_mask;
                    match sj.cmp(&si) {
                        std::cmp::Ordering::Equal => {
                            item.segs[si].1.swap(i, lj);
                            item.segs[si].2.swap(i, lj);
                        }
                        std::cmp::Ordering::Greater => {
                            let (lo, hi) = item.segs.split_at_mut(sj);
                            std::mem::swap(&mut lo[si].1[i], &mut hi[0].1[lj]);
                            std::mem::swap(&mut lo[si].2[i], &mut hi[0].2[lj]);
                        }
                        std::cmp::Ordering::Less => {
                            let (lo, hi) = item.segs.split_at_mut(si);
                            std::mem::swap(&mut lo[sj].1[lj], &mut hi[0].1[i]);
                            std::mem::swap(&mut lo[sj].2[lj], &mut hi[0].2[i]);
                        }
                    }
                }
            }
        });
        true
    }

    /// Parallel single-qubit dense kernel, butterfly-exact with
    /// [`StateVector::apply_unitary1`] (both call [`butterfly1`]).
    fn par_unitary1(&mut self, q: usize, m: &[Complex], intra: &IntraThreads) -> bool {
        debug_assert_eq!(m.len(), 4);
        let Some(plan) = SegPlan::plan(self.num_qubits, &[q], intra.threads()) else {
            return false;
        };
        let mm = [m[0], m[1], m[2], m[3]];
        let step = 1usize << q;
        let peeled = q >= plan.seg_bits;
        let items = plan.split(&mut self.re, &mut self.im);
        intra.pool().scoped_map(items, |_, mut item| {
            if peeled {
                // The operand qubit selects between the item's two
                // segments: zeros in segs[0], ones in segs[1].
                let (zeros, ones) = item.segs.split_at_mut(1);
                let (_, zr, zi) = &mut zeros[0];
                let (_, or, oi) = &mut ones[0];
                butterfly1(&mm, zr, zi, or, oi);
            } else {
                for (_, sr, si) in item.segs.iter_mut() {
                    for (rc, ic) in sr
                        .chunks_exact_mut(step << 1)
                        .zip(si.chunks_exact_mut(step << 1))
                    {
                        let (r0, r1) = rc.split_at_mut(step);
                        let (i0, i1) = ic.split_at_mut(step);
                        butterfly1(&mm, r0, i0, r1, i1);
                    }
                }
            }
        });
        true
    }

    /// Parallel two-qubit dense kernel, expression-exact with
    /// [`StateVector::apply_unitary2`]: the matrix is conjugated into the
    /// (hi, lo) slice layout up front exactly as the sequential sweep does,
    /// and every amplitude quartet goes through the identical [`quartet`]
    /// update.
    fn par_unitary2(&mut self, q0: usize, q1: usize, m: &[Complex], intra: &IntraThreads) -> bool {
        debug_assert_eq!(m.len(), 16);
        let (lo, hi) = (q0.min(q1), q0.max(q1));
        let Some(plan) = SegPlan::plan(self.num_qubits, &[lo, hi], intra.threads()) else {
            return false;
        };
        let s_lo = 1usize << lo;
        let mm = Self::conjugate_two_qubit(q0, lo, m);
        let seg_bits = plan.seg_bits;
        let s_hi = 1usize << hi;
        let items = plan.split(&mut self.re, &mut self.im);
        intra.pool().scoped_map(items, |_, mut item| {
            if hi < seg_bits {
                // Both operands internal: the sequential sweep per segment.
                for (_, sr, si) in item.segs.iter_mut() {
                    for (rc, ic) in sr
                        .chunks_exact_mut(s_hi << 1)
                        .zip(si.chunks_exact_mut(s_hi << 1))
                    {
                        let (rh0, rh1) = rc.split_at_mut(s_hi);
                        let (ih0, ih1) = ic.split_at_mut(s_hi);
                        for (((rs0, is0), rs1), is1) in rh0
                            .chunks_exact_mut(s_lo << 1)
                            .zip(ih0.chunks_exact_mut(s_lo << 1))
                            .zip(rh1.chunks_exact_mut(s_lo << 1))
                            .zip(ih1.chunks_exact_mut(s_lo << 1))
                        {
                            let (r0, r1) = rs0.split_at_mut(s_lo);
                            let (i0, i1) = is0.split_at_mut(s_lo);
                            let (r2, r3) = rs1.split_at_mut(s_lo);
                            let (i2, i3) = is1.split_at_mut(s_lo);
                            quartet(&mm, r0, i0, r1, i1, r2, i2, r3, i3);
                        }
                    }
                }
            } else if lo < seg_bits {
                // hi peeled (segs[0] = hi 0, segs[1] = hi 1), lo internal.
                let (h0, h1) = item.segs.split_at_mut(1);
                let (_, h0r, h0i) = &mut h0[0];
                let (_, h1r, h1i) = &mut h1[0];
                for (((rs0, is0), rs1), is1) in h0r
                    .chunks_exact_mut(s_lo << 1)
                    .zip(h0i.chunks_exact_mut(s_lo << 1))
                    .zip(h1r.chunks_exact_mut(s_lo << 1))
                    .zip(h1i.chunks_exact_mut(s_lo << 1))
                {
                    let (r0, r1) = rs0.split_at_mut(s_lo);
                    let (i0, i1) = is0.split_at_mut(s_lo);
                    let (r2, r3) = rs1.split_at_mut(s_lo);
                    let (i2, i3) = is1.split_at_mut(s_lo);
                    quartet(&mm, r0, i0, r1, i1, r2, i2, r3, i3);
                }
            } else {
                // Both peeled: segs ordered (lo, hi) ascending → indices
                // 0b00, 0b01 (lo set), 0b10 (hi set), 0b11 map onto the
                // (hi, lo) quartet as a00, a01, a10, a11.
                let (left, right) = item.segs.split_at_mut(2);
                let (s00, s01) = left.split_at_mut(1);
                let (s10, s11) = right.split_at_mut(1);
                let (_, r0, i0) = &mut s00[0];
                let (_, r1, i1) = &mut s01[0];
                let (_, r2, i2) = &mut s10[0];
                let (_, r3, i3) = &mut s11[0];
                quartet(&mm, r0, i0, r1, i1, r2, i2, r3, i3);
            }
        });
        true
    }

    /// Parallel k-qubit dense kernel (3 ≤ k ≤ [`MAX_DENSE_QUBITS`]),
    /// expression-exact with [`StateVector::apply_unitary_k`]: per base
    /// index, the same scratch gather in matrix-basis order and the same
    /// zero-seeded accumulation ([`krow`]) over columns.
    fn par_unitary_k(&mut self, qubits: &[usize], m: &[Complex], intra: &IntraThreads) -> bool {
        let k = qubits.len();
        debug_assert!(k <= MAX_DENSE_QUBITS);
        let size = 1usize << k;
        debug_assert_eq!(m.len(), size * size);
        let Some(plan) = SegPlan::plan(self.num_qubits, qubits, intra.threads()) else {
            return false;
        };
        // Per matrix-basis-state segment selector and in-segment offset.
        let mut seg_sel = [0usize; 1 << MAX_DENSE_QUBITS];
        let mut low_off = [0usize; 1 << MAX_DENSE_QUBITS];
        for (sub, (sel, off)) in seg_sel[..size]
            .iter_mut()
            .zip(low_off[..size].iter_mut())
            .enumerate()
        {
            for (bit, &q) in qubits.iter().enumerate() {
                if sub & (1 << bit) != 0 {
                    if q >= plan.seg_bits {
                        let r = plan
                            .peeled
                            .iter()
                            .position(|&p| p == q)
                            .expect("coupled high qubit must be peeled");
                        *sel |= 1 << r;
                    } else {
                        *off |= 1 << q;
                    }
                }
            }
        }
        // Ascending internal operand positions for base enumeration.
        let mut low = [0usize; MAX_DENSE_QUBITS];
        let mut low_count = 0;
        for &q in qubits {
            if q < plan.seg_bits {
                low[low_count] = q;
                low_count += 1;
            }
        }
        low[..low_count].sort_unstable();
        let bases = (1usize << plan.seg_bits) >> low_count;
        let items = plan.split(&mut self.re, &mut self.im);
        intra.pool().scoped_map(items, |_, mut item| {
            let mut s_re = [0.0f64; 1 << MAX_DENSE_QUBITS];
            let mut s_im = [0.0f64; 1 << MAX_DENSE_QUBITS];
            for i in 0..bases {
                let mut base = i;
                for &p in &low[..low_count] {
                    base = Self::insert_zero_bit(base, p);
                }
                for (sub, (&sel, &off)) in seg_sel[..size]
                    .iter()
                    .zip(low_off[..size].iter())
                    .enumerate()
                {
                    s_re[sub] = item.segs[sel].1[base | off];
                    s_im[sub] = item.segs[sel].2[base | off];
                }
                for (row, (&sel, &off)) in seg_sel[..size]
                    .iter()
                    .zip(low_off[..size].iter())
                    .enumerate()
                {
                    let (acc_re, acc_im) = krow(
                        &m[row * size..(row + 1) * size],
                        &s_re[..size],
                        &s_im[..size],
                    );
                    item.segs[sel].1[base | off] = acc_re;
                    item.segs[sel].2[base | off] = acc_im;
                }
            }
        });
        true
    }

    /// Probability of measuring qubit `q` in state |1⟩.
    ///
    /// Like [`StateVector::inner_product`], registers above
    /// [`REDUCTION_CHUNK`] amplitudes reduce through the fixed pairwise
    /// tree, so the parallel variant
    /// ([`StateVector::probability_of_one_with`]) is bit-identical.
    pub fn probability_of_one(&self, q: usize) -> Result<f64, SimError> {
        if q >= self.num_qubits {
            return Err(SimError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.num_qubits,
            });
        }
        let bit = 1usize << q;
        Ok(probability_tree(&self.re, &self.im, 0, bit))
    }

    /// [`StateVector::probability_of_one`] with the reduction tree's leaf
    /// sums fanned out over an intra-circuit thread budget (bit-identical
    /// for any thread count).
    pub fn probability_of_one_with(&self, q: usize, intra: &IntraThreads) -> Result<f64, SimError> {
        if q >= self.num_qubits {
            return Err(SimError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.num_qubits,
            });
        }
        let bit = 1usize << q;
        if !intra.parallelizes(self.num_qubits) || self.dim() <= REDUCTION_CHUNK {
            return Ok(probability_tree(&self.re, &self.im, 0, bit));
        }
        let leaves = self.dim() / REDUCTION_CHUNK;
        let partials = intra.pool().scoped_map((0..leaves).collect(), |_, leaf| {
            let lo = leaf * REDUCTION_CHUNK;
            probability_leaf(
                &self.re[lo..lo + REDUCTION_CHUNK],
                &self.im[lo..lo + REDUCTION_CHUNK],
                lo,
                bit,
            )
        });
        Ok(combine_f64(&partials))
    }

    /// Expectation value of Pauli-Z on qubit `q`: `P(0) - P(1)`.
    pub fn expectation_z(&self, q: usize) -> Result<f64, SimError> {
        let p1 = self.probability_of_one(q)?;
        Ok(1.0 - 2.0 * p1)
    }

    /// Full probability distribution over the 2^n basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.re
            .iter()
            .zip(self.im.iter())
            .map(|(&r, &i)| r * r + i * i)
            .collect()
    }

    /// Samples a full-register measurement outcome (basis-state index)
    /// without collapsing the state.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for i in 0..self.dim() {
            acc += self.re[i] * self.re[i] + self.im[i] * self.im[i];
            if r < acc {
                return i;
            }
        }
        self.dim() - 1
    }

    /// Samples `shots` measurements of a single qubit and returns the number
    /// of |1⟩ outcomes. The state is not collapsed between shots (each shot
    /// is an independent preparation, matching how shot counts are used on
    /// real hardware).
    pub fn sample_qubit<R: Rng + ?Sized>(
        &self,
        q: usize,
        shots: usize,
        rng: &mut R,
    ) -> Result<usize, SimError> {
        let p1 = self.probability_of_one(q)?;
        let mut ones = 0;
        for _ in 0..shots {
            if rng.gen::<f64>() < p1 {
                ones += 1;
            }
        }
        Ok(ones)
    }

    /// Measures qubit `q`, collapsing the state, and returns the outcome.
    pub fn measure_qubit<R: Rng + ?Sized>(
        &mut self,
        q: usize,
        rng: &mut R,
    ) -> Result<bool, SimError> {
        let p1 = self.probability_of_one(q)?;
        let outcome = rng.gen::<f64>() < p1;
        self.collapse_qubit(q, outcome)?;
        Ok(outcome)
    }

    /// Projects qubit `q` onto the given outcome and renormalises.
    pub fn collapse_qubit(&mut self, q: usize, outcome: bool) -> Result<(), SimError> {
        if q >= self.num_qubits {
            return Err(SimError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.num_qubits,
            });
        }
        let bit = 1usize << q;
        for i in 0..self.dim() {
            let is_one = i & bit != 0;
            if is_one != outcome {
                self.re[i] = 0.0;
                self.im[i] = 0.0;
            }
        }
        self.renormalize();
        Ok(())
    }

    /// Resets qubit `q` to |0⟩ by measuring it and applying X if needed.
    pub fn reset_qubit<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> Result<(), SimError> {
        let outcome = self.measure_qubit(q, rng)?;
        if outcome {
            self.apply_x(q);
        }
        Ok(())
    }

    /// Reduced single-qubit Bloch vector (⟨X⟩, ⟨Y⟩, ⟨Z⟩) of qubit `q`.
    pub fn bloch_vector(&self, q: usize) -> Result<[f64; 3], SimError> {
        if q >= self.num_qubits {
            return Err(SimError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.num_qubits,
            });
        }
        let bit = 1usize << q;
        // Reduced density matrix entries rho00, rho01 (rho10 = conj, rho11 = 1-rho00).
        let mut rho00 = 0.0;
        let mut rho01_re = 0.0;
        let mut rho01_im = 0.0;
        for i in 0..self.dim() {
            if i & bit == 0 {
                let (a0r, a0i) = (self.re[i], self.im[i]);
                let (a1r, a1i) = (self.re[i | bit], self.im[i | bit]);
                rho00 += a0r * a0r + a0i * a0i;
                // a0 * conj(a1)
                rho01_re += a0r * a1r + a0i * a1i;
                rho01_im += a0i * a1r - a0r * a1i;
            }
        }
        let x = 2.0 * rho01_re;
        let y = -2.0 * rho01_im;
        let z = 2.0 * rho00 - 1.0;
        Ok([x, y, z])
    }
}

/// The shared single-qubit butterfly sweep over SoA slice halves: for each
/// lane `i`, `(a0, a1) ← (m00·a0 + m01·a1, m10·a0 + m11·a1)`, with the
/// complex products expanded into the exact expression shape used
/// everywhere (`re·re − im·im` / `re·im + im·re`, products summed left to
/// right). Both the sequential and the segment-parallel single-qubit
/// kernels call this, so they are bit-identical by construction.
fn butterfly1(
    m: &[Complex; 4],
    re0: &mut [f64],
    im0: &mut [f64],
    re1: &mut [f64],
    im1: &mut [f64],
) {
    let [m00, m01, m10, m11] = *m;
    for (((r0, i0), r1), i1) in re0
        .iter_mut()
        .zip(im0.iter_mut())
        .zip(re1.iter_mut())
        .zip(im1.iter_mut())
    {
        let (a0r, a0i) = (*r0, *i0);
        let (a1r, a1i) = (*r1, *i1);
        *r0 = (m00.re * a0r - m00.im * a0i) + (m01.re * a1r - m01.im * a1i);
        *i0 = (m00.re * a0i + m00.im * a0r) + (m01.re * a1i + m01.im * a1r);
        *r1 = (m10.re * a0r - m10.im * a0i) + (m11.re * a1r - m11.im * a1i);
        *i1 = (m10.re * a0i + m10.im * a0r) + (m11.re * a1i + m11.im * a1r);
    }
}

/// One row of a 4-term complex matrix·vector product, products summed
/// left to right (the fold shape shared by every 4×4 kernel).
#[inline(always)]
fn row4(m: &[Complex], ar: &[f64; 4], ai: &[f64; 4]) -> (f64, f64) {
    let mut sr = m[0].re * ar[0] - m[0].im * ai[0];
    let mut si = m[0].re * ai[0] + m[0].im * ar[0];
    for c in 1..4 {
        sr += m[c].re * ar[c] - m[c].im * ai[c];
        si += m[c].re * ai[c] + m[c].im * ar[c];
    }
    (sr, si)
}

/// The shared two-qubit quartet sweep over SoA slice strips (`mm` already
/// conjugated into (hi, lo) layout). Both the sequential and all three
/// segment-parallel two-qubit cases call this, so they are bit-identical
/// by construction.
#[allow(clippy::too_many_arguments)]
fn quartet(
    mm: &[Complex; 16],
    r0: &mut [f64],
    i0: &mut [f64],
    r1: &mut [f64],
    i1: &mut [f64],
    r2: &mut [f64],
    i2: &mut [f64],
    r3: &mut [f64],
    i3: &mut [f64],
) {
    let n = r0.len();
    assert!(
        i0.len() == n
            && r1.len() == n
            && i1.len() == n
            && r2.len() == n
            && i2.len() == n
            && r3.len() == n
            && i3.len() == n
    );
    for idx in 0..n {
        let ar = [r0[idx], r1[idx], r2[idx], r3[idx]];
        let ai = [i0[idx], i1[idx], i2[idx], i3[idx]];
        let (v0r, v0i) = row4(&mm[0..4], &ar, &ai);
        let (v1r, v1i) = row4(&mm[4..8], &ar, &ai);
        let (v2r, v2i) = row4(&mm[8..12], &ar, &ai);
        let (v3r, v3i) = row4(&mm[12..16], &ar, &ai);
        r0[idx] = v0r;
        i0[idx] = v0i;
        r1[idx] = v1r;
        i1[idx] = v1i;
        r2[idx] = v2r;
        i2[idx] = v2i;
        r3[idx] = v3r;
        i3[idx] = v3i;
    }
}

/// One row of a 2^k-term complex matrix·vector product with a zero-seeded
/// accumulator (the fold shape shared by the sequential and parallel
/// k-qubit kernels).
#[inline(always)]
fn krow(mrow: &[Complex], s_re: &[f64], s_im: &[f64]) -> (f64, f64) {
    let mut acc_re = 0.0;
    let mut acc_im = 0.0;
    for (m, (&sr, &si)) in mrow.iter().zip(s_re.iter().zip(s_im.iter())) {
        acc_re += m.re * sr - m.im * si;
        acc_im += m.re * si + m.im * sr;
    }
    (acc_re, acc_im)
}

/// Multiplies every amplitude whose global index has `bit` set by `phase`,
/// sweeping stride-aligned upper slice halves. `base` is the global index
/// of `re[0]` (only consulted when `bit` spans the whole slice). Shared by
/// the sequential phase-flip specialisation and the chunked parallel
/// sweep, so both are bit-identical by construction.
fn phase_flip_slices(re: &mut [f64], im: &mut [f64], base: usize, bit: usize, phase: Complex) {
    if bit >= re.len() {
        if base & bit != 0 {
            for (r, i) in re.iter_mut().zip(im.iter_mut()) {
                let (ar, ai) = (*r, *i);
                *r = ar * phase.re - ai * phase.im;
                *i = ar * phase.im + ai * phase.re;
            }
        }
        return;
    }
    for (rc, ic) in re
        .chunks_exact_mut(bit << 1)
        .zip(im.chunks_exact_mut(bit << 1))
    {
        let (r1, i1) = (&mut rc[bit..], &mut ic[bit..]);
        for (r, i) in r1.iter_mut().zip(i1.iter_mut()) {
            let (ar, ai) = (*r, *i);
            *r = ar * phase.re - ai * phase.im;
            *i = ar * phase.im + ai * phase.re;
        }
    }
}

/// Negates every amplitude whose global index has `bit` set (the φ = −1
/// phase flip, kept multiply-free). Same slice contract as
/// [`phase_flip_slices`].
fn negate_slices(re: &mut [f64], im: &mut [f64], base: usize, bit: usize) {
    if bit >= re.len() {
        if base & bit != 0 {
            for (r, i) in re.iter_mut().zip(im.iter_mut()) {
                *r = -*r;
                *i = -*i;
            }
        }
        return;
    }
    for (rc, ic) in re
        .chunks_exact_mut(bit << 1)
        .zip(im.chunks_exact_mut(bit << 1))
    {
        for (r, i) in rc[bit..].iter_mut().zip(ic[bit..].iter_mut()) {
            *r = -*r;
            *i = -*i;
        }
    }
}

/// CZ over SoA slices: negates amplitudes whose global index has both the
/// `lo` and `hi` operand bits set. `base` is the global index of `re[0]`.
/// Sign flips are exact, so the chunked parallel sweep and this sequential
/// form are bit-identical regardless of sweep order.
fn cz_slices(re: &mut [f64], im: &mut [f64], base: usize, lo: usize, hi: usize) {
    debug_assert!(lo < hi);
    if hi >= re.len() {
        if base & hi != 0 {
            negate_slices(re, im, base, lo);
        }
        return;
    }
    for (rc, ic) in re
        .chunks_exact_mut(hi << 1)
        .zip(im.chunks_exact_mut(hi << 1))
    {
        // lo < hi ⇒ the upper half is a whole number of lo-strips.
        negate_slices(&mut rc[hi..], &mut ic[hi..], 0, lo);
    }
}

/// One leaf of the inner-product reduction tree over SoA halves, on
/// registers up to [`REDUCTION_CHUNK`]. The per-lane term is `conj(a)·b`
/// expanded as `(ar·br + ai·bi, ar·bi − ai·br)`.
///
/// The fold runs four independent accumulator lanes (lane `j` sums terms
/// `j, j+4, j+8, …`; any tail shorter than four joins lane 0) combined
/// pairwise at the end — a fixed shape, so results are deterministic for
/// a given length, and the lanes break the loop-carried dependency chain
/// a single running sum would serialize every `add` behind.
pub(crate) fn inner_product_leaf(
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
) -> Complex {
    let n = a_re.len();
    assert!(a_im.len() == n && b_re.len() == n && b_im.len() == n);
    let mut sr = [0.0f64; 4];
    let mut si = [0.0f64; 4];
    for (((ar, ai), br), bi) in a_re
        .chunks_exact(4)
        .zip(a_im.chunks_exact(4))
        .zip(b_re.chunks_exact(4))
        .zip(b_im.chunks_exact(4))
    {
        for j in 0..4 {
            sr[j] += ar[j] * br[j] + ai[j] * bi[j];
            si[j] += ar[j] * bi[j] - ai[j] * br[j];
        }
    }
    let tail = n / 4 * 4;
    for i in tail..n {
        sr[0] += a_re[i] * b_re[i] + a_im[i] * b_im[i];
        si[0] += a_re[i] * b_im[i] - a_im[i] * b_re[i];
    }
    Complex::new(
        (sr[0] + sr[1]) + (sr[2] + sr[3]),
        (si[0] + si[1]) + (si[2] + si[3]),
    )
}

/// Fixed-shape pairwise reduction of ⟨a|b⟩: balanced halving down to
/// [`REDUCTION_CHUNK`]-sized leaves. Register dimensions are powers of
/// two, so the tree is perfect and identical to combining the ordered
/// leaf sums pairwise ([`combine_complex`]) — which is what makes the
/// parallel reduction bit-identical.
pub(crate) fn inner_product_tree(
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
) -> Complex {
    if a_re.len() <= REDUCTION_CHUNK {
        return inner_product_leaf(a_re, a_im, b_re, b_im);
    }
    let mid = a_re.len() / 2;
    inner_product_tree(&a_re[..mid], &a_im[..mid], &b_re[..mid], &b_im[..mid])
        + inner_product_tree(&a_re[mid..], &a_im[mid..], &b_re[mid..], &b_im[mid..])
}

/// Combines ordered leaf partial sums with the same balanced halving as
/// [`inner_product_tree`] (leaf counts are powers of two).
pub(crate) fn combine_complex(partials: &[Complex]) -> Complex {
    if partials.len() == 1 {
        return partials[0];
    }
    let mid = partials.len() / 2;
    combine_complex(&partials[..mid]) + combine_complex(&partials[mid..])
}

/// One leaf of the measurement-probability reduction tree over the
/// amplitudes at global indices `base..base + re.len()`: sums `|a|²` over
/// the amplitudes whose index has `bit` set, in ascending index order,
/// sweeping stride-aligned upper halves.
fn probability_leaf(re: &[f64], im: &[f64], base: usize, bit: usize) -> f64 {
    let mut acc = 0.0;
    if bit >= re.len() {
        if base & bit == 0 {
            return 0.0;
        }
        for (&r, &i) in re.iter().zip(im.iter()) {
            acc += r * r + i * i;
        }
        return acc;
    }
    for (rc, ic) in re.chunks_exact(bit << 1).zip(im.chunks_exact(bit << 1)) {
        for (&r, &i) in rc[bit..].iter().zip(ic[bit..].iter()) {
            acc += r * r + i * i;
        }
    }
    acc
}

/// Fixed-shape pairwise reduction of `P(qubit = 1)`; see
/// [`inner_product_tree`] for the shape contract.
fn probability_tree(re: &[f64], im: &[f64], base: usize, bit: usize) -> f64 {
    if re.len() <= REDUCTION_CHUNK {
        return probability_leaf(re, im, base, bit);
    }
    let mid = re.len() / 2;
    probability_tree(&re[..mid], &im[..mid], base, bit)
        + probability_tree(&re[mid..], &im[mid..], base + mid, bit)
}

/// Combines ordered probability leaf sums pairwise (see
/// [`combine_complex`]).
pub(crate) fn combine_f64(partials: &[f64]) -> f64 {
    if partials.len() == 1 {
        return partials[0];
    }
    let mid = partials.len() / 2;
    combine_f64(&partials[..mid]) + combine_f64(&partials[mid..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-10;

    #[test]
    fn active_prefix_application_matches_full_sweep_bit_for_bit() {
        // Build a 4-qubit product state qubit-by-qubit through the active
        // kernel and through full-register sweeps: every nonzero amplitude
        // must agree to the last bit.
        let angles = [(0.7, -0.4), (2.2, 0.9), (0.1, 1.7), (3.0, -2.1)];
        let mut fast = StateVector::zero_state(4);
        let mut full = StateVector::zero_state(4);
        for (q, &(ry, rz)) in angles.iter().enumerate() {
            let gry = Gate::Ry(q, ry);
            let grz = Gate::Rz(q, rz);
            fast.apply_single_qubit_matrix_active(q, &gry.matrix())
                .unwrap();
            fast.apply_single_qubit_matrix_active(q, &grz.matrix())
                .unwrap();
            full.apply_gate(&gry).unwrap();
            full.apply_gate(&grz).unwrap();
        }
        for (a, b) in fast.to_amplitudes().iter().zip(full.to_amplitudes().iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn active_prefix_application_rejects_out_of_range_qubits() {
        let mut sv = StateVector::zero_state(2);
        let m = Gate::Ry(0, 0.3).matrix();
        assert!(matches!(
            sv.apply_single_qubit_matrix_active(2, &m),
            Err(SimError::QubitOutOfRange { .. })
        ));
    }

    #[test]
    fn soa_accessors_roundtrip() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gates(&[
            Gate::H(0),
            Gate::S(0),
            Gate::Cnot {
                control: 0,
                target: 1,
            },
        ])
        .unwrap();
        let amps = sv.to_amplitudes();
        assert_eq!(amps.len(), 4);
        for (i, a) in amps.iter().enumerate() {
            assert_eq!(sv.amplitude(i), *a);
            assert_eq!(sv.re_parts()[i], a.re);
            assert_eq!(sv.im_parts()[i], a.im);
        }
        let rebuilt = StateVector::from_amplitudes(amps).unwrap();
        assert_eq!(rebuilt, sv);
        // reset_zero reuses the buffers and lands exactly on |0…0⟩.
        sv.reset_zero();
        assert_eq!(sv, StateVector::zero_state(2));
    }

    #[test]
    fn zero_state_is_normalised() {
        let sv = StateVector::zero_state(3);
        assert_eq!(sv.dim(), 8);
        assert!((sv.norm_sqr() - 1.0).abs() < TOL);
        assert_eq!(sv.amplitude(0), Complex::ONE);
    }

    #[test]
    #[should_panic(expected = "unsupported qubit count")]
    fn zero_qubits_rejected() {
        let _ = StateVector::zero_state(0);
    }

    #[test]
    fn from_amplitudes_validates() {
        assert!(StateVector::from_amplitudes(vec![Complex::ONE; 3]).is_err());
        assert!(StateVector::from_amplitudes(vec![Complex::ONE, Complex::ONE]).is_err());
        let ok = StateVector::from_amplitudes(vec![Complex::ONE, Complex::ZERO]);
        assert!(ok.is_ok());
    }

    #[test]
    fn basis_state_sets_single_amplitude() {
        let sv = StateVector::basis_state(3, 5).unwrap();
        assert_eq!(sv.amplitude(5), Complex::ONE);
        assert!(StateVector::basis_state(2, 4).is_err());
    }

    #[test]
    fn x_gate_flips_qubit() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::X(1)).unwrap();
        assert_eq!(sv.amplitude(2), Complex::ONE);
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::H(0)).unwrap();
        assert!((sv.probability_of_one(0).unwrap() - 0.5).abs() < TOL);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::H(0)).unwrap();
        sv.apply_gate(&Gate::Cnot {
            control: 0,
            target: 1,
        })
        .unwrap();
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < TOL);
        assert!((p[3] - 0.5).abs() < TOL);
        assert!(p[1].abs() < TOL && p[2].abs() < TOL);
    }

    #[test]
    fn ry_angle_encodes_expectation() {
        // RY(2 asin(sqrt(x))) |0> has P(1) = x — the QuClassi encoding rule.
        let x: f64 = 0.3;
        let theta = 2.0 * x.sqrt().asin();
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::Ry(0, theta)).unwrap();
        assert!((sv.probability_of_one(0).unwrap() - x).abs() < TOL);
    }

    #[test]
    fn swap_gate_exchanges_qubits() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::X(0)).unwrap();
        sv.apply_gate(&Gate::Swap(0, 1)).unwrap();
        assert_eq!(sv.amplitude(2), Complex::ONE);
    }

    #[test]
    fn cswap_conditioned_on_control() {
        // Prepare |control=1⟩|a=1⟩|b=0⟩ then CSWAP: a and b exchange.
        let mut sv = StateVector::zero_state(3);
        sv.apply_gate(&Gate::X(2)).unwrap(); // control
        sv.apply_gate(&Gate::X(0)).unwrap(); // a
        sv.apply_gate(&Gate::CSwap {
            control: 2,
            a: 0,
            b: 1,
        })
        .unwrap();
        // Expect |control=1, b=1, a=0⟩ = index 4 + 2 = 6.
        assert!((sv.amplitude(6).norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn gate_application_matches_full_matrix_kron() {
        // Apply RY(0.7) to qubit 1 of a 3-qubit random-ish state and compare
        // against the explicit I ⊗ RY ⊗ I construction.
        let mut sv = StateVector::zero_state(3);
        sv.apply_gates(&[Gate::H(0), Gate::H(1), Gate::H(2), Gate::T(1), Gate::S(2)])
            .unwrap();
        let mut by_gate = sv.clone();
        by_gate.apply_gate(&Gate::Ry(1, 0.7)).unwrap();

        let full = CMatrix::identity(2)
            .kron(&crate::gate::matrices::ry(0.7))
            .kron(&CMatrix::identity(2));
        let expected = full.matvec(&sv.to_amplitudes());
        for (a, b) in by_gate.to_amplitudes().iter().zip(expected.iter()) {
            assert!(a.approx_eq(*b, 1e-9));
        }
    }

    #[test]
    fn two_qubit_gate_matches_general_path() {
        let mut sv = StateVector::zero_state(3);
        sv.apply_gates(&[Gate::H(0), Gate::Ry(1, 0.4), Gate::Rz(2, 1.3)])
            .unwrap();
        let mut a = sv.clone();
        let mut b = sv.clone();
        let gate = Gate::Rxx(0, 2, 0.9);
        a.apply_gate(&gate).unwrap();
        b.apply_k_qubit_matrix(&gate.qubits(), &gate.matrix())
            .unwrap();
        for (x, y) in a.to_amplitudes().iter().zip(b.to_amplitudes().iter()) {
            assert!(x.approx_eq(*y, 1e-9));
        }
    }

    #[test]
    fn out_of_range_and_duplicate_qubits_error() {
        let mut sv = StateVector::zero_state(2);
        assert!(sv.apply_gate(&Gate::H(2)).is_err());
        assert!(sv.apply_gate(&Gate::Swap(1, 1)).is_err());
    }

    #[test]
    fn k_qubit_matrix_rejects_invalid_operands() {
        let mut sv = StateVector::zero_state(3);
        let before = sv.clone();
        let m = CMatrix::identity(4);
        // Duplicate qubit index.
        assert_eq!(
            sv.apply_k_qubit_matrix(&[1, 1], &m),
            Err(SimError::DuplicateQubit(1))
        );
        // Out-of-range qubit index.
        assert!(matches!(
            sv.apply_k_qubit_matrix(&[0, 5], &m),
            Err(SimError::QubitOutOfRange { qubit: 5, .. })
        ));
        // Matrix shape not matching the qubit count.
        assert!(matches!(
            sv.apply_k_qubit_matrix(&[0], &m),
            Err(SimError::InvalidState(_))
        ));
        // Too many qubits for the dense kernels.
        let big = CMatrix::identity(1 << 7);
        let mut wide = StateVector::zero_state(8);
        assert!(matches!(
            wide.apply_k_qubit_matrix(&[0, 1, 2, 3, 4, 5, 6], &big),
            Err(SimError::Unsupported(_))
        ));
        // A failed application leaves the state untouched.
        assert_eq!(sv, before);
    }

    #[test]
    fn k_qubit_matrix_matches_per_gate_application_for_all_arities() {
        let mut sv = StateVector::zero_state(4);
        sv.apply_gates(&[Gate::H(0), Gate::Ry(1, 0.4), Gate::Rz(2, 1.3), Gate::H(3)])
            .unwrap();
        for gate in [
            Gate::Ry(2, 0.9),
            Gate::Rxx(3, 0, 1.1),
            Gate::CSwap {
                control: 3,
                a: 0,
                b: 2,
            },
        ] {
            let mut a = sv.clone();
            let mut b = sv.clone();
            a.apply_gate(&gate).unwrap();
            b.apply_k_qubit_matrix(&gate.qubits(), &gate.matrix())
                .unwrap();
            for (x, y) in a.to_amplitudes().iter().zip(b.to_amplitudes().iter()) {
                assert!(x.approx_eq(*y, 1e-12), "gate {}", gate.name());
            }
        }
    }

    #[test]
    fn inner_product_and_fidelity() {
        let mut a = StateVector::zero_state(2);
        let b = StateVector::zero_state(2);
        assert!((a.fidelity(&b).unwrap() - 1.0).abs() < TOL);
        a.apply_gate(&Gate::X(0)).unwrap();
        assert!(a.fidelity(&b).unwrap() < TOL);
        let c = StateVector::zero_state(3);
        assert!(a.fidelity(&c).is_err());
    }

    #[test]
    fn tensor_product_dimensions() {
        let a = StateVector::basis_state(2, 2).unwrap();
        let b = StateVector::basis_state(1, 1).unwrap();
        let t = a.tensor(&b);
        assert_eq!(t.num_qubits(), 3);
        // index = a_index * 2 + b_index = 2*2 + 1 = 5
        assert_eq!(t.amplitude(5), Complex::ONE);
    }

    #[test]
    fn measurement_collapses_state() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::H(0)).unwrap();
        let outcome = sv.measure_qubit(0, &mut rng).unwrap();
        let p1 = sv.probability_of_one(0).unwrap();
        if outcome {
            assert!((p1 - 1.0).abs() < TOL);
        } else {
            assert!(p1 < TOL);
        }
    }

    #[test]
    fn reset_returns_qubit_to_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sv = StateVector::zero_state(2);
        sv.apply_gates(&[Gate::H(0), Gate::X(1)]).unwrap();
        sv.reset_qubit(0, &mut rng).unwrap();
        assert!(sv.probability_of_one(0).unwrap() < TOL);
        assert!((sv.probability_of_one(1).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::Ry(0, 2.0 * (0.25f64).sqrt().asin()))
            .unwrap();
        let ones = sv.sample_qubit(0, 20_000, &mut rng).unwrap();
        let frac = ones as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "sampled fraction {frac}");
    }

    #[test]
    fn sample_full_register() {
        let mut rng = StdRng::seed_from_u64(11);
        let sv = StateVector::basis_state(3, 6).unwrap();
        for _ in 0..10 {
            assert_eq!(sv.sample(&mut rng), 6);
        }
    }

    #[test]
    fn bloch_vector_of_known_states() {
        let sv = StateVector::zero_state(1);
        let [x, y, z] = sv.bloch_vector(0).unwrap();
        assert!(x.abs() < TOL && y.abs() < TOL && (z - 1.0).abs() < TOL);

        let mut plus = StateVector::zero_state(1);
        plus.apply_gate(&Gate::H(0)).unwrap();
        let [x, y, z] = plus.bloch_vector(0).unwrap();
        assert!((x - 1.0).abs() < TOL && y.abs() < TOL && z.abs() < TOL);

        let mut minus_y = StateVector::zero_state(1);
        minus_y.apply_gate(&Gate::Rx(0, PI / 2.0)).unwrap();
        let [_, y, _] = minus_y.bloch_vector(0).unwrap();
        assert!((y + 1.0).abs() < 1e-9);
    }

    #[test]
    fn norm_preserved_under_long_circuits() {
        let mut sv = StateVector::zero_state(4);
        let gates = vec![
            Gate::H(0),
            Gate::Ry(1, 0.3),
            Gate::CRy {
                control: 0,
                target: 2,
                theta: 1.1,
            },
            Gate::Rzz(1, 3, 0.6),
            Gate::CSwap {
                control: 0,
                a: 1,
                b: 2,
            },
            Gate::Rx(3, 2.2),
            Gate::Cz {
                control: 2,
                target: 3,
            },
        ];
        for _ in 0..10 {
            sv.apply_gates(&gates).unwrap();
        }
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }
}
