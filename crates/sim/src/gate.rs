//! Quantum gate definitions.
//!
//! Every gate used by QuClassi (and a few extra standard gates useful for
//! testing and transpilation) is represented by the [`Gate`] enum. Gates know
//! which qubits they act on and can produce their unitary matrix, which is
//! what the state-vector and density-matrix engines consume.
//!
//! Conventions:
//!
//! * Qubit 0 is the least-significant bit of a basis-state index
//!   (|q_{n-1} … q_1 q_0⟩ ↔ integer `q_{n-1}·2^{n-1} + … + q_0`).
//! * Rotation gates follow the standard convention `R_A(θ) = exp(-i θ A / 2)`.
//!   The paper's Eq. 5–11 use the same convention (its printed RYY/RZZ
//!   matrices contain typographical errors; we use the standard forms, which
//!   is what Qiskit — the paper's simulator — implements).

use crate::complex::Complex;
use crate::linalg::CMatrix;

/// A quantum gate applied to specific qubit indices.
#[derive(Clone, Debug, PartialEq)]
pub enum Gate {
    /// Identity on one qubit (useful as a placeholder).
    I(usize),
    /// Pauli-X (NOT).
    X(usize),
    /// Pauli-Y.
    Y(usize),
    /// Pauli-Z.
    Z(usize),
    /// Hadamard.
    H(usize),
    /// Phase gate S = diag(1, i).
    S(usize),
    /// Inverse phase gate S† = diag(1, -i).
    Sdg(usize),
    /// T gate = diag(1, e^{iπ/4}).
    T(usize),
    /// T† gate.
    Tdg(usize),
    /// Rotation about X by `theta`.
    Rx(usize, f64),
    /// Rotation about Y by `theta`.
    Ry(usize, f64),
    /// Rotation about Z by `theta`.
    Rz(usize, f64),
    /// General single-qubit rotation R(θ, φ) from the paper's Eq. 5.
    R(usize, f64, f64),
    /// Controlled-NOT with `control` and `target` qubits.
    Cnot {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Controlled-Z.
    Cz {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// SWAP of two qubits.
    Swap(usize, usize),
    /// Controlled-SWAP (Fredkin) gate: swaps `a` and `b` when `control` is |1⟩.
    CSwap {
        /// Control qubit.
        control: usize,
        /// First swapped qubit.
        a: usize,
        /// Second swapped qubit.
        b: usize,
    },
    /// Controlled rotation about X.
    CRx {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
        /// Rotation angle.
        theta: f64,
    },
    /// Controlled rotation about Y.
    CRy {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
        /// Rotation angle.
        theta: f64,
    },
    /// Controlled rotation about Z.
    CRz {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
        /// Rotation angle.
        theta: f64,
    },
    /// Two-qubit XX rotation exp(-i θ X⊗X / 2).
    Rxx(usize, usize, f64),
    /// Two-qubit YY rotation exp(-i θ Y⊗Y / 2).
    Ryy(usize, usize, f64),
    /// Two-qubit ZZ rotation exp(-i θ Z⊗Z / 2).
    Rzz(usize, usize, f64),
}

impl Gate {
    /// Returns the qubit indices this gate acts on, in matrix-ordering
    /// (least-significant operand first).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::I(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::H(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _)
            | Gate::R(q, _, _) => vec![q],
            Gate::Cnot { control, target }
            | Gate::Cz { control, target }
            | Gate::CRx {
                control, target, ..
            }
            | Gate::CRy {
                control, target, ..
            }
            | Gate::CRz {
                control, target, ..
            } => vec![target, control],
            Gate::Swap(a, b) => vec![a, b],
            Gate::Rxx(a, b, _) | Gate::Ryy(a, b, _) | Gate::Rzz(a, b, _) => vec![a, b],
            Gate::CSwap { control, a, b } => vec![a, b, control],
        }
    }

    /// Number of qubits the gate acts on.
    pub fn arity(&self) -> usize {
        self.qubits().len()
    }

    /// Short mnemonic name for display and circuit dumps.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I(_) => "i",
            Gate::X(_) => "x",
            Gate::Y(_) => "y",
            Gate::Z(_) => "z",
            Gate::H(_) => "h",
            Gate::S(_) => "s",
            Gate::Sdg(_) => "sdg",
            Gate::T(_) => "t",
            Gate::Tdg(_) => "tdg",
            Gate::Rx(..) => "rx",
            Gate::Ry(..) => "ry",
            Gate::Rz(..) => "rz",
            Gate::R(..) => "r",
            Gate::Cnot { .. } => "cx",
            Gate::Cz { .. } => "cz",
            Gate::Swap(..) => "swap",
            Gate::CSwap { .. } => "cswap",
            Gate::CRx { .. } => "crx",
            Gate::CRy { .. } => "cry",
            Gate::CRz { .. } => "crz",
            Gate::Rxx(..) => "rxx",
            Gate::Ryy(..) => "ryy",
            Gate::Rzz(..) => "rzz",
        }
    }

    /// Returns the rotation angle for parameterised gates, if any.
    pub fn angle(&self) -> Option<f64> {
        match *self {
            Gate::Rx(_, t)
            | Gate::Ry(_, t)
            | Gate::Rz(_, t)
            | Gate::R(_, t, _)
            | Gate::CRx { theta: t, .. }
            | Gate::CRy { theta: t, .. }
            | Gate::CRz { theta: t, .. }
            | Gate::Rxx(_, _, t)
            | Gate::Ryy(_, _, t)
            | Gate::Rzz(_, _, t) => Some(t),
            _ => None,
        }
    }

    /// Returns the same gate with its angle replaced (no-op for fixed gates).
    pub fn with_angle(&self, theta: f64) -> Gate {
        match *self {
            Gate::Rx(q, _) => Gate::Rx(q, theta),
            Gate::Ry(q, _) => Gate::Ry(q, theta),
            Gate::Rz(q, _) => Gate::Rz(q, theta),
            Gate::R(q, _, phi) => Gate::R(q, theta, phi),
            Gate::CRx {
                control, target, ..
            } => Gate::CRx {
                control,
                target,
                theta,
            },
            Gate::CRy {
                control, target, ..
            } => Gate::CRy {
                control,
                target,
                theta,
            },
            Gate::CRz {
                control, target, ..
            } => Gate::CRz {
                control,
                target,
                theta,
            },
            Gate::Rxx(a, b, _) => Gate::Rxx(a, b, theta),
            Gate::Ryy(a, b, _) => Gate::Ryy(a, b, theta),
            Gate::Rzz(a, b, _) => Gate::Rzz(a, b, theta),
            ref g => g.clone(),
        }
    }

    /// Returns the inverse (adjoint) gate.
    pub fn dagger(&self) -> Gate {
        match *self {
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            Gate::T(q) => Gate::Tdg(q),
            Gate::Tdg(q) => Gate::T(q),
            Gate::Rx(q, t) => Gate::Rx(q, -t),
            Gate::Ry(q, t) => Gate::Ry(q, -t),
            Gate::Rz(q, t) => Gate::Rz(q, -t),
            Gate::R(q, t, phi) => Gate::R(q, -t, phi),
            Gate::CRx {
                control,
                target,
                theta,
            } => Gate::CRx {
                control,
                target,
                theta: -theta,
            },
            Gate::CRy {
                control,
                target,
                theta,
            } => Gate::CRy {
                control,
                target,
                theta: -theta,
            },
            Gate::CRz {
                control,
                target,
                theta,
            } => Gate::CRz {
                control,
                target,
                theta: -theta,
            },
            Gate::Rxx(a, b, t) => Gate::Rxx(a, b, -t),
            Gate::Ryy(a, b, t) => Gate::Ryy(a, b, -t),
            Gate::Rzz(a, b, t) => Gate::Rzz(a, b, -t),
            ref g => g.clone(), // self-inverse gates (Paulis, H, CNOT, CZ, SWAP, CSWAP)
        }
    }

    /// The unitary matrix of this gate in the basis ordering of
    /// [`Gate::qubits`] (first listed qubit = least-significant bit).
    pub fn matrix(&self) -> CMatrix {
        match *self {
            Gate::I(_) => CMatrix::identity(2),
            Gate::X(_) => matrices::pauli_x(),
            Gate::Y(_) => matrices::pauli_y(),
            Gate::Z(_) => matrices::pauli_z(),
            Gate::H(_) => matrices::hadamard(),
            Gate::S(_) => matrices::phase(std::f64::consts::FRAC_PI_2),
            Gate::Sdg(_) => matrices::phase(-std::f64::consts::FRAC_PI_2),
            Gate::T(_) => matrices::phase(std::f64::consts::FRAC_PI_4),
            Gate::Tdg(_) => matrices::phase(-std::f64::consts::FRAC_PI_4),
            Gate::Rx(_, t) => matrices::rx(t),
            Gate::Ry(_, t) => matrices::ry(t),
            Gate::Rz(_, t) => matrices::rz(t),
            Gate::R(_, t, phi) => matrices::r(t, phi),
            Gate::Cnot { .. } => matrices::controlled(&matrices::pauli_x()),
            Gate::Cz { .. } => matrices::controlled(&matrices::pauli_z()),
            Gate::Swap(..) => matrices::swap(),
            Gate::CSwap { .. } => matrices::cswap(),
            Gate::CRx { theta, .. } => matrices::controlled(&matrices::rx(theta)),
            Gate::CRy { theta, .. } => matrices::controlled(&matrices::ry(theta)),
            Gate::CRz { theta, .. } => matrices::controlled(&matrices::rz(theta)),
            Gate::Rxx(_, _, t) => matrices::rxx(t),
            Gate::Ryy(_, _, t) => matrices::ryy(t),
            Gate::Rzz(_, _, t) => matrices::rzz(t),
        }
    }
}

/// Constructors for the raw gate matrices.
pub mod matrices {
    use super::*;

    /// Pauli-X matrix.
    pub fn pauli_x() -> CMatrix {
        CMatrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
    }

    /// Pauli-Y matrix.
    pub fn pauli_y() -> CMatrix {
        CMatrix::from_rows(
            2,
            2,
            vec![
                Complex::ZERO,
                Complex::new(0.0, -1.0),
                Complex::new(0.0, 1.0),
                Complex::ZERO,
            ],
        )
    }

    /// Pauli-Z matrix.
    pub fn pauli_z() -> CMatrix {
        CMatrix::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0])
    }

    /// Hadamard matrix.
    pub fn hadamard() -> CMatrix {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        CMatrix::from_real(2, 2, &[s, s, s, -s])
    }

    /// Phase gate diag(1, e^{iλ}).
    pub fn phase(lambda: f64) -> CMatrix {
        CMatrix::from_rows(
            2,
            2,
            vec![
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::cis(lambda),
            ],
        )
    }

    /// General rotation from the paper's Eq. 5:
    /// `R(θ, φ) = [[cos θ/2, -i e^{-iφ} sin θ/2], [-i e^{iφ} sin θ/2, cos θ/2]]`.
    pub fn r(theta: f64, phi: f64) -> CMatrix {
        let c = Complex::from_real((theta / 2.0).cos());
        let s = (theta / 2.0).sin();
        let mi = Complex::new(0.0, -1.0);
        CMatrix::from_rows(
            2,
            2,
            vec![
                c,
                mi * Complex::cis(-phi) * s,
                mi * Complex::cis(phi) * s,
                c,
            ],
        )
    }

    /// Rotation about X: `RX(θ) = R(θ, 0)` (paper Eq. 6).
    pub fn rx(theta: f64) -> CMatrix {
        r(theta, 0.0)
    }

    /// The four row-major entries of [`ry`] as a stack array — the single
    /// source of truth for the RY matrix. Allocation-free hot paths (the
    /// compiled encoder) consume this directly through
    /// [`crate::state::StateVector::apply_active_2x2`]; [`ry`] wraps the
    /// same entries, so both paths see bit-identical values.
    pub fn ry_entries(theta: f64) -> [Complex; 4] {
        let c = (theta / 2.0).cos();
        let s = (theta / 2.0).sin();
        [
            Complex::from_real(c),
            Complex::from_real(-s),
            Complex::from_real(s),
            Complex::from_real(c),
        ]
    }

    /// Rotation about Y: `RY(θ) = R(θ, π/2)` (paper Eq. 7).
    pub fn ry(theta: f64) -> CMatrix {
        CMatrix::from_rows(2, 2, ry_entries(theta).to_vec())
    }

    /// The four row-major entries of [`rz`] as a stack array (see
    /// [`ry_entries`] for why this exists).
    ///
    /// `e^{-iθ/2}` is the conjugate of `e^{iθ/2}`, so one `sin_cos`
    /// evaluation covers both diagonal entries (libm's `sin` is odd and
    /// `cos` even bit-for-bit, so this matches two independent
    /// [`Complex::cis`] calls exactly).
    pub fn rz_entries(theta: f64) -> [Complex; 4] {
        let (s, c) = (theta / 2.0).sin_cos();
        [
            Complex::new(c, -s),
            Complex::ZERO,
            Complex::ZERO,
            Complex::new(c, s),
        ]
    }

    /// Rotation about Z: `RZ(θ) = diag(e^{-iθ/2}, e^{iθ/2})` (paper Eq. 8).
    pub fn rz(theta: f64) -> CMatrix {
        CMatrix::from_rows(2, 2, rz_entries(theta).to_vec())
    }

    /// Promotes a single-qubit unitary to its controlled version on two
    /// qubits (control = most-significant operand).
    pub fn controlled(u: &CMatrix) -> CMatrix {
        assert_eq!(u.rows(), 2);
        assert_eq!(u.cols(), 2);
        let mut m = CMatrix::identity(4);
        // Basis ordering |control target⟩ with target as least-significant bit:
        // indices 2 and 3 have control = 1.
        m[(2, 2)] = u[(0, 0)];
        m[(2, 3)] = u[(0, 1)];
        m[(3, 2)] = u[(1, 0)];
        m[(3, 3)] = u[(1, 1)];
        m
    }

    /// SWAP matrix on two qubits.
    pub fn swap() -> CMatrix {
        CMatrix::from_real(
            4,
            4,
            &[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 1.0,
            ],
        )
    }

    /// Controlled-SWAP (Fredkin) matrix on three qubits; control is the
    /// most-significant operand, the two swapped qubits are the lower two.
    pub fn cswap() -> CMatrix {
        let mut m = CMatrix::identity(8);
        // When control bit (value 4) is set, swap the two low bits:
        // |1 b a⟩: indices 4..8; swap index 5 (a=1,b=0) and 6 (a=0,b=1).
        m[(5, 5)] = Complex::ZERO;
        m[(6, 6)] = Complex::ZERO;
        m[(5, 6)] = Complex::ONE;
        m[(6, 5)] = Complex::ONE;
        m
    }

    /// Two-qubit rotation exp(-i θ X⊗X / 2) (paper Eq. 9).
    pub fn rxx(theta: f64) -> CMatrix {
        let c = Complex::from_real((theta / 2.0).cos());
        let ms = Complex::new(0.0, -(theta / 2.0).sin());
        let z = Complex::ZERO;
        CMatrix::from_rows(
            4,
            4,
            vec![
                c, z, z, ms, //
                z, c, ms, z, //
                z, ms, c, z, //
                ms, z, z, c,
            ],
        )
    }

    /// Two-qubit rotation exp(-i θ Y⊗Y / 2) (paper Eq. 10, corrected signs).
    pub fn ryy(theta: f64) -> CMatrix {
        let c = Complex::from_real((theta / 2.0).cos());
        let ps = Complex::new(0.0, (theta / 2.0).sin());
        let ms = Complex::new(0.0, -(theta / 2.0).sin());
        let z = Complex::ZERO;
        CMatrix::from_rows(
            4,
            4,
            vec![
                c, z, z, ps, //
                z, c, ms, z, //
                z, ms, c, z, //
                ps, z, z, c,
            ],
        )
    }

    /// Two-qubit rotation exp(-i θ Z⊗Z / 2) (paper Eq. 11, corrected — the
    /// printed matrix is a global phase, the standard RZZ is used instead).
    pub fn rzz(theta: f64) -> CMatrix {
        let em = Complex::cis(-theta / 2.0);
        let ep = Complex::cis(theta / 2.0);
        let z = Complex::ZERO;
        CMatrix::from_rows(
            4,
            4,
            vec![
                em, z, z, z, //
                z, ep, z, z, //
                z, z, ep, z, //
                z, z, z, em,
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-12;

    #[test]
    fn all_gate_matrices_are_unitary() {
        let gates = vec![
            Gate::I(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::H(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::Rx(0, 0.7),
            Gate::Ry(0, 1.3),
            Gate::Rz(0, -2.1),
            Gate::R(0, 0.4, 1.1),
            Gate::Cnot {
                control: 1,
                target: 0,
            },
            Gate::Cz {
                control: 1,
                target: 0,
            },
            Gate::Swap(0, 1),
            Gate::CSwap {
                control: 2,
                a: 0,
                b: 1,
            },
            Gate::CRx {
                control: 1,
                target: 0,
                theta: 0.3,
            },
            Gate::CRy {
                control: 1,
                target: 0,
                theta: 0.9,
            },
            Gate::CRz {
                control: 1,
                target: 0,
                theta: -0.5,
            },
            Gate::Rxx(0, 1, 0.8),
            Gate::Ryy(0, 1, 1.9),
            Gate::Rzz(0, 1, -0.2),
        ];
        for g in gates {
            assert!(
                g.matrix().is_unitary(TOL),
                "gate {} is not unitary",
                g.name()
            );
            assert_eq!(g.matrix().rows(), 1 << g.arity());
        }
    }

    #[test]
    fn rx_matches_paper_definition() {
        // RX(θ) = R(θ, 0)
        let theta = 0.613;
        assert!(matrices::rx(theta).max_abs_diff(&matrices::r(theta, 0.0)) < TOL);
    }

    #[test]
    fn ry_matches_r_with_phi_pi_over_two() {
        let theta = 1.234;
        assert!(matrices::ry(theta).max_abs_diff(&matrices::r(theta, PI / 2.0)) < TOL);
    }

    #[test]
    fn rotation_by_zero_is_identity() {
        for m in [matrices::rx(0.0), matrices::ry(0.0), matrices::rz(0.0)] {
            assert!(m.max_abs_diff(&CMatrix::identity(2)) < TOL);
        }
        for m in [matrices::rxx(0.0), matrices::ryy(0.0), matrices::rzz(0.0)] {
            assert!(m.max_abs_diff(&CMatrix::identity(4)) < TOL);
        }
    }

    #[test]
    fn rotation_by_two_pi_is_minus_identity() {
        let m = matrices::ry(2.0 * PI);
        assert!(m.max_abs_diff(&CMatrix::identity(2).scale(Complex::from_real(-1.0))) < 1e-10);
    }

    #[test]
    fn ry_pi_maps_zero_to_one() {
        let v = matrices::ry(PI).matvec(&[Complex::ONE, Complex::ZERO]);
        assert!((v[1].norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn cnot_flips_target_when_control_set() {
        let cx = matrices::controlled(&matrices::pauli_x());
        // |control=1, target=0⟩ = index 2 -> |11⟩ = index 3
        let mut v = vec![Complex::ZERO; 4];
        v[2] = Complex::ONE;
        let out = cx.matvec(&v);
        assert_eq!(out[3], Complex::ONE);
        // |control=0, target=1⟩ = index 1 stays
        let mut v = vec![Complex::ZERO; 4];
        v[1] = Complex::ONE;
        let out = cx.matvec(&v);
        assert_eq!(out[1], Complex::ONE);
    }

    #[test]
    fn cswap_swaps_only_with_control_set() {
        let m = matrices::cswap();
        // control clear: |0,b=0,a=1⟩ = index 1 unchanged
        let mut v = vec![Complex::ZERO; 8];
        v[1] = Complex::ONE;
        assert_eq!(m.matvec(&v)[1], Complex::ONE);
        // control set: |1,b=0,a=1⟩ = index 5 -> |1,b=1,a=0⟩ = index 6
        let mut v = vec![Complex::ZERO; 8];
        v[5] = Complex::ONE;
        assert_eq!(m.matvec(&v)[6], Complex::ONE);
    }

    #[test]
    fn dagger_inverts_rotations() {
        let g = Gate::Ry(0, 0.77);
        let prod = g.matrix().matmul(&g.dagger().matrix());
        assert!(prod.max_abs_diff(&CMatrix::identity(2)) < TOL);
        let g = Gate::Rzz(0, 1, 1.5);
        let prod = g.matrix().matmul(&g.dagger().matrix());
        assert!(prod.max_abs_diff(&CMatrix::identity(4)) < TOL);
    }

    #[test]
    fn with_angle_replaces_parameter() {
        let g = Gate::CRy {
            control: 3,
            target: 1,
            theta: 0.1,
        };
        let g2 = g.with_angle(0.9);
        assert_eq!(g2.angle(), Some(0.9));
        assert_eq!(g2.qubits(), g.qubits());
        // Fixed gates are untouched.
        assert_eq!(Gate::H(2).with_angle(5.0), Gate::H(2));
    }

    #[test]
    fn qubit_lists_and_arity() {
        assert_eq!(Gate::H(3).qubits(), vec![3]);
        assert_eq!(
            Gate::Cnot {
                control: 2,
                target: 5
            }
            .qubits(),
            vec![5, 2]
        );
        assert_eq!(
            Gate::CSwap {
                control: 0,
                a: 1,
                b: 2
            }
            .arity(),
            3
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Gate::Rx(0, 1.0).name(), "rx");
        assert_eq!(
            Gate::CSwap {
                control: 0,
                a: 1,
                b: 2
            }
            .name(),
            "cswap"
        );
    }
}
