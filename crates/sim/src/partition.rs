//! Segment partitioning for intra-statevector parallel kernels.
//!
//! A gate kernel on qubit set `Q` couples amplitudes whose indices differ
//! only in bits of `Q`; every other qubit is a pure batch dimension. To
//! parallelise a sweep without `unsafe`, the two structure-of-arrays
//! amplitude halves (real and imaginary — see [`crate::state`]) are cut
//! into equal contiguous **segments** of `2^seg_bits` amplitudes (safe
//! `chunks_exact_mut` slice pairs) and segments are grouped into **items**:
//!
//! * two segments land in the same item iff their (high) index bits differ
//!   only in *coupled* positions `q ≥ seg_bits` (the "peeled" qubits);
//! * coupled positions `q < seg_bits` stay internal to every segment
//!   (their `2^(q+1)`-sized blocks always fit, because `q < seg_bits`).
//!
//! Items therefore touch pairwise-disjoint amplitude sets and can run on
//! different threads, while each item privately owns the `2^a` segments
//! (`a` = peeled-qubit count) its kernel couples. Within an item, the
//! segment list is ordered by peeled-qubit assignment, so a kernel indexes
//! the segment holding any global amplitude index directly.
//!
//! The partition affects only *which thread* sweeps which amplitudes —
//! each amplitude's arithmetic is the per-group butterfly of the
//! sequential kernel, so results are bit-identical for any item count.

use crate::state::CACHE_BLOCK_BITS;

/// Preferred segment size: the shared cache-block work unit (2^12
/// amplitudes = 64 KiB of interleaved-equivalent data), big enough to
/// amortise dispatch, small enough to balance.
const PREFERRED_SEG_BITS: usize = CACHE_BLOCK_BITS;

/// A parallel decomposition plan for one kernel application.
pub(crate) struct SegPlan {
    /// log2 of the segment length.
    pub(crate) seg_bits: usize,
    /// Coupled qubit positions `≥ seg_bits`, ascending. Bit `r` of an
    /// item-local segment index is the value of qubit `peeled[r]`.
    pub(crate) peeled: Vec<usize>,
}

/// One independent unit of parallel work: the segments (with their global
/// base indices) that one kernel invocation may touch, each a pair of
/// same-length real/imaginary slices.
pub(crate) struct SegItem<'a> {
    /// `(global base index, real parts, imaginary parts)`, sorted so entry
    /// `s` corresponds to peeled-qubit assignment `s`.
    pub(crate) segs: Vec<(usize, &'a mut [f64], &'a mut [f64])>,
}

impl SegPlan {
    /// Plans a decomposition of a `num_qubits`-register sweep coupling
    /// `coupled` qubits into at least `2 × workers` items when possible.
    /// Returns `None` when no split produces ≥ 2 items — the caller then
    /// runs the sequential kernel.
    pub(crate) fn plan(num_qubits: usize, coupled: &[usize], workers: usize) -> Option<SegPlan> {
        let n = num_qubits;
        if n < 2 {
            return None;
        }
        let target = workers.max(1) * 2;
        let items_at = |seg_bits: usize| -> usize {
            let peeled = coupled.iter().filter(|&&q| q >= seg_bits).count();
            1usize << (n - seg_bits - peeled)
        };
        let mut seg_bits = PREFERRED_SEG_BITS.min(n - 1);
        while seg_bits > 1 && items_at(seg_bits) < target {
            seg_bits -= 1;
        }
        if items_at(seg_bits) < 2 {
            return None;
        }
        let mut peeled: Vec<usize> = coupled.iter().copied().filter(|&q| q >= seg_bits).collect();
        peeled.sort_unstable();
        Some(SegPlan { seg_bits, peeled })
    }

    /// Splits the SoA amplitude halves into the planned items.
    pub(crate) fn split<'a>(&self, re: &'a mut [f64], im: &'a mut [f64]) -> Vec<SegItem<'a>> {
        debug_assert_eq!(re.len(), im.len());
        let seg_len = 1usize << self.seg_bits;
        let num_segs = re.len() >> self.seg_bits;
        let group = 1usize << self.peeled.len();
        let mut items: Vec<SegItem<'a>> = (0..num_segs / group)
            .map(|_| SegItem {
                segs: Vec::with_capacity(group),
            })
            .collect();
        for (s, (seg_re, seg_im)) in re
            .chunks_exact_mut(seg_len)
            .zip(im.chunks_exact_mut(seg_len))
            .enumerate()
        {
            // Item id: the segment index with the peeled bit positions
            // squeezed out (removed highest-first so positions stay valid).
            let mut item_id = s;
            for &q in self.peeled.iter().rev() {
                let p = q - self.seg_bits;
                item_id = ((item_id >> (p + 1)) << p) | (item_id & ((1usize << p) - 1));
            }
            items[item_id]
                .segs
                .push((s << self.seg_bits, seg_re, seg_im));
        }
        items
    }

    /// Item-local segment index of the segment holding global amplitude
    /// index `g`: the value of the peeled qubits of `g`, packed ascending.
    #[inline(always)]
    pub(crate) fn seg_of(&self, g: usize) -> usize {
        let mut sel = 0usize;
        for (r, &q) in self.peeled.iter().enumerate() {
            if g & (1usize << q) != 0 {
                sel |= 1 << r;
            }
        }
        sel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn halves(n: usize) -> (Vec<f64>, Vec<f64>) {
        let re: Vec<f64> = (0..1usize << n).map(|i| i as f64).collect();
        let im: Vec<f64> = (0..1usize << n).map(|i| -(i as f64)).collect();
        (re, im)
    }

    /// Every amplitude index appears in exactly one item, at the location
    /// `(seg_of(g), g & seg_mask)` the kernels use to address it.
    #[test]
    fn items_cover_the_register_disjointly() {
        for (n, coupled) in [
            (6usize, vec![0usize]),
            (6, vec![5]),
            (6, vec![0, 5]),
            (7, vec![2, 5, 6]),
            (8, vec![6, 7]),
        ] {
            let plan = SegPlan::plan(n, &coupled, 4).expect("plan");
            let (mut re, mut im) = halves(n);
            let dim = re.len();
            let seg_mask = (1usize << plan.seg_bits) - 1;
            let items = plan.split(&mut re, &mut im);
            assert!(items.len() >= 2);
            let mut seen = vec![false; dim];
            for item in &items {
                for &(base, ref seg_re, ref seg_im) in &item.segs {
                    assert_eq!(seg_re.len(), seg_im.len());
                    for (i, r) in seg_re.iter().enumerate() {
                        let g = base + i;
                        assert!(!seen[g], "index {g} covered twice");
                        seen[g] = true;
                        assert_eq!(*r, g as f64);
                        assert_eq!(seg_im[i], -(g as f64));
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "uncovered indices");
            // Addressing contract: g lives at segs[seg_of(g)] offset g & mask.
            let (mut re, mut im) = halves(n);
            let items = plan.split(&mut re, &mut im);
            for item in &items {
                for &(base, ref seg, _) in &item.segs {
                    for i in 0..seg.len() {
                        let g = base + i;
                        let (seg_base, s, _) = &item.segs[plan.seg_of(g)];
                        assert_eq!(seg_base + (g & seg_mask), g);
                        assert_eq!(s[g & seg_mask], g as f64);
                    }
                }
            }
        }
    }

    #[test]
    fn plan_declines_undecomposable_registers() {
        // A 1-qubit register cannot split into two items.
        assert!(SegPlan::plan(1, &[0], 8).is_none());
        // A 2-qubit register with both qubits coupled has one item only.
        assert!(SegPlan::plan(2, &[0, 1], 8).is_none());
        // …but with one coupled qubit it still splits in two.
        assert!(SegPlan::plan(2, &[0], 8).is_some());
    }

    #[test]
    fn segments_within_an_item_are_ordered_by_peeled_assignment() {
        let plan = SegPlan::plan(6, &[4, 5], 2).expect("plan");
        let (mut re, mut im) = halves(6);
        let items = plan.split(&mut re, &mut im);
        for item in &items {
            assert_eq!(item.segs.len(), 4, "two peeled qubits → four segments");
            for (sub, &(base, _, _)) in item.segs.iter().enumerate() {
                assert_eq!(plan.seg_of(base), sub);
            }
        }
    }
}
