//! Small dense complex matrix type and the handful of linear-algebra
//! routines the simulator needs (matrix product, Kronecker product,
//! adjoint, unitarity checks).
//!
//! Matrices are stored row-major in a flat `Vec<Complex>`; sizes are small
//! (gate matrices are at most 8×8, density matrices up to 2¹⁰×2¹⁰ in tests)
//! so no effort is spent on blocking or SIMD.

use crate::complex::Complex;

/// A dense, row-major complex matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major slice of complex entries.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<Complex>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        CMatrix { rows, cols, data }
    }

    /// Builds a matrix from real entries (imaginary parts zero).
    pub fn from_real(rows: usize, cols: usize, data: &[f64]) -> Self {
        let data = data.iter().map(|&x| Complex::from_real(x)).collect();
        CMatrix::from_rows(rows, cols, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major view of the entries.
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    pub fn matvec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        let mut out = vec![Complex::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = Complex::ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == Complex::ZERO {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Conjugate transpose (adjoint) `self†`.
    pub fn adjoint(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, s: Complex) -> CMatrix {
        let data = self.data.iter().map(|&z| z * s).collect();
        CMatrix::from_rows(self.rows, self.cols, data)
    }

    /// Entry-wise sum `self + rhs`.
    pub fn add(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| a + b)
            .collect();
        CMatrix::from_rows(self.rows, self.cols, data)
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> Complex {
        assert_eq!(self.rows, self.cols, "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Maximum absolute difference between corresponding entries.
    pub fn max_abs_diff(&self, rhs: &CMatrix) -> f64 {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| (a - b).norm())
            .fold(0.0, f64::max)
    }

    /// Checks `U†U ≈ I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let prod = self.adjoint().matmul(self);
        prod.max_abs_diff(&CMatrix::identity(self.rows)) <= tol
    }

    /// Checks `A ≈ A†` within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        self.max_abs_diff(&self.adjoint()) <= tol
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn identity_times_anything_is_identity_map() {
        let a = CMatrix::from_real(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = CMatrix::identity(2);
        assert_eq!(i.matmul(&a), a);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = CMatrix::from_real(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = CMatrix::from_real(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let p = a.matmul(&b);
        assert_eq!(p, CMatrix::from_real(2, 2, &[19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = CMatrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let v = vec![c(1.0, 0.0), c(0.0, 0.0)];
        let out = a.matvec(&v);
        assert_eq!(out, vec![c(0.0, 0.0), c(1.0, 0.0)]);
    }

    #[test]
    fn kron_dimensions_and_values() {
        let a = CMatrix::from_real(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        let b = CMatrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let k = a.kron(&b);
        assert_eq!(k.rows(), 4);
        assert_eq!(k.cols(), 4);
        // I ⊗ X applied to |00> -> |01>
        let v = vec![c(1.0, 0.0), c(0.0, 0.0), c(0.0, 0.0), c(0.0, 0.0)];
        let out = k.matvec(&v);
        assert_eq!(out[1], Complex::ONE);
    }

    #[test]
    fn adjoint_conjugates_and_transposes() {
        let a = CMatrix::from_rows(
            2,
            2,
            vec![c(1.0, 1.0), c(2.0, 0.0), c(0.0, 3.0), c(4.0, -1.0)],
        );
        let ad = a.adjoint();
        assert_eq!(ad[(0, 1)], c(0.0, -3.0));
        assert_eq!(ad[(1, 0)], c(2.0, 0.0));
    }

    #[test]
    fn unitary_and_hermitian_checks() {
        // Hadamard is both unitary and Hermitian.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let h = CMatrix::from_real(2, 2, &[s, s, s, -s]);
        assert!(h.is_unitary(1e-12));
        assert!(h.is_hermitian(1e-12));
        // A non-unitary matrix.
        let m = CMatrix::from_real(2, 2, &[1.0, 1.0, 0.0, 1.0]);
        assert!(!m.is_unitary(1e-12));
    }

    #[test]
    fn trace_sums_diagonal() {
        let a = CMatrix::from_real(2, 2, &[1.0, 9.0, 9.0, 2.0]);
        assert_eq!(a.trace(), c(3.0, 0.0));
    }

    #[test]
    fn scale_and_add() {
        let a = CMatrix::identity(2);
        let b = a.scale(c(0.0, 2.0));
        assert_eq!(b[(0, 0)], c(0.0, 2.0));
        let s = a.add(&b);
        assert_eq!(s[(1, 1)], c(1.0, 2.0));
    }

    #[test]
    fn non_square_is_not_unitary_or_hermitian() {
        let m = CMatrix::zeros(2, 3);
        assert!(!m.is_unitary(1e-9));
        assert!(!m.is_hermitian(1e-9));
    }
}
